//! `rideshare-lint`: run the workspace determinism & panic-policy gate
//! from the command line.
//!
//! Scans every `.rs` file under `--root`, applies the per-crate policy
//! (see the library docs), prints a human summary, optionally writes the
//! `bench_lint/v1` artifact, and exits nonzero when any unwaived
//! violation remains.

use std::path::PathBuf;
use std::process::ExitCode;

use rideshare_lint::{scan_workspace, Rule};

const USAGE: &str = "\
rideshare-lint: workspace determinism & panic-policy static analyzer

USAGE:
  rideshare-lint [OPTIONS]

OPTIONS:
  --root <path>   workspace root to scan [default: .]
  --out <path>    write the bench_lint/v1 JSON artifact here
  --quiet         suppress the per-violation listing (summary only)
  -h, --help      print this help

EXIT STATUS:
  0  gate passed: zero unwaived violations
  1  at least one unwaived violation (listed on stderr)
  2  usage or IO error
";

struct Args {
    root: PathBuf,
    out: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        out: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let report = match scan_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rideshare-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("rideshare-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        for v in &report.violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
    }
    let per_rule: Vec<String> = Rule::ALL
        .iter()
        .map(|r| {
            format!(
                "{r}={}+{}w",
                report.count(*r),
                report.waived_counts.get(r).copied().unwrap_or(0)
            )
        })
        .collect();
    println!(
        "rideshare-lint: {} files, {} unwaived violations, {} waivers ({})",
        report.files_scanned,
        report.violations.len(),
        report.waivers.len(),
        per_rule.join(" "),
    );
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

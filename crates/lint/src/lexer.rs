//! A minimal Rust lexer — just enough structure for the lint rules.
//!
//! The analyzer's rules are token-pattern matchers, so the lexer's job is
//! to produce an honest token stream: rule text appearing inside string
//! literals, char literals or comments must *not* surface as identifiers,
//! and line numbers must survive multi-line literals and nested block
//! comments. It handles the full literal surface the workspace uses:
//!
//! * line comments (`//`, `///`, `//!`) — captured, because waivers live
//!   in them;
//! * block comments (`/* … */`) with arbitrary nesting;
//! * string literals with escapes, byte strings (`b"…"`) and C strings
//!   (`c"…"`);
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes (and the
//!   `br`/`cr` forms), which have no escapes and may span lines;
//! * char literals vs lifetimes (`'a'` is a literal, `'a` a lifetime,
//!   `'\n'` an escape);
//! * raw identifiers (`r#type`).
//!
//! Everything else becomes either an identifier, a number, or a
//! single-character punctuation token. Multi-character operators are
//! deliberately *not* fused: the rules match sequences like
//! `:` `:` (path separator) directly, which keeps the lexer trivial.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (without the quote in [`Token::text`]).
    Lifetime,
    /// Any string literal form: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (for [`TokenKind::Punct`], exactly one character;
    /// literals keep only a placeholder, their content is never matched).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// True when this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// A line comment, kept separately from the token stream (waivers are
/// declared in them; block comments cannot carry waivers).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens outside comments and whitespace.
    pub tokens: Vec<Token>,
    /// All line comments (including doc comments).
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and line comments.
///
/// The lexer is infallible: malformed input (an unterminated literal,
/// say) degrades to best-effort tokens rather than an error, because the
/// analyzer must never crash on a file the compiler itself would reject —
/// it runs before `cargo build` in CI.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    // Number of '#' following position `i`.
    let hashes_at = |mut j: usize| {
        let mut n = 0usize;
        while j < b.len() && b[j] == b'#' {
            n += 1;
            j += 1;
        }
        n
    };

    while i < b.len() {
        let c = b[i] as char;

        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
                continue;
            }
            if b[i + 1] == b'*' {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }

        // Identifiers, keywords, and the string-prefix forms.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            // String prefixes: r"…", r#"…"#, br"…", b"…", c"…", cr"…".
            let is_raw_prefix = matches!(word, "r" | "br" | "cr");
            let is_plain_prefix = matches!(word, "b" | "c");
            if is_raw_prefix && i < b.len() && (b[i] == b'"' || b[i] == b'#') {
                let n = hashes_at(i);
                if i + n < b.len() && b[i + n] == b'"' {
                    // Raw string: skip to `"` followed by n hashes.
                    let tok_line = line;
                    i += n + 1;
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == b'\n' {
                            line += 1;
                            i += 1;
                        } else if b[i] == b'"' && hashes_at(i + 1) >= n {
                            i += 1 + n;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
                if n > 0 && word == "r" {
                    // Raw identifier r#ident.
                    let id_start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: src[id_start..i].to_string(),
                        line,
                    });
                    continue;
                }
            }
            if (is_plain_prefix || is_raw_prefix) && i < b.len() && b[i] == b'"' {
                // b"…" / c"…": fall through to the string scanner below by
                // not consuming the quote here.
                let tok_line = line;
                i += 1;
                scan_string(b, &mut i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            if word == "b" && i < b.len() && b[i] == b'\'' {
                // Byte literal b'x'.
                let tok_line = line;
                i += 1;
                scan_char(b, &mut i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: word.to_string(),
                line,
            });
            continue;
        }

        // Numbers. The dot is consumed only when followed by a digit, so
        // ranges (`0..n`) and method calls on literals stay separate
        // tokens.
        if c.is_ascii_digit() {
            i += 1;
            while i < b.len() {
                let continues = b[i].is_ascii_alphanumeric()
                    || b[i] == b'_'
                    || (b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit());
                if !continues {
                    break;
                }
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: String::new(),
                line,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            let tok_line = line;
            i += 1;
            scan_string(b, &mut i, &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let tok_line = line;
            // Lifetime: 'ident NOT followed by a closing quote.
            if i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') {
                let mut j = i + 2;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j >= b.len() || b[j] != b'\'' {
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[i + 1..j].to_string(),
                        line: tok_line,
                    });
                    i = j;
                    continue;
                }
            }
            i += 1;
            scan_char(b, &mut i, &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }

        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += c.len_utf8();
    }
    out
}

/// Advances past the body of a non-raw string literal (opening quote
/// already consumed), honouring escapes and counting newlines.
fn scan_string(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Advances past the body of a char/byte literal (opening quote already
/// consumed), honouring escapes.
fn scan_char(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'\'' => {
                *i += 1;
                return;
            }
            b'\n' => {
                // Unterminated char literal — bail at the line break.
                *line += 1;
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

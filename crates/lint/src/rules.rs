//! The determinism and panic-policy rules, and the waiver machinery.
//!
//! Every rule is a pattern over the token stream produced by
//! [`crate::lexer`]. The analyzer is deliberately type-blind — it never
//! resolves imports or infers types — so each rule documents the
//! heuristic it uses and errs toward *flagging* in the crates where the
//! policy applies; a justified false positive is silenced with an inline
//! waiver that records its reason in the artifact, which is exactly the
//! audit trail the policy wants.
//!
//! # Waivers
//!
//! A violation is suppressed only by a line comment of the form
//!
//! ```text
//! // lint:allow(D1, reason = "sorted immediately below")
//! ```
//!
//! on the same line as the violation or on the line directly above it.
//! The reason is mandatory and must be non-empty; a malformed waiver is
//! itself a violation ([`Rule::W0`]) and cannot be waived. A waiver that
//! suppresses nothing is also a violation ([`Rule::W1`]), so stale
//! waivers cannot rot in place after the code they excused is fixed.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::{lex, Token, TokenKind};

/// The rules the analyzer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No unordered iteration (`iter`/`keys`/`values`/`drain`/…, or
    /// `for … in &map`) over `HashMap`/`HashSet` receivers declared in
    /// the same file. Hash iteration order varies per process, which is
    /// exactly the nondeterminism the bit-identity suites exist to catch.
    D1,
    /// No wall clock: `Instant::now` / `SystemTime::now` outside the
    /// policy's allowlisted timing modules. Wall-clock reads in a
    /// replayed path make runs diverge.
    D2,
    /// RNG discipline: no ambient entropy (`thread_rng`, `OsRng`,
    /// `from_entropy`, `rand::random`, …). All randomness must flow from
    /// an explicit `StdRng::seed_from_u64` seed.
    D3,
    /// Panic policy: no `unwrap`/`expect`/`panic!`-family macros or
    /// direct index expressions in serve-crate runtime paths.
    P1,
    /// Malformed waiver: `lint:allow(…)` that does not parse, names an
    /// unknown rule, or is missing its mandatory reason.
    W0,
    /// Unused waiver: a well-formed waiver that suppressed nothing.
    W1,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::P1, Rule::W0, Rule::W1];

    /// Parses a rule name as written in a waiver.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "P1" => Some(Rule::P1),
            _ => None,
        }
    }

    /// One-line description used in the JSON artifact.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "unordered iteration over HashMap/HashSet in a determinism-critical crate",
            Rule::D2 => {
                "wall clock (Instant::now/SystemTime::now) outside allowlisted timing modules"
            }
            Rule::D3 => "ambient entropy instead of seeded StdRng",
            Rule::P1 => "panic path (unwrap/expect/panic!/indexing) in serve runtime code",
            Rule::W0 => "malformed lint:allow waiver (bad syntax, unknown rule, or missing reason)",
            Rule::W1 => "unused lint:allow waiver",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::P1 => "P1",
            Rule::W0 => "W0",
            Rule::W1 => "W1",
        })
    }
}

/// One finding, waived or not.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the site.
    pub message: String,
    /// True when an inline waiver suppressed it.
    pub waived: bool,
}

/// One well-formed waiver found in the file.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// The rule it waives.
    pub rule: Rule,
    /// 1-based line of the comment.
    pub line: u32,
    /// The mandatory justification.
    pub reason: String,
    /// Whether it suppressed at least one violation.
    pub used: bool,
}

/// Analysis result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Every violation, including waived ones.
    pub violations: Vec<Violation>,
    /// Every well-formed waiver, used or not.
    pub waivers: Vec<WaiverRecord>,
}

impl FileReport {
    /// True when no unwaived violation remains.
    pub fn clean(&self) -> bool {
        self.violations.iter().all(|v| v.waived)
    }
}

/// D1's iteration surface: calling any of these on a hash-container
/// receiver observes hash order.
const UNORDERED_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// D3's ambient-entropy identifiers.
const ENTROPY_IDENTS: [&str; 5] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "from_os_rng",
];

/// P1's panicking macros (asserts are deliberately allowed: invariant
/// checks are policy-acceptable, lazy stubs and swallowed `Option`s are
/// not).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …` is a slice pattern, not indexing).
const NON_RECEIVER_KEYWORDS: [&str; 30] = [
    "as", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "unsafe", "use", "where",
];

/// Analyzes one file's source text under the given active rules.
///
/// Rules absent from `active` do not
/// run, and when `active` is empty the waiver machinery is inert too —
/// so fixture files full of seeded violations are harmless anywhere the
/// policy assigns no rules (tests, benches, the compat shims).
pub fn analyze_source(src: &str, active: &[Rule]) -> FileReport {
    let mut report = FileReport::default();
    if active.is_empty() {
        return report;
    }
    let lexed = lex(src);
    let toks = &lexed.tokens;

    // Waivers first: well-formed ones go to the record list, malformed
    // ones are immediate W0 violations.
    let mut waivers: Vec<WaiverRecord> = Vec::new();
    for c in &lexed.comments {
        match parse_waiver(&c.text) {
            WaiverParse::None => {}
            WaiverParse::Ok { rule, reason } => waivers.push(WaiverRecord {
                rule,
                line: c.line,
                reason,
                used: false,
            }),
            WaiverParse::Malformed(why) => report.violations.push(Violation {
                rule: Rule::W0,
                line: c.line,
                message: format!("malformed waiver: {why}"),
                waived: false,
            }),
        }
    }

    // Lines covered by `#[cfg(test)]`-gated items are exempt from
    // everything, including the waiver rules (the W0 hits recorded
    // above are filtered here, after the ranges are known).
    let exempt = exempt_line_ranges(toks);
    let is_exempt = |line: u32| exempt.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));
    report.violations.retain(|v| !is_exempt(v.line));

    let maps = hash_container_names(toks);
    let mut fire = |report: &mut FileReport, rule: Rule, line: u32, message: String| {
        if !active.contains(&rule) || is_exempt(line) {
            return;
        }
        // A waiver covers its own line and the line directly below it.
        let waived = waivers
            .iter_mut()
            .find(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
            .map(|w| w.used = true)
            .is_some();
        report.violations.push(Violation {
            rule,
            line,
            message,
            waived,
        });
    };

    for (i, t) in toks.iter().enumerate() {
        // D1: `recv.iter()` where `recv` is a hash container declared in
        // this file. The receiver is the last path segment before the
        // dot, so `self.records.iter()` resolves to `records`.
        if t.kind == TokenKind::Ident
            && UNORDERED_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokenKind::Ident
            && maps.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            fire(
                &mut report,
                Rule::D1,
                t.line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in hash order",
                    toks[i - 2].text,
                    t.text
                ),
            );
        }

        // D1: `for … in [&[mut]] map { … }`.
        if t.is_ident("for") {
            if let Some((name, line)) = for_loop_hash_receiver(toks, i, &maps) {
                fire(
                    &mut report,
                    Rule::D1,
                    line,
                    format!("`for … in {name}` iterates a HashMap/HashSet in hash order"),
                );
            }
        }

        // D2: `Instant::now` / `SystemTime::now`.
        if t.is_ident("now")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && (toks[i - 3].is_ident("Instant") || toks[i - 3].is_ident("SystemTime"))
        {
            fire(
                &mut report,
                Rule::D2,
                t.line,
                format!("`{}::now` reads the wall clock", toks[i - 3].text),
            );
        }

        // D3: ambient entropy.
        if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            fire(
                &mut report,
                Rule::D3,
                t.line,
                format!("`{}` draws ambient entropy", t.text),
            );
        }
        if t.is_ident("random")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("rand")
        {
            fire(
                &mut report,
                Rule::D3,
                t.line,
                "`rand::random` draws ambient entropy".to_string(),
            );
        }

        // P1: `.unwrap()` / `.expect(…)` — exact method names only, so
        // `unwrap_or_else` does not match.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            fire(
                &mut report,
                Rule::P1,
                t.line,
                format!("`.{}()` can panic", t.text),
            );
        }

        // P1: panicking macros.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            fire(
                &mut report,
                Rule::P1,
                t.line,
                format!("`{}!` panics", t.text),
            );
        }

        // P1: direct index expressions. `[` forms an index when it
        // directly follows an expression: an identifier that is not a
        // keyword, or a closing `)` / `]`. Attributes (`#[…]`), array
        // literals, slice patterns and macro brackets (`vec![…]`) all
        // follow something else.
        if t.is_punct('[') && i >= 1 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokenKind::Ident => !NON_RECEIVER_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if indexes {
                fire(
                    &mut report,
                    Rule::P1,
                    t.line,
                    "direct index expression can panic on out-of-bounds".to_string(),
                );
            }
        }
    }

    // W1: waivers that suppressed nothing.
    for w in &waivers {
        if !w.used && !is_exempt(w.line) {
            report.violations.push(Violation {
                rule: Rule::W1,
                line: w.line,
                message: format!("waiver for {} suppresses nothing", w.rule),
                waived: false,
            });
        }
    }
    report.waivers = waivers;
    report
        .violations
        .sort_by_key(|v| (v.line, v.rule, v.message.clone()));
    report
}

/// Result of trying to read a waiver out of one comment.
enum WaiverParse {
    /// The comment contains no `lint:allow` marker.
    None,
    /// A well-formed waiver.
    Ok {
        /// Waived rule.
        rule: Rule,
        /// Non-empty justification.
        reason: String,
    },
    /// A `lint:allow` marker that fails to parse; payload says why.
    Malformed(String),
}

/// Parses `// lint:allow(RULE, reason = "…")` out of a comment.
///
/// Doc comments (`///`, `//!`) never carry waivers — they are for
/// *describing* the syntax, as this very function's documentation does.
fn parse_waiver(comment: &str) -> WaiverParse {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return WaiverParse::None;
    }
    let Some(at) = comment.find("lint:allow") else {
        return WaiverParse::None;
    };
    let rest = comment[at + "lint:allow".len()..].trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return WaiverParse::Malformed("expected `(` after lint:allow".to_string());
    };
    let Some(close) = body.rfind(')') else {
        return WaiverParse::Malformed("unclosed lint:allow(…)".to_string());
    };
    let body = &body[..close];
    let (rule_txt, tail) = match body.find(',') {
        Some(c) => (body[..c].trim(), body[c + 1..].trim()),
        None => (body.trim(), ""),
    };
    let Some(rule) = Rule::parse(rule_txt) else {
        return WaiverParse::Malformed(format!("unknown rule `{rule_txt}`"));
    };
    let Some(eq) = tail.strip_prefix("reason").map(|t| t.trim_start()) else {
        return WaiverParse::Malformed(format!("waiver for {rule} is missing its reason"));
    };
    let Some(val) = eq.strip_prefix('=').map(|t| t.trim_start()) else {
        return WaiverParse::Malformed("expected `reason = \"…\"`".to_string());
    };
    let reason = val.trim_end().trim_matches('"').trim();
    if reason.is_empty() {
        return WaiverParse::Malformed(format!("waiver for {rule} has an empty reason"));
    }
    WaiverParse::Ok {
        rule,
        reason: reason.to_string(),
    }
}

/// Names bound to `HashMap`/`HashSet` in this file.
///
/// Two declaration shapes register a name (`name` may be a `let`
/// binding, a struct field, or a function parameter):
///
/// * `name: [&]['a][mut] [path::]HashMap<…>` — a type ascription;
/// * `name = [path::]HashMap::new()` (or any constructor path).
///
/// This is a per-file heuristic: a hash container declared in another
/// file and iterated here escapes D1. The bit-identity property suites
/// remain the backstop for that gap; the lint's value is making the
/// overwhelmingly common same-file case impossible to get wrong.
fn hash_container_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk backwards over the path prefix (`std::collections::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            if j >= 3 && toks[j - 3].kind == TokenKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        // Skip reference/mutability/lifetime decoration.
        while j >= 1 {
            let p = &toks[j - 1];
            if p.is_punct('&') || p.is_ident("mut") || p.kind == TokenKind::Lifetime {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && (toks[j - 1].is_punct(':') || toks[j - 1].is_punct('='))
            // `name: HashMap` but not `path::HashMap` (the path walk above
            // already unwound well-formed paths; this guards `::HashMap`).
            && !(toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':'))
            && toks[j - 2].kind == TokenKind::Ident
        {
            names.insert(toks[j - 2].text.clone());
        }
    }
    names
}

/// For a `for` keyword at `toks[at]`, resolves the loop's iterated
/// expression; returns `Some((display, line))` when it is a plain
/// `[&[mut]] path.to.name` whose final segment is a known hash
/// container.
fn for_loop_hash_receiver(
    toks: &[Token],
    at: usize,
    maps: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find the `in` that belongs to this `for`: skip the pattern, which
    // may nest (), [] — `for (k, v) in …`.
    let mut depth = 0i32;
    let mut j = at + 1;
    let in_at = loop {
        let t = toks.get(j)?;
        if depth == 0 && t.is_ident("in") {
            break j;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // `for` in a type position or malformed.
        }
        j += 1;
    };
    // Collect the iterated expression up to the loop body brace.
    let mut expr: Vec<&Token> = Vec::new();
    let mut j = in_at + 1;
    loop {
        let t = toks.get(j)?;
        if t.is_punct('{') {
            break;
        }
        expr.push(t);
        j += 1;
        if expr.len() > 16 {
            return None; // Complex expression; not a bare map walk.
        }
    }
    // Accept exactly `&`*, optional `mut`, then ident (. ident)*.
    let mut k = 0usize;
    while expr.get(k).is_some_and(|t| t.is_punct('&')) {
        k += 1;
    }
    if expr.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let first = expr.get(k)?;
    if first.kind != TokenKind::Ident {
        return None;
    }
    let mut last = &first.text;
    let mut display = first.text.clone();
    let mut k = k + 1;
    while k + 1 < expr.len() + 1 {
        match (expr.get(k), expr.get(k + 1)) {
            (Some(dot), Some(seg)) if dot.is_punct('.') && seg.kind == TokenKind::Ident => {
                display.push('.');
                display.push_str(&seg.text);
                last = &seg.text;
                k += 2;
            }
            (None, _) => break,
            _ => return None, // Method call, index, arithmetic, …
        }
    }
    if maps.contains(last) {
        Some((display, first.line))
    } else {
        None
    }
}

/// Line ranges covered by `#[cfg(test)]`- or `#[test]`-gated items
/// (`mod tests { … }` blocks, test fns). Everything inside is exempt.
fn exempt_line_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's tokens up to its closing `]`.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut mentions_test = false;
            let mut negated = false;
            while let Some(t) = toks.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("test") {
                    mentions_test = true;
                } else if t.is_ident("not") || t.is_ident("any") {
                    // `#[cfg(not(test))]` / `#[cfg(any(test, …))]` items
                    // are (or may be) compiled outside test builds — they
                    // stay in scope.
                    negated = true;
                }
                j += 1;
            }
            let gates_test = mentions_test && !negated;
            if gates_test {
                // Skip any further attributes/doc comments, then find the
                // gated item's opening brace and match it.
                let mut k = j + 1;
                while toks.get(k).is_some_and(|t| t.is_punct('#'))
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 0i32;
                    while let Some(t) = toks.get(k + 1) {
                        if t.is_punct('[') {
                            d += 1;
                        } else if t.is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 2;
                }
                let start_line = toks[i].line;
                let mut braces = 0i32;
                let mut end_line = start_line;
                let mut opened = false;
                while let Some(t) = toks.get(k) {
                    if t.is_punct('{') {
                        braces += 1;
                        opened = true;
                    } else if t.is_punct('}') {
                        braces -= 1;
                    } else if t.is_punct(';') && !opened {
                        // `#[cfg(test)] mod tests;` — out-of-line module,
                        // nothing to skip here.
                        end_line = t.line;
                        break;
                    }
                    end_line = t.line;
                    if opened && braces == 0 {
                        break;
                    }
                    k += 1;
                }
                out.push((start_line, end_line));
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

//! Workspace walking, per-crate policy, and the `bench_lint/v1` artifact.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::rules::{analyze_source, Rule, Violation, WaiverRecord};

/// Modules allowed to read the wall clock without a waiver.
///
/// These are the timing modules whose measurements feed fields *already
/// excluded from bit-identity* (per-request `response_nanos` and the
/// `acrt_ms` buckets derived from them): the whole point of those fields
/// is to record real compute cost, so `Instant::now` is their job, and a
/// waiver on every call site would be noise rather than signal. Any
/// *other* module that wants the clock must carry an inline waiver with
/// its reason.
pub const TIMING_ALLOWLIST: [&str; 2] =
    ["crates/core/src/dispatch.rs", "crates/core/src/parallel.rs"];

/// Determinism-critical crates: their `src/` trees get the D-rules.
const DETERMINISM_CRATES: [&str; 4] = ["core", "sim", "roadnet", "serve"];

/// Resolves which rules apply to the file at workspace-relative `rel`
/// (forward-slash separated).
///
/// * `tests/`, `benches/`, `examples/` anywhere, and the `crates/compat`
///   shims: no rules — test code may iterate hash maps and unwrap
///   freely, and the shims implement the very primitives the rules
///   police.
/// * `crates/{core,sim,roadnet,serve}/src`: D1 + D2 + D3 (D2 is skipped
///   for [`TIMING_ALLOWLIST`] modules).
/// * `crates/serve/src`: additionally P1 — the serve loop is the one
///   place a panic takes down a live service rather than a batch job.
/// * `crates/lint/src`: D1 + D2 + D3 (the analyzer polices itself).
/// * every other workspace `src/` tree (workload, spatial, mip, bench,
///   the umbrella): D3 only — ambient entropy is never acceptable, but
///   those crates are either pure functions of their inputs or
///   measurement harnesses where wall clock and panics are fine.
pub fn rules_for(rel: &str) -> Vec<Rule> {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_dir = |d: &str| parts.contains(&d);
    if in_dir("tests") || in_dir("benches") || in_dir("examples") || in_dir("target") {
        return Vec::new();
    }
    if rel.starts_with("crates/compat/") {
        return Vec::new();
    }
    if let Some(krate) = parts
        .strip_prefix(["crates"].as_slice())
        .and_then(|r| r.first())
    {
        if DETERMINISM_CRATES.contains(krate) {
            let mut rules = vec![Rule::D1, Rule::D3];
            if !TIMING_ALLOWLIST.contains(&rel) {
                rules.push(Rule::D2);
            }
            if *krate == "serve" {
                rules.push(Rule::P1);
            }
            rules.sort();
            return rules;
        }
        if *krate == "lint" {
            return vec![Rule::D1, Rule::D2, Rule::D3];
        }
        return vec![Rule::D3];
    }
    // Umbrella crate sources at the workspace root.
    vec![Rule::D3]
}

/// One unwaived violation in the workspace report.
#[derive(Debug, Clone)]
pub struct ReportedViolation {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Site description.
    pub message: String,
}

/// One waiver in the workspace inventory.
#[derive(Debug, Clone)]
pub struct ReportedWaiver {
    /// Waived rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Mandatory justification.
    pub reason: String,
}

/// The aggregated result of scanning a workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Unwaived violations, sorted by (file, line, rule).
    pub violations: Vec<ReportedViolation>,
    /// Waiver inventory, sorted by (file, line, rule).
    pub waivers: Vec<ReportedWaiver>,
    /// Waived-violation count per rule.
    pub waived_counts: BTreeMap<Rule, usize>,
}

impl WorkspaceReport {
    /// True when the gate passes: zero unwaived violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Unwaived-violation count for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Folds one analyzed file into the aggregate.
    pub fn absorb(&mut self, rel: &str, violations: Vec<Violation>, waivers: Vec<WaiverRecord>) {
        self.files_scanned += 1;
        for v in violations {
            if v.waived {
                *self.waived_counts.entry(v.rule).or_insert(0) += 1;
            } else {
                self.violations.push(ReportedViolation {
                    rule: v.rule,
                    file: rel.to_string(),
                    line: v.line,
                    message: v.message,
                });
            }
        }
        for w in waivers {
            self.waivers.push(ReportedWaiver {
                rule: w.rule,
                file: rel.to_string(),
                line: w.line,
                reason: w.reason,
            });
        }
    }

    /// Renders the `bench_lint/v1` artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"bench_lint/v1\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str("  \"rules\": {\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            let comma = if i + 1 < Rule::ALL.len() { "," } else { "" };
            s.push_str(&format!(
                "    \"{rule}\": {{\"description\": \"{}\", \"unwaived\": {}, \"waived\": {}}}{comma}\n",
                json_escape(rule.describe()),
                self.count(*rule),
                self.waived_counts.get(rule).copied().unwrap_or(0),
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}\n",
                v.rule,
                json_escape(&v.file),
                v.line,
                json_escape(&v.message),
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let comma = if i + 1 < self.waivers.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{comma}\n",
                w.rule,
                json_escape(&w.file),
                w.line,
                json_escape(&w.reason),
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// Minimal JSON string escaping for paths, messages and reasons.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Scans every workspace `.rs` file under `root` and returns the
/// aggregate report. Directory entries are visited in sorted order so
/// the artifact is byte-stable across runs and platforms.
pub fn scan_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = WorkspaceReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let file_report = analyze_source(&src, &rules_for(&rel));
        report.absorb(&rel, file_report.violations, file_report.waivers);
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files, skipping build output, VCS metadata
/// and hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

//! `rideshare-lint`: a workspace determinism & panic-policy static
//! analyzer.
//!
//! Every headline guarantee in this workspace — parallel dispatch,
//! sharded simulation, checkpoint resume and crash recovery all
//! bit-identical — is enforced *dynamically*, by property suites that
//! sample a tiny fraction of the state space. This crate adds the static
//! half: an offline, dependency-free analyzer that lexes every workspace
//! `.rs` file (a real mini-lexer — strings, raw strings, char literals
//! vs lifetimes, nested block comments — not a regex pass) and enforces
//! a per-crate policy:
//!
//! | rule | policy |
//! |------|--------|
//! | `D1` | no unordered iteration over `HashMap`/`HashSet` in the determinism-critical crates (`core`, `sim`, `roadnet`, `serve`) |
//! | `D2` | no `Instant::now`/`SystemTime::now` outside the allowlisted timing modules |
//! | `D3` | no ambient entropy anywhere — all randomness via seeded `StdRng` |
//! | `P1` | no `unwrap`/`expect`/`panic!`-family/direct indexing in `crates/serve` runtime paths |
//! | `W0` | every waiver parses and carries a non-empty reason |
//! | `W1` | every waiver actually suppresses something |
//!
//! A violation is suppressed only by an inline
//! `// lint:allow(rule, reason = "…")` waiver; the binary emits the
//! `bench_lint/v1` artifact (per-rule counts plus the full waiver
//! inventory with file/line/reason) and exits nonzero on any unwaived
//! violation. See `OPERATIONS.md` for the CLI and the schema, and
//! `ARCHITECTURE.md` for how the static gate complements the dynamic
//! bit-identity suites.

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{scan_workspace, WorkspaceReport};
pub use rules::{analyze_source, FileReport, Rule};

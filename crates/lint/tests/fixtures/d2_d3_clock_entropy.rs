//! D2/D3 fixture: wall-clock reads and ambient entropy, plus the seeded
//! forms that must stay legal. Analyzed with D2 + D3 forced on.

use std::time::{Duration, Instant, SystemTime};

fn wall_clock() {
    let a = Instant::now(); // FLAG:D2
    let b = std::time::Instant::now(); // FLAG:D2
    let c = SystemTime::now(); // FLAG:D2
    let _ = (a, b, c);
}

fn clock_lookalikes(t: Instant) {
    // Arithmetic on an Instant passed in is fine — only `::now` reads
    // the clock.
    let _ = t + Duration::from_secs(1);
    // An unrelated `now` method on some other type is fine.
    let _ = not_a_clock::now();
}

mod not_a_clock {
    pub fn now() -> u64 {
        7
    }
}

fn entropy() {
    let r = rand::thread_rng(); // FLAG:D3
    let s = rand::rngs::OsRng; // FLAG:D3
    let v: u8 = rand::random(); // FLAG:D3
    let w = StdRng::from_entropy(); // FLAG:D3
    let _ = (r, s, v, w);
}

fn seeded_is_fine() {
    let mut rng = StdRng::seed_from_u64(42);
    let _: f64 = rng.gen();
    // `random` as a plain name (a field, a local) is not `rand::random`.
    let random = 1u8;
    let _ = random;
}

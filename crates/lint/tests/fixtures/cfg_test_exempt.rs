//! cfg(test) fixture: violations inside `#[cfg(test)]`-gated items are
//! exempt (including waiver bookkeeping), but `#[cfg(not(test))]` and
//! plain runtime code keep every rule. Analyzed with D2 + P1 forced on.

fn runtime(xs: &[u32]) -> u32 {
    xs[0] // FLAG:P1
}

#[cfg(not(test))]
fn compiled_into_the_binary() {
    let _ = Instant::now(); // FLAG:D2
}

#[cfg(test)]
mod tests {
    // Everything in here is exempt: unwraps, clocks, hash walks, even a
    // reasonless waiver that would be W0 outside.
    // lint:allow(P1)
    fn helper(xs: &[u32]) -> u32 {
        let t = Instant::now();
        let _ = t;
        xs[0]
    }

    #[test]
    fn exercises_runtime() {
        assert_eq!(helper(&[7]), 7);
        let _ = super::runtime(&[1]);
        let _ = [0u32; 4][0].min(1);
        panic!("even this is fine in a test");
    }
}

#[test]
fn a_free_test_fn(/* gated fns are exempt too */) {
    let _ = Instant::now();
    let v = vec![1u32];
    let _ = v[0];
}

fn runtime_after_tests() {
    let _ = SystemTime::now(); // FLAG:D2
}

//! Waiver fixture: suppression on the same line and the line above,
//! malformed waivers (W0), and an unused waiver (W1). Analyzed with
//! D2 + P1 forced on.

fn waived_same_line() {
    let _ = Instant::now(); // lint:allow(D2, reason = "fixture: same-line waiver")
}

fn waived_line_above(xs: &[u32]) -> u32 {
    // lint:allow(P1, reason = "fixture: waiver on the line above")
    xs[0]
}

fn malformed() {
    // lint:allow(D2) FLAG:W0 — missing the mandatory reason
    let _ = Instant::now(); // FLAG:D2 (the malformed waiver suppresses nothing)
}

fn malformed_empty_reason() {
    // lint:allow(D2, reason = "") FLAG:W0 — reason present but empty
    let _ = Instant::now(); // FLAG:D2
}

fn malformed_unknown_rule(xs: &[u32]) -> u32 {
    // lint:allow(Q9, reason = "no such rule") FLAG:W0
    xs[0] // FLAG:P1
}

fn unused_waiver() {
    // lint:allow(P1, reason = "fixture: nothing here panics") FLAG:W1
    let _ = 1 + 1;
}

fn wrong_rule_does_not_waive() {
    // lint:allow(P1, reason = "fixture: P1 waiver cannot waive a D2 hit") FLAG:W1
    let _ = Instant::now(); // FLAG:D2
}

//! P1 fixture: panic paths the rule must catch in serve runtime code,
//! plus the non-panicking lookalikes it must not flag. Analyzed with P1
//! forced on.

fn panicking(xs: &[u32], m: std::collections::HashMap<u32, u32>) -> u32 {
    let a = xs.first().unwrap(); // FLAG:P1
    let b = xs.first().expect("nonempty"); // FLAG:P1
    if xs.is_empty() {
        panic!("boom"); // FLAG:P1
    }
    match a {
        0 => unreachable!(), // FLAG:P1
        1 => todo!(), // FLAG:P1
        2 => unimplemented!(), // FLAG:P1
        _ => {}
    }
    let c = xs[0]; // FLAG:P1
    let d = xs[1..3].len(); // FLAG:P1
    let e = m[&3]; // FLAG:P1
    let f = (xs)[4]; // FLAG:P1
    *a + *b + c + d as u32 + e + f
}

fn not_panicking(xs: &[u32]) -> u32 {
    // `unwrap_or*` family: exact-name matching must not fire.
    let a = xs.first().copied().unwrap_or(0);
    let b = xs.first().copied().unwrap_or_else(|| 1);
    let c = xs.first().copied().unwrap_or_default();
    // Checked access.
    let d = xs.get(0).copied().unwrap_or(2);
    // Array literals, macro brackets, attributes, slice patterns: `[`
    // not preceded by an expression.
    let arr = [1u32, 2, 3];
    let v = vec![4u32, 5];
    let [x, y] = [6u32, 7];
    #[allow(unused)]
    let unused = 0u32;
    // Asserts are allowed by policy: invariants may halt, lazy stubs
    // may not.
    assert!(a <= 1);
    debug_assert_eq!(arr.len(), 3);
    a + b + c + d + v.len() as u32 + x + y
}

//! Lexer fixture: rule text buried in literals and comments must never
//! fire, and real violations *after* tricky literals must still fire
//! (proving the lexer resynchronised correctly). Analyzed with
//! D1 + D2 + D3 + P1 forced on.

fn literals_do_not_fire() -> String {
    // Strings containing rule triggers are inert:
    let a = "Instant::now() and records.iter() and thread_rng()";
    let b = "escaped quote \" then Instant::now()";
    let c = r"raw: SystemTime::now()";
    let d = r#"raw with hash: "xs.unwrap()" and OsRng"#;
    let e = r##"nested hash: r#"inner"# then panic!()"##;
    let f = b"byte string: rand::random()";
    let g = c"c string: from_entropy()";
    let h = 'x'; // char literal, not a lifetime
    let i = '\''; // escaped quote in a char
    let j = '\n';
    /* block comment: Instant::now()
       /* nested block comment: xs[0].unwrap() */
       still inside: thread_rng() */
    // line comment: SystemTime::now()
    /// doc comment: records.keys()
    fn inner<'a>(s: &'a str) -> &'a str {
        // lifetimes above must lex as lifetimes, not char literals
        s
    }
    format!("{a}{b}{c}{d}{e}{f:?}{g:?}{h}{i}{j}{}", inner("x"))
}

fn after_the_minefield(xs: &[u32]) -> u32 {
    // The lexer must still be in sync here:
    let t = Instant::now(); // FLAG:D2
    let _ = t;
    xs[0] // FLAG:P1
}

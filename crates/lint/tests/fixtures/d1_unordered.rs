//! D1 fixture: every unordered-iteration shape the rule must catch,
//! plus ordered lookalikes it must not. This file is never compiled —
//! the policy assigns no rules under `tests/`, so the workspace scan
//! ignores it; the fixture harness analyzes it with D1 forced on and
//! asserts the violation lines are exactly the marked ones.

use std::collections::{BTreeMap, HashMap, HashSet};

struct State {
    records: HashMap<u64, f64>,
    seen: HashSet<u32>,
    ordered: BTreeMap<u64, f64>,
}

fn violations(state: &mut State, extra: &mut HashMap<u64, u64>) {
    let _ = state.records.iter().count(); // FLAG:D1
    let _ = state.records.keys().count(); // FLAG:D1
    let _ = state.records.values().count(); // FLAG:D1
    for k in &state.seen { // FLAG:D1
        let _ = k;
    }
    for (k, v) in extra.drain() { // FLAG:D1
        let _ = (k, v);
    }
    let mut local = HashMap::new();
    local.insert(1u64, 2u64);
    let _ = local.into_iter().count(); // FLAG:D1
    for k in state.seen.iter() { // FLAG:D1
        let _ = k;
    }
}

fn clean(state: &State, plain: &[f64]) {
    // Ordered container: same method names, no violation.
    let _ = state.ordered.iter().count();
    for (k, v) in &state.ordered {
        let _ = (k, v);
    }
    // Point lookups on hash containers are fine.
    let _ = state.records.get(&1);
    let _ = state.seen.contains(&2);
    // Iterating a plain slice is fine: `plain` is never registered.
    for v in plain {
        let _ = v;
    }
}

//! The tier-1 lint gate: `cargo test` runs the full workspace scan, so
//! a determinism or panic-policy violation fails the ordinary test
//! suite — not just the dedicated CI step.

use std::path::Path;

use rideshare_lint::scan_workspace;

#[test]
fn workspace_has_zero_unwaived_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = scan_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    let listing: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        report.ok(),
        "unwaived lint violations:\n{}",
        listing.join("\n")
    );
    // Every committed waiver must carry a non-empty reason (W0 enforces
    // this at parse time; this is the belt to that suspender) and the
    // inventory must stay deliberate: growth means a conscious decision.
    for w in &report.waivers {
        assert!(
            !w.reason.trim().is_empty(),
            "{}:{}: waiver without a reason",
            w.file,
            w.line
        );
    }
}

//! Fixture suite: proves every rule fires on seeded violations and
//! stays quiet on the lookalikes, that waivers suppress exactly what
//! they claim (and are policed themselves), and that the lexer survives
//! the literal/comment minefield.
//!
//! Each fixture marks its expected unwaived violations with a trailing
//! `FLAG:<rule>` comment; the harness compares the analyzer's
//! `(rule, line)` set against the marked set, so fixtures stay
//! self-describing and line-number drift cannot silently pass.

use std::collections::BTreeSet;

use rideshare_lint::lexer::{lex, TokenKind};
use rideshare_lint::rules::{analyze_source, Rule};

fn fixture_src(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Runs `analyze_source` on a fixture and asserts its unwaived
/// `(rule, line)` set equals the fixture's `FLAG:` markers exactly.
fn check_fixture(name: &str, active: &[Rule]) {
    let src = fixture_src(name);
    let mut expected: BTreeSet<(String, u32)> = BTreeSet::new();
    for (i, text) in src.lines().enumerate() {
        for rule in ["D1", "D2", "D3", "P1", "W0", "W1"] {
            if text.contains(&format!("FLAG:{rule}")) {
                expected.insert((rule.to_string(), i as u32 + 1));
            }
        }
    }
    assert!(
        !expected.is_empty(),
        "{name}: fixture has no FLAG markers — broken fixture"
    );
    let report = analyze_source(&src, active);
    let got: BTreeSet<(String, u32)> = report
        .violations
        .iter()
        .filter(|v| !v.waived)
        .map(|v| (v.rule.to_string(), v.line))
        .collect();
    let missing: Vec<_> = expected.difference(&got).collect();
    let spurious: Vec<_> = got.difference(&expected).collect();
    assert!(
        missing.is_empty() && spurious.is_empty(),
        "{name}: missing={missing:?} spurious={spurious:?}"
    );
}

#[test]
fn d1_fires_on_unordered_iteration_only() {
    check_fixture("d1_unordered.rs", &[Rule::D1]);
}

#[test]
fn d2_d3_fire_on_clock_and_entropy_only() {
    check_fixture("d2_d3_clock_entropy.rs", &[Rule::D2, Rule::D3]);
}

#[test]
fn p1_fires_on_panic_paths_only() {
    check_fixture("p1_panics.rs", &[Rule::P1]);
}

#[test]
fn waivers_suppress_and_are_policed() {
    check_fixture("waivers.rs", &[Rule::D2, Rule::P1]);

    // The inventory keeps the two used waivers with their reasons.
    let report = analyze_source(&fixture_src("waivers.rs"), &[Rule::D2, Rule::P1]);
    let used: Vec<_> = report.waivers.iter().filter(|w| w.used).collect();
    assert_eq!(used.len(), 2, "expected exactly the two used waivers");
    assert!(used.iter().all(|w| !w.reason.is_empty()));
    assert!(used
        .iter()
        .any(|w| w.rule == Rule::D2 && w.reason.contains("same-line")));
    assert!(used
        .iter()
        .any(|w| w.rule == Rule::P1 && w.reason.contains("line above")));
    // And the waived violations are counted as waived, not dropped.
    assert_eq!(report.violations.iter().filter(|v| v.waived).count(), 2);
}

#[test]
fn lexer_survives_the_literal_minefield() {
    check_fixture("lexer_edge.rs", &[Rule::D1, Rule::D2, Rule::D3, Rule::P1]);
}

#[test]
fn cfg_test_items_are_exempt() {
    check_fixture("cfg_test_exempt.rs", &[Rule::D2, Rule::P1]);
}

#[test]
fn no_active_rules_means_no_findings_at_all() {
    // Fixture files live under tests/ in the real workspace scan, where
    // the policy assigns no rules: even a reasonless waiver must be
    // inert there.
    for name in [
        "d1_unordered.rs",
        "d2_d3_clock_entropy.rs",
        "p1_panics.rs",
        "waivers.rs",
        "lexer_edge.rs",
        "cfg_test_exempt.rs",
    ] {
        let report = analyze_source(&fixture_src(name), &[]);
        assert!(report.violations.is_empty(), "{name} fired with no rules");
        assert!(
            report.waivers.is_empty(),
            "{name} recorded waivers with no rules"
        );
    }
}

#[test]
fn lexer_token_kinds_disambiguate() {
    // Lifetime vs char literal vs raw identifier vs raw string.
    let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let r = r#\"'a\"#; r#type }");
    let kinds: Vec<(TokenKind, &str)> = lexed
        .tokens
        .iter()
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert!(kinds.contains(&(TokenKind::Lifetime, "a")), "{kinds:?}");
    assert!(kinds.iter().any(|(k, _)| *k == TokenKind::Char));
    assert!(kinds.iter().any(|(k, _)| *k == TokenKind::Str));
    assert!(kinds.contains(&(TokenKind::Ident, "type")), "r#type");

    // Nested block comments swallow everything and keep line counts.
    let lexed = lex("/* a /* b */ c */\nlet x = 1;");
    assert!(lexed.tokens.iter().any(|t| t.is_ident("let")));
    assert_eq!(
        lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("let"))
            .map(|t| t.line),
        Some(2)
    );

    // Multi-line strings advance the line counter.
    let lexed = lex("let s = \"line\nbreak\";\nlet y = 2;");
    assert_eq!(
        lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("y"))
            .map(|t| t.line),
        Some(3)
    );
}

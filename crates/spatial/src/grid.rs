//! Uniform-grid moving-object index.

use std::collections::HashMap;

/// Planar position of a moving object in meters.
///
/// The spatial crate keeps its own lightweight position type so that it has
/// no dependency on the road-network crate; callers convert from whatever
/// coordinate type they use (the simulator converts from `roadnet::Point`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East-west offset in meters.
    pub x: f64,
    /// North-south offset in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates in meters.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Integer cell coordinates (may be negative: the grid is unbounded).
type Cell = (i64, i64);

/// Counters describing index maintenance work, reported by the ablation
/// benchmarks on grid cell size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Calls to [`GridIndex::update`].
    pub updates: u64,
    /// Updates that moved the object into a different cell (the only ones
    /// that mutate the bucket structure).
    pub cell_crossings: u64,
    /// Radius queries answered.
    pub queries: u64,
    /// Total candidate objects returned across all radius queries.
    pub candidates_returned: u64,
    /// Candidates handed to the dispatcher's screening stage (the size of
    /// the candidate set before any pruning).
    pub candidates_in_radius: u64,
    /// Candidates rejected by the O(1) slack/deadline screen (no feasible
    /// insertion can exist, so no schedule evaluation is performed).
    pub pruned_by_slack: u64,
    /// Candidates skipped by the best-first early exit (their admissible
    /// lower bound already met or exceeded the incumbent assignment).
    pub pruned_by_bound: u64,
    /// Candidates that underwent a full schedule evaluation.
    pub evaluated: u64,
}

/// Uniform-grid spatial index over moving objects identified by `u32` ids.
///
/// Objects are hashed into square cells of side `cell_size`. A radius query
/// visits every cell intersecting the circle and filters candidates by exact
/// Euclidean distance, so results are exact (no false positives or
/// negatives) while the per-update cost stays constant.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    /// Object id -> exact position.
    positions: HashMap<u32, Position>,
    /// Cell -> ids of objects currently inside it.
    buckets: HashMap<Cell, Vec<u32>>,
    stats: GridStats,
}

impl GridIndex {
    /// Creates an index with square cells of side `cell_size` meters.
    ///
    /// A good default is the typical query radius (the waiting-time budget
    /// converted to meters): then a query touches at most nine cells.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        GridIndex {
            cell_size,
            positions: HashMap::new(),
            buckets: HashMap::new(),
            stats: GridStats::default(),
        }
    }

    /// The configured cell side length in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of objects currently indexed.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> GridStats {
        self.stats
    }

    /// Resets the maintenance counters.
    pub fn reset_stats(&mut self) {
        self.stats = GridStats::default();
    }

    fn cell_of(&self, p: Position) -> Cell {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Inserts a new object or repositions an existing one.
    pub fn insert(&mut self, id: u32, pos: Position) {
        match self.positions.insert(id, pos) {
            None => {
                self.buckets.entry(self.cell_of(pos)).or_default().push(id);
            }
            Some(old) => {
                let old_cell = self.cell_of(old);
                let new_cell = self.cell_of(pos);
                if old_cell != new_cell {
                    self.remove_from_bucket(old_cell, id);
                    self.buckets.entry(new_cell).or_default().push(id);
                }
            }
        }
    }

    /// Updates the position of an object that is already indexed.
    ///
    /// This is the hot path during simulation: the bucket structure is only
    /// touched when the object crosses a cell boundary, mirroring the
    /// paper's "the index is updated when a vehicle moves across boundaries
    /// of the index bounding box".
    ///
    /// Returns `true` if the object crossed a cell boundary.
    ///
    /// # Panics
    /// Panics if the object was never inserted.
    pub fn update(&mut self, id: u32, pos: Position) -> bool {
        self.stats.updates += 1;
        let old = *self
            .positions
            .get(&id)
            .expect("update called for an object that was never inserted");
        let old_cell = self.cell_of(old);
        let new_cell = self.cell_of(pos);
        self.positions.insert(id, pos);
        if old_cell != new_cell {
            self.stats.cell_crossings += 1;
            self.remove_from_bucket(old_cell, id);
            self.buckets.entry(new_cell).or_default().push(id);
            true
        } else {
            false
        }
    }

    /// Removes an object; returns its last position if it was present.
    pub fn remove(&mut self, id: u32) -> Option<Position> {
        let pos = self.positions.remove(&id)?;
        self.remove_from_bucket(self.cell_of(pos), id);
        Some(pos)
    }

    /// Exact current position of an object.
    pub fn position(&self, id: u32) -> Option<Position> {
        self.positions.get(&id).copied()
    }

    fn remove_from_bucket(&mut self, cell: Cell, id: u32) {
        if let Some(bucket) = self.buckets.get_mut(&cell) {
            if let Some(i) = bucket.iter().position(|&x| x == id) {
                bucket.swap_remove(i);
            }
            if bucket.is_empty() {
                self.buckets.remove(&cell);
            }
        }
    }

    /// Ids of all objects within Euclidean distance `radius` of `center`,
    /// sorted by id.
    pub fn query_radius(&mut self, center: Position, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_radius_into(center, radius, &mut out);
        out
    }

    /// Buffer-reusing form of [`GridIndex::query_radius`]: clears `out` and
    /// fills it with the ids of all objects within `radius` of `center`,
    /// sorted by id. The dispatch hot path calls this once per request, so
    /// reusing one buffer avoids an allocation per submitted trip.
    pub fn query_radius_into(&mut self, center: Position, radius: f64, out: &mut Vec<u32>) {
        self.stats.queries += 1;
        out.clear();
        let r = radius.max(0.0);
        let min_cell = self.cell_of(Position::new(center.x - r, center.y - r));
        let max_cell = self.cell_of(Position::new(center.x + r, center.y + r));
        for cx in min_cell.0..=max_cell.0 {
            for cy in min_cell.1..=max_cell.1 {
                if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                    for &id in bucket {
                        if self.positions[&id].distance(&center) <= r {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        self.stats.candidates_returned += out.len() as u64;
    }

    /// Folds one request's candidate-screening counts into the statistics.
    /// The dispatcher owns the pruning logic; the index owns the counters so
    /// that one `GridStats` snapshot describes the whole filter funnel
    /// (radius query -> slack screen -> best-first early exit -> evaluation).
    pub fn record_pruning(&mut self, in_radius: u64, by_slack: u64, by_bound: u64, evaluated: u64) {
        self.stats.candidates_in_radius += in_radius;
        self.stats.pruned_by_slack += by_slack;
        self.stats.pruned_by_bound += by_bound;
        self.stats.evaluated += evaluated;
    }

    /// The `k` objects nearest to `center` as `(id, distance)`, closest
    /// first. Returns fewer than `k` entries when the index holds fewer
    /// objects.
    pub fn nearest(&self, center: Position, k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.positions.is_empty() {
            return Vec::new();
        }
        // Expand the search ring by ring of cells until k candidates are
        // found whose distance is certified smaller than anything outside
        // the explored square.
        let center_cell = self.cell_of(center);
        let mut found: Vec<(u32, f64)> = Vec::new();
        let mut ring: i64 = 0;
        // Upper bound on rings: enough to cover every bucket.
        let max_ring = 2 + self
            .buckets
            .keys()
            .map(|&(cx, cy)| (cx - center_cell.0).abs().max((cy - center_cell.1).abs()))
            .max()
            .unwrap_or(0);
        loop {
            // Collect the cells on the boundary of the current ring.
            for cx in (center_cell.0 - ring)..=(center_cell.0 + ring) {
                for cy in (center_cell.1 - ring)..=(center_cell.1 + ring) {
                    let on_boundary =
                        (cx - center_cell.0).abs() == ring || (cy - center_cell.1).abs() == ring;
                    if !on_boundary {
                        continue;
                    }
                    if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                        for &id in bucket {
                            found.push((id, self.positions[&id].distance(&center)));
                        }
                    }
                }
            }
            found.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            // Anything outside the explored square is at least `ring *
            // cell_size` away from the center (conservatively).
            let safe_radius = ring as f64 * self.cell_size;
            if found.len() >= k && found[k - 1].1 <= safe_radius {
                found.truncate(k);
                return found;
            }
            if ring >= max_ring {
                found.truncate(k);
                return found;
            }
            ring += 1;
        }
    }

    /// Iterates over all `(id, position)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Position)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_radius(objects: &[(u32, Position)], center: Position, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = objects
            .iter()
            .filter(|(_, p)| p.distance(&center) <= r)
            .map(|&(id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut idx = GridIndex::new(100.0);
        idx.insert(1, Position::new(10.0, 10.0));
        idx.insert(2, Position::new(500.0, 500.0));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.query_radius(Position::new(0.0, 0.0), 50.0), vec![1]);
        assert_eq!(idx.position(2), Some(Position::new(500.0, 500.0)));
        assert_eq!(idx.remove(1), Some(Position::new(10.0, 10.0)));
        assert_eq!(idx.remove(1), None);
        assert_eq!(idx.len(), 1);
        assert!(idx.query_radius(Position::new(0.0, 0.0), 50.0).is_empty());
    }

    #[test]
    fn update_counts_cell_crossings() {
        let mut idx = GridIndex::new(100.0);
        idx.insert(1, Position::new(10.0, 10.0));
        assert!(!idx.update(1, Position::new(20.0, 20.0))); // same cell
        assert!(idx.update(1, Position::new(150.0, 10.0))); // crossed
        assert!(!idx.update(1, Position::new(160.0, 20.0)));
        let s = idx.stats();
        assert_eq!(s.updates, 3);
        assert_eq!(s.cell_crossings, 1);
        // The object is findable at its new cell only.
        assert_eq!(idx.query_radius(Position::new(150.0, 0.0), 50.0), vec![1]);
        assert!(idx.query_radius(Position::new(0.0, 0.0), 50.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "never inserted")]
    fn update_of_unknown_object_panics() {
        let mut idx = GridIndex::new(10.0);
        idx.update(99, Position::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::new(0.0);
    }

    #[test]
    fn radius_query_matches_brute_force() {
        // Deterministic pseudo-random layout without pulling in rand.
        let mut objects = Vec::new();
        let mut state: u64 = 12345;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10_000.0 - 5_000.0
        };
        for id in 0..300u32 {
            objects.push((id, Position::new(next(), next())));
        }
        let mut idx = GridIndex::new(777.0);
        for &(id, p) in &objects {
            idx.insert(id, p);
        }
        for (center, r) in [
            (Position::new(0.0, 0.0), 1_000.0),
            (Position::new(2_500.0, -2_500.0), 3_000.0),
            (Position::new(-4_900.0, 4_900.0), 200.0),
            (Position::new(0.0, 0.0), 0.0),
            (Position::new(123.0, 456.0), 20_000.0),
        ] {
            assert_eq!(
                idx.query_radius(center, r),
                brute_radius(&objects, center, r),
                "center {center:?} radius {r}"
            );
        }
        assert_eq!(idx.stats().queries, 5);
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let mut idx = GridIndex::new(50.0);
        idx.insert(1, Position::new(-10.0, -10.0));
        idx.insert(2, Position::new(-120.0, -80.0));
        assert_eq!(
            idx.query_radius(Position::new(-100.0, -100.0), 60.0),
            vec![2]
        );
        assert_eq!(
            idx.query_radius(Position::new(-60.0, -45.0), 100.0),
            vec![1, 2]
        );
    }

    #[test]
    fn nearest_returns_k_closest() {
        let mut idx = GridIndex::new(100.0);
        idx.insert(1, Position::new(0.0, 0.0));
        idx.insert(2, Position::new(50.0, 0.0));
        idx.insert(3, Position::new(500.0, 0.0));
        idx.insert(4, Position::new(5_000.0, 0.0));
        let got = idx.nearest(Position::new(10.0, 0.0), 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        assert!(got[0].1 < got[1].1);
        // Asking for more than available returns everything.
        assert_eq!(idx.nearest(Position::new(0.0, 0.0), 10).len(), 4);
        assert!(idx.nearest(Position::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force_ranking() {
        let mut objects = Vec::new();
        let mut state: u64 = 98765;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 8_000.0
        };
        let mut idx = GridIndex::new(400.0);
        for id in 0..200u32 {
            let p = Position::new(next(), next());
            objects.push((id, p));
            idx.insert(id, p);
        }
        let center = Position::new(4_000.0, 4_000.0);
        let got = idx.nearest(center, 5);
        let mut want: Vec<(u32, f64)> = objects
            .iter()
            .map(|&(id, p)| (id, p.distance(&center)))
            .collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        want.truncate(5);
        let got_ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
        let want_ids: Vec<u32> = want.iter().map(|&(id, _)| id).collect();
        assert_eq!(got_ids, want_ids);
    }

    #[test]
    fn iter_exposes_all_objects() {
        let mut idx = GridIndex::new(10.0);
        idx.insert(5, Position::new(1.0, 1.0));
        idx.insert(6, Position::new(2.0, 2.0));
        let mut ids: Vec<u32> = idx.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 6]);
        assert!(!idx.is_empty());
        assert_eq!(idx.cell_size(), 10.0);
    }

    #[test]
    fn query_radius_into_reuses_the_buffer() {
        let mut idx = GridIndex::new(100.0);
        idx.insert(1, Position::new(10.0, 10.0));
        idx.insert(2, Position::new(30.0, 0.0));
        idx.insert(3, Position::new(5_000.0, 0.0));
        let mut buf = vec![99u32; 8];
        idx.query_radius_into(Position::new(0.0, 0.0), 50.0, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        // A second query with the same buffer fully replaces the contents.
        idx.query_radius_into(Position::new(5_000.0, 0.0), 10.0, &mut buf);
        assert_eq!(buf, vec![3]);
        assert_eq!(idx.stats().queries, 2);
        assert_eq!(idx.stats().candidates_returned, 3);
        // Allocating and buffer-reusing forms agree.
        assert_eq!(idx.query_radius(Position::new(0.0, 0.0), 50.0), vec![1, 2]);
    }

    #[test]
    fn pruning_counters_accumulate() {
        let mut idx = GridIndex::new(100.0);
        idx.record_pruning(10, 4, 3, 3);
        idx.record_pruning(5, 0, 2, 3);
        let s = idx.stats();
        assert_eq!(s.candidates_in_radius, 15);
        assert_eq!(s.pruned_by_slack, 4);
        assert_eq!(s.pruned_by_bound, 5);
        assert_eq!(s.evaluated, 6);
        idx.reset_stats();
        assert_eq!(idx.stats(), GridStats::default());
    }

    #[test]
    fn stats_reset() {
        let mut idx = GridIndex::new(10.0);
        idx.insert(1, Position::new(0.0, 0.0));
        idx.update(1, Position::new(100.0, 0.0));
        idx.query_radius(Position::new(0.0, 0.0), 5.0);
        assert_ne!(idx.stats(), GridStats::default());
        idx.reset_stats();
        assert_eq!(idx.stats(), GridStats::default());
    }
}

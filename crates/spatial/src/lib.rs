//! Grid-based spatial index for moving objects.
//!
//! The paper tracks roughly 17,000 taxis that report their location every
//! 20–60 seconds and deliberately chooses "a simple grid-based spatial
//! index" over more elaborate moving-object indexes (TPR*-tree, B^x-tree,
//! STRIPES, …): the index is only used to find the vehicles *possibly*
//! within the waiting-time radius of a request, after which each candidate
//! vehicle is asked for its actual location and schedule. This crate
//! reproduces that component.
//!
//! [`GridIndex`] maps object ids to cells of a uniform grid; updates are
//! O(1) and only touch the structure when the object crosses a cell
//! boundary (the index keeps a counter of how often that happens, which the
//! ablation benchmarks report).
//!
//! ```
//! use spatial::{GridIndex, Position};
//!
//! let mut idx = GridIndex::new(1_000.0);       // 1 km cells
//! idx.insert(7, Position::new(100.0, 250.0));  // taxi 7
//! idx.insert(9, Position::new(5_000.0, 5_000.0));
//! let near = idx.query_radius(Position::new(0.0, 0.0), 2_000.0);
//! assert_eq!(near, vec![7]);
//! ```

pub mod grid;

pub use grid::{GridIndex, GridStats, Position};

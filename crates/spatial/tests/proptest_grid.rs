//! Property-based tests of the moving-object grid index.

use proptest::prelude::*;
use spatial::{GridIndex, Position};

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, f64, f64),
    Update(u32, f64, f64),
    Remove(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..30, -5_000.0f64..5_000.0, -5_000.0f64..5_000.0)
            .prop_map(|(id, x, y)| Op::Insert(id, x, y)),
        (0u32..30, -5_000.0f64..5_000.0, -5_000.0f64..5_000.0)
            .prop_map(|(id, x, y)| Op::Update(id, x, y)),
        (0u32..30).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After an arbitrary sequence of inserts/updates/removes, radius
    /// queries return exactly the objects a brute-force scan finds.
    #[test]
    fn index_matches_brute_force(
        ops in prop::collection::vec(op_strategy(), 1..120),
        cell in 50.0f64..3_000.0,
        qx in -5_000.0f64..5_000.0,
        qy in -5_000.0f64..5_000.0,
        radius in 0.0f64..6_000.0,
    ) {
        let mut idx = GridIndex::new(cell);
        let mut truth: std::collections::HashMap<u32, Position> = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Insert(id, x, y) => {
                    idx.insert(id, Position::new(x, y));
                    truth.insert(id, Position::new(x, y));
                }
                Op::Update(id, x, y) => {
                    if truth.contains_key(&id) {
                        idx.update(id, Position::new(x, y));
                        truth.insert(id, Position::new(x, y));
                    }
                }
                Op::Remove(id) => {
                    let a = idx.remove(id);
                    let b = truth.remove(&id);
                    prop_assert_eq!(a.is_some(), b.is_some());
                }
            }
            prop_assert_eq!(idx.len(), truth.len());
        }
        let centre = Position::new(qx, qy);
        let got = idx.query_radius(centre, radius);
        let mut want: Vec<u32> = truth
            .iter()
            .filter(|(_, p)| p.distance(&centre) <= radius)
            .map(|(&id, _)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `nearest(k)` returns the k objects with the smallest distances.
    #[test]
    fn knn_matches_brute_force(
        points in prop::collection::vec((-3_000.0f64..3_000.0, -3_000.0f64..3_000.0), 1..60),
        cell in 100.0f64..2_000.0,
        k in 1usize..10,
    ) {
        let mut idx = GridIndex::new(cell);
        for (i, &(x, y)) in points.iter().enumerate() {
            idx.insert(i as u32, Position::new(x, y));
        }
        let centre = Position::new(0.0, 0.0);
        let got = idx.nearest(centre, k);
        let mut want: Vec<(u32, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i as u32, Position::new(x, y).distance(&centre)))
            .collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g.1 - w.1).abs() < 1e-9, "distance ranking differs");
        }
    }
}

//! Synthetic Shanghai-like workloads: road networks and taxi trip streams.
//!
//! The paper evaluates on a proprietary dataset — one day of trips from
//! 17,000 Shanghai taxis (432,327 trips) over a road network of 122,319
//! vertices and 188,426 edges. That dataset is not redistributable, so this
//! crate generates synthetic workloads with the structural properties the
//! matching algorithms are sensitive to:
//!
//! * an urban road network (grid with jitter, dropout and arterials) whose
//!   size can be scaled from unit-test tiny up to the paper's scale;
//! * a demand stream with a 24-hour temporal profile (morning and evening
//!   rush peaks), spatially clustered around configurable hotspots
//!   (airport/CBD analogues) with a uniform background;
//! * deterministic generation from a seed, so every experiment is exactly
//!   reproducible.
//!
//! ```
//! use rideshare_workload::{CityConfig, DemandConfig, Workload};
//!
//! let workload = Workload::generate(
//!     &CityConfig::small(),
//!     &DemandConfig { trips: 200, ..DemandConfig::default() },
//!     42,
//! );
//! assert_eq!(workload.trips.len(), 200);
//! assert!(workload.network.is_connected());
//! ```

pub mod city;
pub mod demand;
pub mod io;

pub use city::{CityConfig, CityLayout, Hotspot};
pub use demand::{DemandConfig, TemporalProfile, TripEvent};
pub use io::{read_trips_file, trips_from_csv, trips_to_csv, write_trips_file, TripCsvError};

use roadnet::RoadNetwork;

/// A complete experimental workload: the road network, its hotspots and the
/// time-ordered trip stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The generated road network.
    pub network: RoadNetwork,
    /// Hotspot centres (airport/CBD analogues) used by the demand generator.
    pub hotspots: Vec<Hotspot>,
    /// Trip requests ordered by submission time.
    pub trips: Vec<TripEvent>,
}

impl Workload {
    /// Generates a workload: the city from `city`, then `demand.trips`
    /// requests over it, all derived deterministically from `seed`.
    pub fn generate(city: &CityConfig, demand: &DemandConfig, seed: u64) -> Self {
        let (network, hotspots) = city.build(seed);
        let trips = demand.generate(&network, &hotspots, seed ^ 0x9E37_79B9_7F4A_7C15);
        Workload {
            network,
            hotspots,
            trips,
        }
    }

    /// Total simulated span covered by the trip stream, in seconds.
    pub fn span_seconds(&self) -> f64 {
        self.trips.last().map(|t| t.time_seconds).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let city = CityConfig::small();
        let demand = DemandConfig {
            trips: 50,
            ..DemandConfig::default()
        };
        let a = Workload::generate(&city, &demand, 7);
        let b = Workload::generate(&city, &demand, 7);
        assert_eq!(a.trips.len(), b.trips.len());
        for (x, y) in a.trips.iter().zip(b.trips.iter()) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.destination, y.destination);
            assert_eq!(x.time_seconds, y.time_seconds);
        }
        let c = Workload::generate(&city, &demand, 8);
        assert!(
            a.trips
                .iter()
                .zip(c.trips.iter())
                .any(|(x, y)| x.source != y.source || x.time_seconds != y.time_seconds),
            "different seeds should differ"
        );
    }

    #[test]
    fn span_matches_last_trip() {
        let w = Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips: 25,
                ..DemandConfig::default()
            },
            3,
        );
        assert_eq!(w.span_seconds(), w.trips.last().unwrap().time_seconds);
        assert!(w.span_seconds() > 0.0);
    }
}

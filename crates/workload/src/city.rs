//! City presets: scalable synthetic urban road networks with hotspots.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{GeneratorConfig, NetworkKind, NodeId, Point, RoadNetwork};

/// A demand hotspot: a place that attracts or produces a disproportionate
/// share of trips (airport terminal, railway station, CBD block).
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Human-readable name (used by experiment reports).
    pub name: String,
    /// Road vertex at the centre of the hotspot.
    pub node: NodeId,
    /// Radius (meters) within which trips attach to the hotspot.
    pub radius: f64,
    /// Relative weight when choosing which hotspot a clustered trip uses.
    pub weight: f64,
}

/// Street layout of a synthetic city.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityLayout {
    /// Manhattan-style grid using [`CityConfig::rows`]/[`CityConfig::cols`].
    Grid,
    /// Concentric rings joined by radial spokes — a European-style centre
    /// with orbital roads (ignores `rows`/`cols`).
    RingRadial {
        /// Number of concentric rings.
        rings: usize,
        /// Number of radial spokes.
        spokes: usize,
    },
}

/// Configuration of a synthetic city.
#[derive(Debug, Clone, PartialEq)]
pub struct CityConfig {
    /// Street layout; [`CityLayout::Grid`] uses `rows`/`cols` below.
    pub layout: CityLayout,
    /// Number of intersection rows in the underlying grid (grid layout).
    pub rows: usize,
    /// Number of intersection columns in the underlying grid (grid layout).
    pub cols: usize,
    /// Distance between adjacent intersections in meters.
    pub block_meters: f64,
    /// Fraction of street segments removed to create dead ends and detours.
    pub edge_dropout: f64,
    /// Multiplicative edge-weight jitter (0.15 = up to 15% longer).
    pub weight_jitter: f64,
    /// Add diagonal arterial roads.
    pub arterials: bool,
    /// Number of hotspots to place (first is the "airport" at the edge of
    /// the city, the rest are CBD-style blocks near the centre).
    pub hotspots: usize,
    /// Hotspot attachment radius in meters.
    pub hotspot_radius: f64,
}

impl CityConfig {
    /// A tiny city for unit tests and doc examples (~100 intersections).
    pub fn small() -> Self {
        CityConfig {
            layout: CityLayout::Grid,
            rows: 10,
            cols: 10,
            block_meters: 250.0,
            edge_dropout: 0.05,
            weight_jitter: 0.15,
            arterials: false,
            hotspots: 2,
            hotspot_radius: 400.0,
        }
    }

    /// A mid-size city (~2,500 intersections) — the default for experiment
    /// harnesses, small enough that a full sweep finishes in minutes.
    pub fn medium() -> Self {
        CityConfig {
            layout: CityLayout::Grid,
            rows: 50,
            cols: 50,
            block_meters: 250.0,
            edge_dropout: 0.08,
            weight_jitter: 0.2,
            arterials: true,
            hotspots: 4,
            hotspot_radius: 600.0,
        }
    }

    /// A mid-size ring-radial city (~2,200 intersections): concentric
    /// orbital roads with radial arterials, the layout where hub orderings
    /// behave most differently from Manhattan grids. Used by the hub-label
    /// benchmark section.
    pub fn ring_city() -> Self {
        CityConfig {
            layout: CityLayout::RingRadial {
                rings: 45,
                spokes: 48,
            },
            rows: 0,
            cols: 0,
            block_meters: 250.0,
            edge_dropout: 0.05,
            weight_jitter: 0.2,
            arterials: false,
            hotspots: 3,
            hotspot_radius: 600.0,
        }
    }

    /// A large city (~10,000 intersections) for headline benchmark runs.
    pub fn large() -> Self {
        CityConfig {
            layout: CityLayout::Grid,
            rows: 100,
            cols: 100,
            block_meters: 220.0,
            edge_dropout: 0.08,
            weight_jitter: 0.2,
            arterials: true,
            hotspots: 6,
            hotspot_radius: 800.0,
        }
    }

    /// A city at the scale of the paper's Shanghai network (~120k vertices).
    /// Building the distance oracle for this preset takes significant time;
    /// it exists to demonstrate that the data structures scale, not for the
    /// default test suite.
    pub fn shanghai_scale() -> Self {
        CityConfig {
            layout: CityLayout::Grid,
            rows: 350,
            cols: 350,
            block_meters: 180.0,
            edge_dropout: 0.10,
            weight_jitter: 0.25,
            arterials: true,
            hotspots: 8,
            hotspot_radius: 1_000.0,
        }
    }

    /// Builds the road network and places the hotspots.
    pub fn build(&self, seed: u64) -> (RoadNetwork, Vec<Hotspot>) {
        let kind = match self.layout {
            CityLayout::Grid => NetworkKind::Grid {
                rows: self.rows,
                cols: self.cols,
            },
            CityLayout::RingRadial { rings, spokes } => NetworkKind::RingRadial { rings, spokes },
        };
        let network = GeneratorConfig {
            kind,
            seed,
            block_meters: self.block_meters,
            weight_jitter: self.weight_jitter,
            edge_dropout: self.edge_dropout,
            arterials: self.arterials,
        }
        .generate();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let (min, max) = network.bounding_box();
        let locator = roadnet::NodeLocator::new(&network);
        let mut hotspots = Vec::new();
        for i in 0..self.hotspots {
            let (name, point, weight) = if i == 0 {
                // The "airport": on the eastern edge, heavily weighted.
                (
                    "airport".to_string(),
                    Point::new(max.x, (min.y + max.y) * 0.5),
                    3.0,
                )
            } else {
                // CBD-style blocks scattered around the central third.
                let cx = min.x + (max.x - min.x) * (0.33 + 0.34 * rng.gen::<f64>());
                let cy = min.y + (max.y - min.y) * (0.33 + 0.34 * rng.gen::<f64>());
                (format!("cbd-{i}"), Point::new(cx, cy), 1.0)
            };
            hotspots.push(Hotspot {
                name,
                node: locator.nearest(point),
                radius: self.hotspot_radius,
                weight,
            });
        }
        (network, hotspots)
    }

    /// Expected number of intersections before dropout trimming.
    pub fn expected_nodes(&self) -> usize {
        match self.layout {
            CityLayout::Grid => self.rows * self.cols,
            CityLayout::RingRadial { rings, spokes } => 1 + rings * spokes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_city_builds_connected_network_with_hotspots() {
        let (network, hotspots) = CityConfig::small().build(1);
        assert!(network.is_connected());
        assert!(network.node_count() > 80);
        assert_eq!(hotspots.len(), 2);
        assert_eq!(hotspots[0].name, "airport");
        assert!(hotspots[0].weight > hotspots[1].weight);
        for h in &hotspots {
            assert!((h.node as usize) < network.node_count());
        }
    }

    #[test]
    fn ring_city_builds_connected_ring_radial_network() {
        let cfg = CityConfig::ring_city();
        assert!(cfg.expected_nodes() > 2_000);
        let (network, hotspots) = cfg.build(3);
        assert!(network.is_connected());
        assert!(network.node_count() > 1_800);
        assert_eq!(hotspots.len(), 3);
        assert_eq!(hotspots[0].name, "airport");
        // Ring-radial hallmark: the bounding box is roughly square and
        // centred, unlike a grid anchored at the origin.
        let (min, max) = network.bounding_box();
        assert!(min.x < 0.0 && min.y < 0.0 && max.x > 0.0 && max.y > 0.0);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let cfg = CityConfig::small();
        let (a, ha) = cfg.build(9);
        let (b, hb) = cfg.build(9);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(ha, hb);
    }

    #[test]
    fn presets_scale_up() {
        assert!(CityConfig::small().expected_nodes() < CityConfig::medium().expected_nodes());
        assert!(CityConfig::medium().expected_nodes() < CityConfig::large().expected_nodes());
        assert!(
            CityConfig::shanghai_scale().expected_nodes() > 120_000,
            "the shanghai-scale preset must reach the paper's vertex count"
        );
    }

    #[test]
    fn airport_sits_on_the_eastern_edge() {
        let (network, hotspots) = CityConfig::medium().build(4);
        let (_, max) = network.bounding_box();
        let airport = network.point(hotspots[0].node);
        assert!(
            airport.x > max.x * 0.9,
            "airport should hug the eastern edge"
        );
    }
}

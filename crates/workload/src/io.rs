//! Loading and saving trip streams as CSV.
//!
//! The paper's input is a day of real taxi trips ("each trip t includes the
//! starting and destination coordinates t.s and t.e and the start time
//! t.time"). Users who have such a dataset can feed it to this workspace
//! through the CSV format below; the synthetic generator writes the same
//! format so that workloads can be inspected, archived and replayed.
//!
//! Two layouts are accepted, distinguished by the header:
//!
//! * **Vertex layout** (`time_s,source,destination`) — endpoints are road
//!   vertex ids, ready to simulate;
//! * **Coordinate layout** (`time_s,sx,sy,ex,ey`) — endpoints are planar
//!   coordinates in meters, pre-mapped to the nearest vertex on load
//!   exactly as the paper pre-maps GPS points.

use roadnet::{NodeLocator, Point, RoadNetwork};

use crate::demand::TripEvent;

/// Errors produced while parsing a trip CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum TripCsvError {
    /// The file is empty or its header matches neither layout.
    BadHeader(String),
    /// A data line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A vertex id is outside the road network.
    UnknownVertex {
        /// 1-based line number.
        line: usize,
        /// The offending vertex id.
        vertex: u64,
    },
}

impl std::fmt::Display for TripCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripCsvError::BadHeader(h) => write!(f, "unrecognised trip CSV header: {h}"),
            TripCsvError::BadLine { line, message } => {
                write!(f, "trip CSV line {line}: {message}")
            }
            TripCsvError::UnknownVertex { line, vertex } => {
                write!(
                    f,
                    "trip CSV line {line}: vertex {vertex} not in the network"
                )
            }
        }
    }
}

impl std::error::Error for TripCsvError {}

/// Serialises a trip stream in the vertex layout.
pub fn trips_to_csv(trips: &[TripEvent]) -> String {
    let mut out = String::from("time_s,source,destination\n");
    for t in trips {
        out.push_str(&format!(
            "{:.3},{},{}\n",
            t.time_seconds, t.source, t.destination
        ));
    }
    out
}

/// Parses a trip stream; endpoints given as coordinates are mapped to the
/// nearest vertex of `network`. The result is sorted by submission time and
/// re-numbered in that order.
pub fn trips_from_csv(text: &str, network: &RoadNetwork) -> Result<Vec<TripEvent>, TripCsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| TripCsvError::BadHeader(String::new()))?;
    let header_cols: Vec<&str> = header.split(',').map(str::trim).collect();
    let vertex_layout: bool = match header_cols.as_slice() {
        ["time_s", "source", "destination"] => true,
        ["time_s", "sx", "sy", "ex", "ey"] => false,
        _ => return Err(TripCsvError::BadHeader(header.to_string())),
    };
    let locator = if vertex_layout {
        None
    } else {
        Some(NodeLocator::new(network))
    };
    let n = network.node_count() as u64;
    let mut trips = Vec::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        let field = |i: usize| -> Result<f64, TripCsvError> {
            cols.get(i)
                .ok_or_else(|| TripCsvError::BadLine {
                    line: line_no,
                    message: format!("missing field {i}"),
                })?
                .parse()
                .map_err(|_| TripCsvError::BadLine {
                    line: line_no,
                    message: format!("invalid number in field {i}"),
                })
        };
        let time_seconds = field(0)?;
        if !time_seconds.is_finite() || time_seconds < 0.0 {
            return Err(TripCsvError::BadLine {
                line: line_no,
                message: "submission time must be a non-negative number".into(),
            });
        }
        let (source, destination) = if vertex_layout {
            let s = field(1)? as u64;
            let e = field(2)? as u64;
            for v in [s, e] {
                if v >= n {
                    return Err(TripCsvError::UnknownVertex {
                        line: line_no,
                        vertex: v,
                    });
                }
            }
            (s as u32, e as u32)
        } else {
            let locator = locator
                .as_ref()
                .expect("locator built for coordinate layout");
            let s = locator.nearest(Point::new(field(1)?, field(2)?));
            let e = locator.nearest(Point::new(field(3)?, field(4)?));
            (s, e)
        };
        if source == destination {
            // Degenerate trips (both endpoints snap to the same vertex) are
            // dropped, matching the generator's behaviour.
            continue;
        }
        trips.push(TripEvent {
            id: 0,
            source,
            destination,
            time_seconds,
        });
    }
    trips.sort_by(|a, b| a.time_seconds.partial_cmp(&b.time_seconds).unwrap());
    for (i, t) in trips.iter_mut().enumerate() {
        t.id = i as u64;
    }
    Ok(trips)
}

/// Reads a trip CSV file.
pub fn read_trips_file<P: AsRef<std::path::Path>>(
    path: P,
    network: &RoadNetwork,
) -> Result<Vec<TripEvent>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(trips_from_csv(&text, network)?)
}

/// Writes a trip CSV file in the vertex layout.
pub fn write_trips_file<P: AsRef<std::path::Path>>(
    trips: &[TripEvent],
    path: P,
) -> std::io::Result<()> {
    std::fs::write(path, trips_to_csv(trips))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use crate::demand::DemandConfig;

    fn network() -> RoadNetwork {
        CityConfig::small().build(3).0
    }

    #[test]
    fn vertex_layout_roundtrip() {
        let network = network();
        let demand = DemandConfig {
            trips: 40,
            ..DemandConfig::default()
        };
        let trips = demand.generate(&network, &[], 5);
        let csv = trips_to_csv(&trips);
        let back = trips_from_csv(&csv, &network).unwrap();
        assert_eq!(back.len(), trips.len());
        for (a, b) in trips.iter().zip(back.iter()) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.destination, b.destination);
            assert!((a.time_seconds - b.time_seconds).abs() < 1e-3);
        }
    }

    #[test]
    fn coordinate_layout_maps_to_nearest_vertex() {
        let network = network();
        let p5 = network.point(5);
        let p40 = network.point(40);
        let csv = format!(
            "time_s,sx,sy,ex,ey\n30.0,{},{},{},{}\n",
            p5.x + 10.0,
            p5.y - 10.0,
            p40.x + 5.0,
            p40.y + 5.0
        );
        let trips = trips_from_csv(&csv, &network).unwrap();
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].source, 5);
        assert_eq!(trips[0].destination, 40);
        assert_eq!(trips[0].time_seconds, 30.0);
    }

    #[test]
    fn unsorted_input_is_sorted_and_renumbered() {
        let network = network();
        let csv = "time_s,source,destination\n100.0,1,2\n50.0,3,4\n75.0,5,6\n";
        let trips = trips_from_csv(csv, &network).unwrap();
        let times: Vec<f64> = trips.iter().map(|t| t.time_seconds).collect();
        assert_eq!(times, vec![50.0, 75.0, 100.0]);
        assert_eq!(
            trips.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn degenerate_and_comment_lines_are_skipped() {
        let network = network();
        let csv = "time_s,source,destination\n# a comment\n10.0,7,7\n\n20.0,1,2\n";
        let trips = trips_from_csv(csv, &network).unwrap();
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].source, 1);
    }

    #[test]
    fn errors_are_descriptive() {
        let network = network();
        assert!(matches!(
            trips_from_csv("bogus,header\n", &network),
            Err(TripCsvError::BadHeader(_))
        ));
        assert!(matches!(
            trips_from_csv("time_s,source,destination\nx,1,2\n", &network),
            Err(TripCsvError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            trips_from_csv("time_s,source,destination\n5.0,1\n", &network),
            Err(TripCsvError::BadLine { .. })
        ));
        assert!(matches!(
            trips_from_csv("time_s,source,destination\n5.0,1,999999\n", &network),
            Err(TripCsvError::UnknownVertex { vertex: 999999, .. })
        ));
        assert!(matches!(
            trips_from_csv("time_s,source,destination\n-5.0,1,2\n", &network),
            Err(TripCsvError::BadLine { .. })
        ));
        // Errors implement Display.
        let e = TripCsvError::BadHeader("h".into());
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn file_roundtrip() {
        let network = network();
        let demand = DemandConfig {
            trips: 10,
            ..DemandConfig::default()
        };
        let trips = demand.generate(&network, &[], 1);
        let dir = std::env::temp_dir().join("rideshare_trips_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trips.csv");
        write_trips_file(&trips, &path).unwrap();
        let back = read_trips_file(&path, &network).unwrap();
        assert_eq!(back.len(), trips.len());
        std::fs::remove_file(path).ok();
    }
}

//! Demand generation: trip request streams with rush-hour peaks and
//! hotspot clustering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{NodeId, NodeLocator, RoadNetwork};

use crate::city::Hotspot;

/// One trip request of the workload (the simulator converts this to a
/// `kinetic_core::TripRequest` when it is submitted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripEvent {
    /// Sequential id, also used as the core `TripId`.
    pub id: u64,
    /// Pickup vertex.
    pub source: NodeId,
    /// Drop-off vertex.
    pub destination: NodeId,
    /// Submission time in seconds from the start of the simulated day.
    pub time_seconds: f64,
}

/// Hourly demand profile over a 24-hour day.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalProfile {
    /// Relative demand weight of each of the 24 hours.
    pub hourly_weights: [f64; 24],
}

impl TemporalProfile {
    /// Taxi-like profile: low demand overnight, a morning peak around
    /// 7–9 am, sustained daytime demand and an evening peak around 5–8 pm.
    pub fn taxi_day() -> Self {
        let hourly_weights = [
            1.2, 0.8, 0.5, 0.4, 0.5, 1.0, // 0-5
            2.5, 5.0, 6.0, 4.0, 3.0, 3.2, // 6-11
            3.5, 3.2, 3.0, 3.2, 4.0, 5.5, // 12-17
            6.5, 6.0, 4.5, 3.5, 2.5, 1.8, // 18-23
        ];
        TemporalProfile { hourly_weights }
    }

    /// Uniform demand (useful for micro-benchmarks where the temporal shape
    /// would only add noise).
    pub fn uniform() -> Self {
        TemporalProfile {
            hourly_weights: [1.0; 24],
        }
    }

    /// Draws a submission time (seconds in `[0, span_seconds)`) from the
    /// profile.
    pub fn sample(&self, rng: &mut StdRng, span_seconds: f64) -> f64 {
        let total: f64 = self.hourly_weights.iter().sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut hour = 0usize;
        for (h, &w) in self.hourly_weights.iter().enumerate() {
            if pick < w {
                hour = h;
                break;
            }
            pick -= w;
        }
        let within = rng.gen::<f64>();
        ((hour as f64 + within) / 24.0) * span_seconds
    }
}

/// Configuration of the demand stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandConfig {
    /// Number of trip requests to generate.
    pub trips: usize,
    /// Length of the simulated day in seconds (the paper uses one full day).
    pub span_seconds: f64,
    /// Temporal demand profile.
    pub profile: TemporalProfile,
    /// Fraction of trips with at least one endpoint attached to a hotspot.
    pub hotspot_fraction: f64,
    /// Minimum direct trip distance in meters (trips shorter than this are
    /// re-drawn; riders rarely hail a taxi for a one-block hop).
    pub min_trip_meters: f64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            trips: 1_000,
            span_seconds: 24.0 * 3_600.0,
            profile: TemporalProfile::taxi_day(),
            hotspot_fraction: 0.35,
            min_trip_meters: 800.0,
        }
    }
}

impl DemandConfig {
    /// Generates the trip stream over `network`, sorted by submission time.
    pub fn generate(
        &self,
        network: &RoadNetwork,
        hotspots: &[Hotspot],
        seed: u64,
    ) -> Vec<TripEvent> {
        let mut rng = StdRng::seed_from_u64(seed);
        let locator = NodeLocator::new(network);
        let n = network.node_count() as u64;
        let hotspot_total_weight: f64 = hotspots.iter().map(|h| h.weight).sum();

        let pick_uniform = |rng: &mut StdRng| (rng.gen::<u64>() % n) as NodeId;
        let pick_hotspot_node = |rng: &mut StdRng| -> NodeId {
            if hotspots.is_empty() || hotspot_total_weight <= 0.0 {
                return pick_uniform(rng);
            }
            let mut pick = rng.gen::<f64>() * hotspot_total_weight;
            let mut chosen = &hotspots[0];
            for h in hotspots {
                if pick < h.weight {
                    chosen = h;
                    break;
                }
                pick -= h.weight;
            }
            // A vertex near the hotspot centre, drawn uniformly from the
            // attachment disc.
            let centre = network.point(chosen.node);
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            let radius = chosen.radius * rng.gen::<f64>().sqrt();
            locator.nearest(roadnet::Point::new(
                centre.x + radius * angle.cos(),
                centre.y + radius * angle.sin(),
            ))
        };

        let mut events = Vec::with_capacity(self.trips);
        for id in 0..self.trips as u64 {
            let mut attempt = 0;
            let (source, destination) = loop {
                attempt += 1;
                let clustered = rng.gen::<f64>() < self.hotspot_fraction;
                let (s, e) = if clustered {
                    // Half the clustered trips start at the hotspot (people
                    // leaving the airport), half end there.
                    if rng.gen::<bool>() {
                        (pick_hotspot_node(&mut rng), pick_uniform(&mut rng))
                    } else {
                        (pick_uniform(&mut rng), pick_hotspot_node(&mut rng))
                    }
                } else {
                    (pick_uniform(&mut rng), pick_uniform(&mut rng))
                };
                if s == e {
                    continue;
                }
                let euclid = network.point(s).distance(&network.point(e));
                if euclid >= self.min_trip_meters || attempt > 20 {
                    break (s, e);
                }
            };
            let time_seconds = self.profile.sample(&mut rng, self.span_seconds);
            events.push(TripEvent {
                id,
                source,
                destination,
                time_seconds,
            });
        }
        events.sort_by(|a, b| a.time_seconds.partial_cmp(&b.time_seconds).unwrap());
        // Re-number so ids follow submission order (handy for debugging).
        for (i, e) in events.iter_mut().enumerate() {
            e.id = i as u64;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;

    fn setup() -> (RoadNetwork, Vec<Hotspot>) {
        CityConfig::small().build(3)
    }

    #[test]
    fn generates_requested_number_sorted_by_time() {
        let (network, hotspots) = setup();
        let cfg = DemandConfig {
            trips: 300,
            ..DemandConfig::default()
        };
        let trips = cfg.generate(&network, &hotspots, 5);
        assert_eq!(trips.len(), 300);
        assert!(trips
            .windows(2)
            .all(|w| w[0].time_seconds <= w[1].time_seconds));
        assert!(trips.iter().enumerate().all(|(i, t)| t.id == i as u64));
        assert!(trips.iter().all(|t| t.source != t.destination));
        assert!(trips
            .iter()
            .all(|t| (t.source as usize) < network.node_count()
                && (t.destination as usize) < network.node_count()));
        assert!(trips
            .iter()
            .all(|t| t.time_seconds >= 0.0 && t.time_seconds <= cfg.span_seconds));
    }

    #[test]
    fn rush_hours_receive_more_demand_than_night() {
        let (network, hotspots) = setup();
        let cfg = DemandConfig {
            trips: 5_000,
            ..DemandConfig::default()
        };
        let trips = cfg.generate(&network, &hotspots, 11);
        let count_in = |from_h: f64, to_h: f64| {
            trips
                .iter()
                .filter(|t| {
                    let h = t.time_seconds / 3_600.0;
                    h >= from_h && h < to_h
                })
                .count()
        };
        let morning_rush = count_in(7.0, 9.0);
        let deep_night = count_in(2.0, 4.0);
        assert!(
            morning_rush > 3 * deep_night,
            "rush {morning_rush} vs night {deep_night}"
        );
    }

    #[test]
    fn hotspot_fraction_concentrates_endpoints() {
        let (network, hotspots) = setup();
        let clustered_cfg = DemandConfig {
            trips: 2_000,
            hotspot_fraction: 0.9,
            ..DemandConfig::default()
        };
        let uniform_cfg = DemandConfig {
            trips: 2_000,
            hotspot_fraction: 0.0,
            ..DemandConfig::default()
        };
        let near_hotspot = |trips: &[TripEvent]| {
            trips
                .iter()
                .filter(|t| {
                    hotspots.iter().any(|h| {
                        let c = network.point(h.node);
                        network.point(t.source).distance(&c) <= h.radius
                            || network.point(t.destination).distance(&c) <= h.radius
                    })
                })
                .count()
        };
        let clustered = near_hotspot(&clustered_cfg.generate(&network, &hotspots, 2));
        let uniform = near_hotspot(&uniform_cfg.generate(&network, &hotspots, 2));
        assert!(
            clustered > uniform * 2,
            "clustered {clustered} vs uniform {uniform}"
        );
    }

    #[test]
    fn minimum_trip_length_is_respected_mostly() {
        let (network, hotspots) = setup();
        let cfg = DemandConfig {
            trips: 500,
            min_trip_meters: 1_000.0,
            ..DemandConfig::default()
        };
        let trips = cfg.generate(&network, &hotspots, 6);
        let long_enough = trips
            .iter()
            .filter(|t| {
                network
                    .point(t.source)
                    .distance(&network.point(t.destination))
                    >= 1_000.0
            })
            .count();
        assert!(long_enough as f64 >= 0.9 * trips.len() as f64);
    }

    #[test]
    fn uniform_profile_spreads_demand() {
        let profile = TemporalProfile::uniform();
        let mut rng = StdRng::seed_from_u64(1);
        let span = 24.0 * 3600.0;
        let samples: Vec<f64> = (0..2_000).map(|_| profile.sample(&mut rng, span)).collect();
        let first_half = samples.iter().filter(|&&t| t < span / 2.0).count();
        assert!(
            (first_half as f64 - 1_000.0).abs() < 150.0,
            "uniform profile should split evenly, got {first_half}"
        );
    }
}

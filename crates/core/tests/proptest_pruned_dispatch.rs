//! Property: slack-pruned best-first dispatch is lossless.
//!
//! For random fleets, workloads, networks (grid and ring-radial) and
//! planner kinds, the default pruned dispatcher must produce the same
//! assignment sequence, the same [`DispatchStats`] counts — modulo the ART
//! evaluation buckets, which legitimately shrink under pruning — and the
//! same committed fleet state as exhaustive evaluation
//! (`use_pruning: false`); and the pruned [`ParallelDispatcher`] must stay
//! bit-identical to the pruned sequential loop (ART buckets included) for
//! every worker count.

use kinetic_core::{
    AssignmentOutcome, Constraints, DispatchStats, Dispatcher, DispatcherConfig, KineticConfig,
    ParallelDispatcher, PlannerKind, SolverKind, TripRequest, Vehicle,
};
use proptest::prelude::*;
use roadnet::{CachedOracle, GeneratorConfig, NetworkKind, NodeId, ShardedOracle};
use spatial::{GridIndex, Position};

fn network(kind_index: usize) -> roadnet::RoadNetwork {
    let kind = match kind_index {
        0 => NetworkKind::Grid { rows: 8, cols: 8 },
        _ => NetworkKind::RingRadial {
            rings: 4,
            spokes: 9,
        },
    };
    GeneratorConfig {
        kind,
        seed: 11,
        ..GeneratorConfig::default()
    }
    .generate()
}

fn planner(planner_index: usize) -> PlannerKind {
    match planner_index {
        0 => PlannerKind::Kinetic(KineticConfig::basic()),
        1 => PlannerKind::Kinetic(KineticConfig::slack()),
        2 => PlannerKind::Kinetic(KineticConfig::hotspot(4_000.0)),
        _ => PlannerKind::Solver(SolverKind::BranchBound),
    }
}

fn fleet(
    graph: &roadnet::RoadNetwork,
    positions: &[NodeId],
    planner: PlannerKind,
) -> (Vec<Vehicle>, GridIndex) {
    let mut vehicles = Vec::with_capacity(positions.len());
    let mut index = GridIndex::new(1_000.0);
    for (i, &node) in positions.iter().enumerate() {
        let node = node % graph.node_count() as u32;
        let v = Vehicle::new(i as u32, node, 4, planner, 0.0);
        let p = graph.point(node);
        index.insert(i as u32, Position::new(p.x, p.y));
        vehicles.push(v);
    }
    (vehicles, index)
}

fn build_requests(
    graph: &roadnet::RoadNetwork,
    pairs: &[(NodeId, NodeId)],
    constraints: Constraints,
) -> Vec<TripRequest> {
    let n = graph.node_count() as u32;
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| {
            let s = s % n;
            let d = d % n;
            let d = if d == s { (d + 1) % n } else { d };
            TripRequest::new(i as u64 + 1, s, d, 0.0, constraints)
        })
        .collect()
}

/// Counts that must survive pruning untouched (everything but the ART
/// evaluation buckets).
fn outcome_counts(stats: &DispatchStats) -> (u64, u64, u64, u64) {
    (
        stats.requests,
        stats.assigned,
        stats.rejected,
        stats.candidates,
    )
}

/// Full counts-only view including ART buckets, for the pruned-sequential
/// vs pruned-parallel comparison (the nanosecond fields are wall clock and
/// legitimately differ).
fn stat_counts(stats: &DispatchStats) -> (u64, u64, u64, u64, Vec<(usize, u64)>) {
    (
        stats.requests,
        stats.assigned,
        stats.rejected,
        stats.candidates,
        stats
            .art_buckets
            .iter()
            .map(|(&k, &(c, _))| (k, c))
            .collect(),
    )
}

fn assert_fleet_eq(a: &[Vehicle], b: &[Vehicle]) {
    for (v, sv) in a.iter().zip(b.iter()) {
        assert_eq!(v.id(), sv.id());
        assert_eq!(v.active_trip_count(), sv.active_trip_count());
        assert_eq!(
            v.route(),
            sv.route(),
            "route diverged for vehicle {}",
            v.id()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pruned_dispatch_is_lossless(
        net_index in 0usize..2,
        planner_index in 0usize..4,
        positions in prop::collection::vec(0u32..1024, 1..16),
        trip_pairs in prop::collection::vec((0u32..1024, 0u32..1024), 1..10),
        wait_m in 2_000.0f64..12_000.0,
        detour in 0.2f64..0.6,
    ) {
        let graph = network(net_index);
        let kind = planner(planner_index);
        let constraints = Constraints::new(wait_m, detour);
        let requests = build_requests(&graph, &trip_pairs, constraints);
        let oracle = CachedOracle::without_labels(&graph);

        // Reference: exhaustive sequential evaluation, pruning off.
        let (mut ex_vehicles, mut ex_index) = fleet(&graph, &positions, kind);
        let mut exhaustive = Dispatcher::new(DispatcherConfig {
            use_pruning: false,
            ..DispatcherConfig::default()
        });
        let ex_outcomes: Vec<AssignmentOutcome> = requests
            .iter()
            .map(|r| exhaustive.assign(r, &mut ex_vehicles, &graph, &mut ex_index, &oracle))
            .collect();

        // Pruned sequential: identical assignments, counts and fleet; the
        // ART buckets record strictly fewer evaluations.
        let (mut pr_vehicles, mut pr_index) = fleet(&graph, &positions, kind);
        let mut pruned = Dispatcher::new(DispatcherConfig::default());
        let pr_outcomes: Vec<AssignmentOutcome> = requests
            .iter()
            .map(|r| pruned.assign(r, &mut pr_vehicles, &graph, &mut pr_index, &oracle))
            .collect();
        prop_assert_eq!(&pr_outcomes, &ex_outcomes, "pruned outcomes diverged from exhaustive");
        prop_assert_eq!(outcome_counts(pruned.stats()), outcome_counts(exhaustive.stats()));
        prop_assert!(
            pruned.stats().evaluated() <= exhaustive.stats().evaluated(),
            "pruning must never evaluate more candidates ({} > {})",
            pruned.stats().evaluated(),
            exhaustive.stats().evaluated()
        );
        assert_fleet_eq(&pr_vehicles, &ex_vehicles);
        let pruned_counts = stat_counts(pruned.stats());

        // Pruned parallel: bit-identical to pruned sequential — ART
        // buckets included — at every worker count.
        let par_oracle = ShardedOracle::without_labels(&graph);
        for workers in [1usize, 2, 4, 8] {
            let (mut vehicles, mut index) = fleet(&graph, &positions, kind);
            // Threshold zero: force the threaded path even on tiny fleets.
            let par_config = DispatcherConfig {
                min_parallel_items: 0,
                ..DispatcherConfig::default()
            };
            let mut par = ParallelDispatcher::new(par_config, workers);
            let outcomes = par.assign_batch(&requests, &mut vehicles, &graph, &mut index, &par_oracle);
            prop_assert_eq!(&outcomes, &pr_outcomes, "outcomes diverged at workers = {}", workers);
            prop_assert_eq!(
                stat_counts(par.stats()),
                pruned_counts.clone(),
                "stat counts diverged at workers = {}",
                workers
            );
            assert_fleet_eq(&vehicles, &pr_vehicles);
        }
    }
}

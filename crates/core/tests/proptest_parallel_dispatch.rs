//! Property: parallel dispatch is bit-identical to sequential dispatch.
//!
//! For random fleets and request batches, [`ParallelDispatcher`] must
//! produce the same assignment sequence (same winning vehicles, costs and
//! candidate counts), the same [`DispatchStats`] counts (requests,
//! assigned, rejected, candidates, ART bucket evaluation counts) and the
//! same committed fleet state as running [`Dispatcher::assign`] over the
//! batch in order — for every worker count.

use kinetic_core::{
    AssignmentOutcome, Constraints, DispatchStats, Dispatcher, DispatcherConfig, KineticConfig,
    ParallelDispatcher, PlannerKind, TripRequest, Vehicle,
};
use proptest::prelude::*;
use roadnet::{CachedOracle, GeneratorConfig, NetworkKind, NodeId, ShardedOracle};
use spatial::{GridIndex, Position};

const ROWS: usize = 8;
const COLS: usize = 8;
const NODES: u32 = (ROWS * COLS) as u32;

fn network() -> roadnet::RoadNetwork {
    GeneratorConfig {
        kind: NetworkKind::Grid {
            rows: ROWS,
            cols: COLS,
        },
        seed: 11,
        ..GeneratorConfig::default()
    }
    .generate()
}

fn fleet(graph: &roadnet::RoadNetwork, positions: &[NodeId]) -> (Vec<Vehicle>, GridIndex) {
    let mut vehicles = Vec::with_capacity(positions.len());
    let mut index = GridIndex::new(1_000.0);
    for (i, &node) in positions.iter().enumerate() {
        let v = Vehicle::new(
            i as u32,
            node,
            4,
            PlannerKind::Kinetic(KineticConfig::slack()),
            0.0,
        );
        let p = graph.point(node);
        index.insert(i as u32, Position::new(p.x, p.y));
        vehicles.push(v);
    }
    (vehicles, index)
}

fn build_requests(pairs: &[(NodeId, NodeId)], constraints: Constraints) -> Vec<TripRequest> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| {
            let d = if d == s { (d + 1) % NODES } else { d };
            TripRequest::new(i as u64 + 1, s, d, 0.0, constraints)
        })
        .collect()
}

/// Counts-only view of the statistics (the nanosecond fields are wall
/// clock and legitimately differ between runs).
fn stat_counts(stats: &DispatchStats) -> (u64, u64, u64, u64, Vec<(usize, u64)>) {
    (
        stats.requests,
        stats.assigned,
        stats.rejected,
        stats.candidates,
        stats
            .art_buckets
            .iter()
            .map(|(&k, &(c, _))| (k, c))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_dispatch_is_bit_identical_to_sequential(
        positions in prop::collection::vec(0u32..NODES, 1..16),
        trip_pairs in prop::collection::vec((0u32..NODES, 0u32..NODES), 1..10),
        wait_m in 2_000.0f64..12_000.0,
        detour in 0.2f64..0.6,
    ) {
        let graph = network();
        let constraints = Constraints::new(wait_m, detour);
        let requests = build_requests(&trip_pairs, constraints);

        // Reference: the sequential dispatcher, one request at a time.
        let seq_oracle = CachedOracle::without_labels(&graph);
        let (mut seq_vehicles, mut seq_index) = fleet(&graph, &positions);
        let mut seq = Dispatcher::new(DispatcherConfig::default());
        let seq_outcomes: Vec<AssignmentOutcome> = requests
            .iter()
            .map(|r| seq.assign(r, &mut seq_vehicles, &graph, &mut seq_index, &seq_oracle))
            .collect();
        let seq_counts = stat_counts(seq.stats());

        let par_oracle = ShardedOracle::without_labels(&graph);
        for workers in [1usize, 2, 4, 8] {
            let (mut vehicles, mut index) = fleet(&graph, &positions);
            // Threshold zero: force the threaded path even on tiny fleets.
            let par_config = DispatcherConfig {
                min_parallel_items: 0,
                ..DispatcherConfig::default()
            };
            let mut par = ParallelDispatcher::new(par_config, workers);
            let outcomes = par.assign_batch(&requests, &mut vehicles, &graph, &mut index, &par_oracle);
            prop_assert_eq!(&outcomes, &seq_outcomes, "outcomes diverged at workers = {}", workers);
            prop_assert_eq!(
                stat_counts(par.stats()),
                seq_counts.clone(),
                "stat counts diverged at workers = {}",
                workers
            );
            for (v, sv) in vehicles.iter().zip(seq_vehicles.iter()) {
                prop_assert_eq!(v.id(), sv.id());
                prop_assert_eq!(v.active_trip_count(), sv.active_trip_count());
                prop_assert_eq!(v.route(), sv.route(), "route diverged for vehicle {}", v.id());
            }
        }
    }
}

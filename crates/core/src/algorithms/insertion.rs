//! Cheapest-insertion heuristic matcher.
//!
//! The related-work baseline closest to practice (Coslovich et al.'s
//! two-phase insertion technique, reference [19] of the paper): trips are
//! inserted one at a time into the growing schedule, each at the pair of
//! positions (pickup position, drop-off position) that increases the total
//! cost the least while keeping the schedule valid. The result is feasible
//! whenever it returns one, but unlike the exact solvers it may miss the
//! optimum or fail on instances that are actually feasible — which is
//! exactly why the paper argues for exact-but-fast matching. It is included
//! as a comparison point and used by the ablation benchmarks.

use roadnet::DistanceOracle;

use crate::algorithms::{ScheduleSolver, SolverOutcome};
use crate::problem::{Schedule, ScheduleWalker, SchedulingProblem};
use crate::types::{Cost, Stop};

/// Cheapest-insertion schedule solver.
#[derive(Debug, Clone, Default)]
pub struct InsertionSolver;

impl InsertionSolver {
    fn schedule_cost(
        problem: &SchedulingProblem,
        schedule: &[Stop],
        oracle: &dyn DistanceOracle,
    ) -> Option<Cost> {
        let mut walker = ScheduleWalker::new(problem);
        for &stop in schedule {
            if walker.advance(stop, oracle).is_err() {
                return None;
            }
        }
        Some(walker.cum_dist)
    }
}

impl ScheduleSolver for InsertionSolver {
    fn name(&self) -> &'static str {
        "insertion"
    }

    fn solve(&self, problem: &SchedulingProblem, oracle: &dyn DistanceOracle) -> SolverOutcome {
        // Seed the schedule with the on-board drop-offs ordered by deadline
        // (earliest first); this ordering is feasible whenever any ordering
        // of the drop-offs alone is feasible for nested deadlines, and gives
        // the insertion phase a sensible starting point otherwise.
        let mut onboard = problem.onboard.clone();
        onboard.sort_by(|a, b| a.dropoff_deadline.partial_cmp(&b.dropoff_deadline).unwrap());
        let mut schedule: Schedule = onboard
            .iter()
            .map(|t| Stop::dropoff(t.trip, t.dropoff))
            .collect();
        if Self::schedule_cost(problem, &schedule, oracle).is_none() {
            return SolverOutcome::Infeasible;
        }

        // Insert waiting trips one at a time, tightest pickup deadline first.
        let mut waiting = problem.waiting.clone();
        waiting.sort_by(|a, b| a.pickup_deadline.partial_cmp(&b.pickup_deadline).unwrap());
        for trip in &waiting {
            let pickup = Stop::pickup(trip.trip, trip.pickup);
            let dropoff = Stop::dropoff(trip.trip, trip.dropoff);
            let mut best: Option<(Cost, usize, usize)> = None;
            for p_pos in 0..=schedule.len() {
                for d_pos in p_pos..=schedule.len() {
                    let mut candidate = schedule.clone();
                    candidate.insert(p_pos, pickup);
                    candidate.insert(d_pos + 1, dropoff);
                    if let Some(cost) = Self::schedule_cost(problem, &candidate, oracle) {
                        if best.is_none_or(|(c, _, _)| cost < c) {
                            best = Some((cost, p_pos, d_pos));
                        }
                    }
                }
            }
            match best {
                Some((_, p_pos, d_pos)) => {
                    schedule.insert(p_pos, pickup);
                    schedule.insert(d_pos + 1, dropoff);
                }
                None => return SolverOutcome::Infeasible,
            }
        }

        match Self::schedule_cost(problem, &schedule, oracle) {
            Some(cost) => SolverOutcome::Feasible { cost, schedule },
            None => SolverOutcome::Infeasible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForceSolver;
    use crate::problem::{OnboardTrip, WaitingTrip};
    use roadnet::{GeneratorConfig, MatrixOracle, NetworkKind};

    fn grid_oracle(seed: u64) -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 5 },
            seed,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    #[test]
    fn empty_problem_is_feasible() {
        let oracle = grid_oracle(0);
        let p = SchedulingProblem::new(0, 0.0, 4);
        assert_eq!(InsertionSolver.solve(&p, &oracle).cost(), Some(0.0));
    }

    #[test]
    fn single_trip_is_optimal() {
        let oracle = grid_oracle(1);
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: 7,
            dropoff: 18,
            pickup_deadline: 50_000.0,
            max_ride: 50_000.0,
        });
        let heur = InsertionSolver.solve(&p, &oracle);
        let exact = BruteForceSolver::default().solve(&p, &oracle);
        assert_eq!(heur.cost(), exact.cost());
    }

    #[test]
    fn produces_valid_schedules_and_never_beats_the_optimum() {
        let oracle = grid_oracle(7);
        let n = oracle.node_count() as u64;
        for seed in 0..15u64 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut p = SchedulingProblem::new((next() % n) as u32, 0.0, 4);
            for t in 0..3u64 {
                let pickup = (next() % n) as u32;
                let mut dropoff = (next() % n) as u32;
                if dropoff == pickup {
                    dropoff = (dropoff + 1) % n as u32;
                }
                let direct = oracle.dist(pickup, dropoff);
                p.waiting.push(WaitingTrip {
                    trip: t,
                    pickup,
                    dropoff,
                    pickup_deadline: 3_500.0,
                    max_ride: direct * 1.5 + 150.0,
                });
            }
            let heur = InsertionSolver.solve(&p, &oracle);
            let exact = BruteForceSolver::default().solve(&p, &oracle);
            if let SolverOutcome::Feasible { cost, schedule } = &heur {
                assert!(p.is_valid(schedule, &oracle), "seed {seed}");
                let best = exact.cost().expect("exact must also be feasible");
                assert!(
                    *cost >= best - 1e-6,
                    "seed {seed}: heuristic {cost} beat optimum {best}"
                );
            }
        }
    }

    #[test]
    fn respects_onboard_deadline_ordering() {
        let oracle = grid_oracle(2);
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        p.onboard.push(OnboardTrip {
            trip: 1,
            dropoff: 20,
            dropoff_deadline: 100_000.0,
        });
        p.onboard.push(OnboardTrip {
            trip: 2,
            dropoff: 6,
            dropoff_deadline: oracle.dist(0, 6) + 1.0,
        });
        let out = InsertionSolver.solve(&p, &oracle);
        let schedule = out.schedule().expect("feasible");
        assert_eq!(schedule[0].trip, 2, "tight deadline must come first");
        assert!(p.is_valid(schedule, &oracle));
    }
}

//! Exhaustive permutation enumeration.
//!
//! The paper's simplest baseline: "We enumerate all of the permutations and
//! then check the constraints." As in the paper's implementation, a prefix
//! whose constraints are already violated is abandoned immediately (the
//! constraints "still affect its ART because it can stop earlier on average
//! when checking the feasibility of each permutation"), but no lower-bound
//! reasoning is applied — every feasible prefix is expanded.

use roadnet::DistanceOracle;

use crate::algorithms::{ScheduleSolver, SolverOutcome};
use crate::problem::{Schedule, ScheduleWalker, SchedulingProblem};
use crate::types::{Cost, Stop};

/// Brute-force schedule solver.
#[derive(Debug, Clone)]
pub struct BruteForceSolver {
    /// Maximum number of prefix expansions before giving up with
    /// [`SolverOutcome::Exhausted`]. Mirrors the paper's practice of
    /// breaking off algorithms that "can no longer finish in a reasonable
    /// time" at large capacities.
    pub max_expansions: u64,
}

impl Default for BruteForceSolver {
    fn default() -> Self {
        // 12 stops have 479 million unconstrained permutations; the default
        // budget keeps the worst case bounded while never triggering for the
        // capacities where the paper runs this baseline (<= 4 trips).
        BruteForceSolver {
            max_expansions: 50_000_000,
        }
    }
}

impl BruteForceSolver {
    /// Creates a solver with an explicit expansion budget.
    pub fn with_budget(max_expansions: u64) -> Self {
        BruteForceSolver { max_expansions }
    }
}

struct SearchState<'p, 'o> {
    oracle: &'o dyn DistanceOracle,
    stops: Vec<Stop>,
    used: Vec<bool>,
    current: Vec<Stop>,
    best: Option<(Cost, Schedule)>,
    expansions: u64,
    budget: u64,
    problem: &'p SchedulingProblem,
}

impl SearchState<'_, '_> {
    fn recurse(&mut self, walker: &ScheduleWalker<'_>) -> bool {
        if self.current.len() == self.stops.len() {
            let cost = walker.cum_dist;
            if self.best.as_ref().is_none_or(|(b, _)| cost < *b) {
                self.best = Some((cost, self.current.clone()));
            }
            return true;
        }
        for i in 0..self.stops.len() {
            if self.used[i] {
                continue;
            }
            self.expansions += 1;
            if self.expansions > self.budget {
                return false;
            }
            let stop = self.stops[i];
            let mut next = walker.clone();
            if next.advance(stop, self.oracle).is_err() {
                continue;
            }
            self.used[i] = true;
            self.current.push(stop);
            let ok = self.recurse(&next);
            self.current.pop();
            self.used[i] = false;
            if !ok {
                return false;
            }
        }
        true
    }

    fn run(&mut self) -> SolverOutcome {
        let walker = ScheduleWalker::new(self.problem);
        let completed = self.recurse(&walker);
        match (&self.best, completed) {
            (Some((cost, schedule)), _) => SolverOutcome::Feasible {
                cost: *cost,
                schedule: schedule.clone(),
            },
            (None, true) => SolverOutcome::Infeasible,
            (None, false) => SolverOutcome::Exhausted,
        }
    }
}

impl ScheduleSolver for BruteForceSolver {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn solve(&self, problem: &SchedulingProblem, oracle: &dyn DistanceOracle) -> SolverOutcome {
        let stops = problem.required_stops();
        if stops.is_empty() {
            return SolverOutcome::Feasible {
                cost: 0.0,
                schedule: Vec::new(),
            };
        }
        let mut state = SearchState {
            oracle,
            used: vec![false; stops.len()],
            current: Vec::with_capacity(stops.len()),
            best: None,
            expansions: 0,
            budget: self.max_expansions,
            stops,
            problem,
        };
        state.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{OnboardTrip, WaitingTrip};
    use roadnet::{GraphBuilder, MatrixOracle, Point};

    fn line_oracle() -> MatrixOracle {
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 0..7 {
            b.add_edge(i, i + 1, 100.0);
        }
        MatrixOracle::new(&b.build())
    }

    #[test]
    fn empty_problem_costs_nothing() {
        let oracle = line_oracle();
        let p = SchedulingProblem::new(0, 0.0, 4);
        let out = BruteForceSolver::default().solve(&p, &oracle);
        assert_eq!(out.cost(), Some(0.0));
    }

    #[test]
    fn single_trip_optimal_order() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: 2,
            dropoff: 6,
            pickup_deadline: 1_000.0,
            max_ride: 480.0,
        });
        let out = BruteForceSolver::default().solve(&p, &oracle);
        assert_eq!(out.cost(), Some(600.0));
        assert_eq!(
            out.schedule().unwrap(),
            &vec![Stop::pickup(1, 2), Stop::dropoff(1, 6)]
        );
    }

    #[test]
    fn two_trips_share_the_ride_when_constraints_allow() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        // Trip 1: 1 -> 7, trip 2: 2 -> 6; interleaving s1 s2 e2 e1 costs 700.
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: 1,
            dropoff: 7,
            pickup_deadline: 10_000.0,
            max_ride: 720.0,
        });
        p.waiting.push(WaitingTrip {
            trip: 2,
            pickup: 2,
            dropoff: 6,
            pickup_deadline: 10_000.0,
            max_ride: 480.0,
        });
        let out = BruteForceSolver::default().solve(&p, &oracle);
        assert_eq!(out.cost(), Some(700.0));
        let schedule = out.schedule().unwrap();
        let valid_cost = p.validate(schedule, &oracle).unwrap();
        assert_eq!(valid_cost, 700.0);
    }

    #[test]
    fn infeasible_when_deadline_unreachable() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: 7,
            dropoff: 6,
            pickup_deadline: 100.0, // 700 m away
            max_ride: 10_000.0,
        });
        assert_eq!(
            BruteForceSolver::default().solve(&p, &oracle),
            SolverOutcome::Infeasible
        );
    }

    #[test]
    fn capacity_one_forces_sequential_service() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 1);
        p.onboard.push(OnboardTrip {
            trip: 5,
            dropoff: 2,
            dropoff_deadline: 10_000.0,
        });
        p.waiting.push(WaitingTrip {
            trip: 6,
            pickup: 1,
            dropoff: 3,
            pickup_deadline: 10_000.0,
            max_ride: 10_000.0,
        });
        let out = BruteForceSolver::default().solve(&p, &oracle);
        // Must drop trip 5 (node 2) before picking trip 6 (node 1):
        // 0 -> 2 (drop) -> 1 (pick) -> 3 (drop) = 200 + 100 + 200 = 500.
        assert_eq!(out.cost(), Some(500.0));
        assert_eq!(out.schedule().unwrap()[0], Stop::dropoff(5, 2));
    }

    #[test]
    fn tiny_budget_reports_exhausted() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 8);
        for i in 0..5u64 {
            p.waiting.push(WaitingTrip {
                trip: i,
                pickup: (i % 7) as u32,
                dropoff: ((i + 2) % 7) as u32,
                pickup_deadline: 100_000.0,
                max_ride: 100_000.0,
            });
        }
        let out = BruteForceSolver::with_budget(3).solve(&p, &oracle);
        assert_eq!(out, SolverOutcome::Exhausted);
    }
}

//! Stateless schedule solvers.
//!
//! Each solver answers the same question: given a [`SchedulingProblem`]
//! (the unfinished stops of one vehicle plus the new request), what is the
//! minimum-cost valid ordering of those stops? The paper's baselines
//! recompute this from scratch on every request — which is exactly what
//! these types do — while the kinetic tree ([`crate::kinetic`]) maintains
//! the answer incrementally.

mod branch_bound;
mod brute_force;
mod insertion;
mod mip;

pub use branch_bound::BranchBoundSolver;
pub use brute_force::BruteForceSolver;
pub use insertion::InsertionSolver;
pub use mip::{model_size as mip_model_size, MipBuild, MipFormulation, MipScheduleSolver};

use roadnet::DistanceOracle;

use crate::problem::{Schedule, SchedulingProblem};
use crate::types::Cost;

/// Result of solving one scheduling problem.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverOutcome {
    /// A minimum-cost valid schedule was found (for the heuristic
    /// [`InsertionSolver`], the best schedule it could construct).
    Feasible {
        /// Total distance of the schedule from the vehicle's location.
        cost: Cost,
        /// The stop ordering achieving that cost.
        schedule: Schedule,
    },
    /// No ordering of the stops satisfies every constraint.
    Infeasible,
    /// The solver's search budget was exhausted before an answer was proven
    /// (treated as "cannot accommodate" by the dispatcher, mirroring the
    /// paper's break-off behaviour for over-large problems).
    Exhausted,
}

impl SolverOutcome {
    /// The cost if feasible.
    pub fn cost(&self) -> Option<Cost> {
        match self {
            SolverOutcome::Feasible { cost, .. } => Some(*cost),
            _ => None,
        }
    }

    /// The schedule if feasible.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            SolverOutcome::Feasible { schedule, .. } => Some(schedule),
            _ => None,
        }
    }

    /// True when a schedule was produced.
    pub fn is_feasible(&self) -> bool {
        matches!(self, SolverOutcome::Feasible { .. })
    }
}

/// A stateless matcher that solves one vehicle's scheduling problem from
/// scratch.
pub trait ScheduleSolver {
    /// Short name used in experiment reports ("brute-force", "bb", "mip", …).
    fn name(&self) -> &'static str;

    /// Solves the problem against the given distance oracle.
    fn solve(&self, problem: &SchedulingProblem, oracle: &dyn DistanceOracle) -> SolverOutcome;
}

/// Identifier for constructing solvers from experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Exhaustive permutation enumeration.
    BruteForce,
    /// Best-first branch and bound with the minimum-incident-edge bound.
    BranchBound,
    /// Mixed-integer programming formulation (Sec. III-A).
    Mip,
    /// Cheapest-insertion heuristic (related-work baseline; not optimal).
    Insertion,
}

impl SolverKind {
    /// Builds the corresponding solver with default options.
    pub fn build(self) -> Box<dyn ScheduleSolver> {
        match self {
            SolverKind::BruteForce => Box::new(BruteForceSolver::default()),
            SolverKind::BranchBound => Box::new(BranchBoundSolver::default()),
            SolverKind::Mip => Box::new(MipScheduleSolver::default()),
            SolverKind::Insertion => Box::new(InsertionSolver),
        }
    }

    /// All exact solver kinds (used by equivalence tests and benchmarks).
    pub fn exact() -> [SolverKind; 3] {
        [
            SolverKind::BruteForce,
            SolverKind::BranchBound,
            SolverKind::Mip,
        ]
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SolverKind::BruteForce => "brute-force",
            SolverKind::BranchBound => "branch-and-bound",
            SolverKind::Mip => "mip",
            SolverKind::Insertion => "insertion",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_kind_builds_named_solvers() {
        assert_eq!(SolverKind::BruteForce.build().name(), "brute-force");
        assert_eq!(SolverKind::BranchBound.build().name(), "branch-and-bound");
        assert_eq!(SolverKind::Mip.build().name(), "mip");
        assert_eq!(SolverKind::Insertion.build().name(), "insertion");
        assert_eq!(SolverKind::Mip.to_string(), "mip");
        assert_eq!(SolverKind::exact().len(), 3);
    }

    #[test]
    fn outcome_accessors() {
        let o = SolverOutcome::Feasible {
            cost: 5.0,
            schedule: vec![],
        };
        assert_eq!(o.cost(), Some(5.0));
        assert!(o.schedule().is_some());
        assert!(o.is_feasible());
        assert_eq!(SolverOutcome::Infeasible.cost(), None);
        assert!(!SolverOutcome::Exhausted.is_feasible());
    }
}

//! Best-first branch and bound with the minimum-incident-edge lower bound.
//!
//! This is the paper's Section II baseline: candidate schedules are grown as
//! a tree of partial schedules, each partial schedule carries a lower bound
//! equal to its own cost plus the sum of the cheapest incident edge (in the
//! complete shortest-path graph over the remaining points) of every stop not
//! yet scheduled, and the partial schedule with the smallest bound is
//! expanded first. Partial schedules whose bound cannot beat the incumbent
//! are pruned.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use roadnet::DistanceOracle;

use crate::algorithms::{ScheduleSolver, SolverOutcome};
use crate::problem::{Schedule, ScheduleWalker, SchedulingProblem};
use crate::types::{Cost, Stop};

/// Branch-and-bound schedule solver.
#[derive(Debug, Clone)]
pub struct BranchBoundSolver {
    /// Maximum number of node expansions before returning
    /// [`SolverOutcome::Exhausted`].
    pub max_expansions: u64,
}

impl Default for BranchBoundSolver {
    fn default() -> Self {
        BranchBoundSolver {
            max_expansions: 20_000_000,
        }
    }
}

impl BranchBoundSolver {
    /// Creates a solver with an explicit expansion budget.
    pub fn with_budget(max_expansions: u64) -> Self {
        BranchBoundSolver { max_expansions }
    }
}

/// A partial schedule in the best-first queue.
struct Partial<'p> {
    bound: Cost,
    cost: Cost,
    walker: ScheduleWalker<'p>,
    used: u64,
    schedule: Vec<Stop>,
}

impl PartialEq for Partial<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Partial<'_> {}
impl PartialOrd for Partial<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.schedule.len().cmp(&self.schedule.len()))
    }
}

impl ScheduleSolver for BranchBoundSolver {
    fn name(&self) -> &'static str {
        "branch-and-bound"
    }

    fn solve(&self, problem: &SchedulingProblem, oracle: &dyn DistanceOracle) -> SolverOutcome {
        let stops = problem.required_stops();
        let n = stops.len();
        if n == 0 {
            return SolverOutcome::Feasible {
                cost: 0.0,
                schedule: Vec::new(),
            };
        }
        assert!(n <= 64, "branch and bound supports at most 64 stops");

        // Minimum-cost incident edge of every stop in the complete graph over
        // {start} ∪ stops (the paper's Figure 2(b) labels).
        let mut min_edge = vec![Cost::INFINITY; n];
        for (i, stop) in stops.iter().enumerate() {
            let mut best = oracle.dist(problem.start, stop.node);
            for (j, other) in stops.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = oracle.dist(other.node, stop.node);
                if d < best {
                    best = d;
                }
            }
            min_edge[i] = best;
        }
        let full_mask: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let remaining_bound = |used: u64| -> Cost {
            let mut sum = 0.0;
            for (i, edge) in min_edge.iter().enumerate() {
                if used & (1 << i) == 0 {
                    sum += edge;
                }
            }
            sum
        };

        let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
        let root_walker = ScheduleWalker::new(problem);
        heap.push(Partial {
            bound: remaining_bound(0),
            cost: 0.0,
            walker: root_walker,
            used: 0,
            schedule: Vec::new(),
        });

        let mut best: Option<(Cost, Schedule)> = None;
        let mut expansions: u64 = 0;

        while let Some(partial) = heap.pop() {
            if let Some((best_cost, _)) = &best {
                if partial.bound >= *best_cost {
                    // Best-first order: nothing left in the heap can improve.
                    break;
                }
            }
            if partial.used == full_mask {
                let better = best.as_ref().is_none_or(|(c, _)| partial.cost < *c);
                if better {
                    best = Some((partial.cost, partial.schedule.clone()));
                }
                continue;
            }
            for (i, &stop) in stops.iter().enumerate() {
                if partial.used & (1 << i) != 0 {
                    continue;
                }
                expansions += 1;
                if expansions > self.max_expansions {
                    return match best {
                        Some((cost, schedule)) => SolverOutcome::Feasible { cost, schedule },
                        None => SolverOutcome::Exhausted,
                    };
                }
                let mut walker = partial.walker.clone();
                if walker.advance(stop, oracle).is_err() {
                    continue;
                }
                let used = partial.used | (1 << i);
                let cost = walker.cum_dist;
                let bound = cost + remaining_bound(used);
                if let Some((best_cost, _)) = &best {
                    if bound >= *best_cost {
                        continue;
                    }
                }
                let mut schedule = partial.schedule.clone();
                schedule.push(stop);
                heap.push(Partial {
                    bound,
                    cost,
                    walker,
                    used,
                    schedule,
                });
            }
        }

        match best {
            Some((cost, schedule)) => SolverOutcome::Feasible { cost, schedule },
            None => SolverOutcome::Infeasible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForceSolver;
    use crate::problem::{OnboardTrip, WaitingTrip};
    use roadnet::{GeneratorConfig, MatrixOracle, NetworkKind};

    fn grid_oracle(seed: u64) -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    /// Deterministic pseudo-random problem generator shared by the
    /// equivalence tests.
    fn random_problem(
        oracle: &MatrixOracle,
        seed: u64,
        trips: usize,
        capacity: usize,
    ) -> SchedulingProblem {
        let n = oracle.node_count() as u32;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut p = SchedulingProblem::new((next() % n as u64) as u32, 0.0, capacity);
        for t in 0..trips as u64 {
            let pickup = (next() % n as u64) as u32;
            let mut dropoff = (next() % n as u64) as u32;
            if dropoff == pickup {
                dropoff = (dropoff + 1) % n;
            }
            let direct = oracle.dist(pickup, dropoff);
            p.waiting.push(WaitingTrip {
                trip: t,
                pickup,
                dropoff,
                pickup_deadline: 3_000.0 + (next() % 3_000) as f64,
                max_ride: direct * 1.5 + 200.0,
            });
        }
        p
    }

    #[test]
    fn empty_problem_is_trivially_feasible() {
        let oracle = grid_oracle(0);
        let p = SchedulingProblem::new(3, 0.0, 4);
        assert_eq!(
            BranchBoundSolver::default().solve(&p, &oracle).cost(),
            Some(0.0)
        );
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let oracle = grid_oracle(11);
        let bb = BranchBoundSolver::default();
        let bf = BruteForceSolver::default();
        for seed in 0..20u64 {
            let trips = 1 + (seed % 3) as usize;
            let p = random_problem(&oracle, seed, trips, 4);
            let a = bb.solve(&p, &oracle);
            let b = bf.solve(&p, &oracle);
            match (&a, &b) {
                (
                    SolverOutcome::Feasible {
                        cost: ca,
                        schedule: sa,
                    },
                    SolverOutcome::Feasible { cost: cb, .. },
                ) => {
                    assert!(
                        (ca - cb).abs() < 1e-6,
                        "seed {seed}: bb cost {ca}, bf cost {cb}"
                    );
                    assert!(p.is_valid(sa, &oracle));
                }
                (SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
                other => panic!("seed {seed}: outcome mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn respects_onboard_deadlines() {
        let oracle = grid_oracle(3);
        let mut p = SchedulingProblem::new(0, 5_000.0, 4);
        let far = (oracle.node_count() - 1) as u32;
        let direct = oracle.dist(0, far);
        p.onboard.push(OnboardTrip {
            trip: 1,
            dropoff: far,
            dropoff_deadline: 5_000.0 + direct + 10.0,
        });
        p.waiting.push(WaitingTrip {
            trip: 2,
            pickup: 5,
            dropoff: 10,
            pickup_deadline: 100_000.0,
            max_ride: 100_000.0,
        });
        let out = BranchBoundSolver::default().solve(&p, &oracle);
        // The onboard passenger has almost no slack, so they must be dropped
        // first (any detour for trip 2 would blow the deadline) unless the
        // detour is tiny.
        let schedule = out.schedule().expect("feasible");
        assert!(p.is_valid(schedule, &oracle));
        assert_eq!(schedule.last().map(|s| s.trip), Some(2));
    }

    #[test]
    fn exhausted_budget_is_reported() {
        let oracle = grid_oracle(4);
        let p = random_problem(&oracle, 9, 5, 8);
        let out = BranchBoundSolver::with_budget(2).solve(&p, &oracle);
        assert!(matches!(
            out,
            SolverOutcome::Exhausted | SolverOutcome::Feasible { .. }
        ));
        // With a budget of 2 expansions no complete 10-stop schedule exists.
        assert_eq!(out.cost(), None);
    }

    #[test]
    fn prunes_but_still_finds_optimum_with_tight_constraints() {
        let oracle = grid_oracle(8);
        let bf = BruteForceSolver::default();
        let bb = BranchBoundSolver::default();
        for seed in 30..40u64 {
            let mut p = random_problem(&oracle, seed, 3, 2);
            // Tighten deadlines so many branches are infeasible.
            for t in &mut p.waiting {
                t.pickup_deadline *= 0.6;
                t.max_ride *= 0.8;
            }
            let a = bb.solve(&p, &oracle);
            let b = bf.solve(&p, &oracle);
            assert_eq!(
                a.cost().map(|c| (c * 1000.0).round()),
                b.cost().map(|c| (c * 1000.0).round()),
                "seed {seed}"
            );
        }
    }
}

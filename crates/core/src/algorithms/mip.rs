//! The mixed-integer programming matcher (Sec. III-A of the paper).
//!
//! The unfinished stops are modelled on a complete directed graph whose
//! vertices are the vehicle's current position (node 0), the drop-offs of
//! on-board passengers (set `D'`), the pickups of waiting passengers (set
//! `P`) and their drop-offs (set `D`). Binary variables `y_ij` select the
//! arcs of a Hamiltonian path starting at node 0; continuous variables `B_i`
//! give the travel distance at which node `i` is reached, linearised with
//! Miller–Tucker–Zemlin-style big-M constraints; `L_i = B_i − B_{i−n}`
//! measures each waiting passenger's on-vehicle distance.
//!
//! Two small additions are made relative to the formulation printed in the
//! paper (documented in DESIGN.md): an explicit "at most one successor"
//! constraint per node (without it the arc-selection constraints admit
//! branching subgraphs) and optional load variables enforcing the vehicle
//! capacity, which the paper's experiments use but its formulation omits.

use rideshare_mip::{ConstraintOp, Model, Sense, SolveError, SolveOptions, VarId};
use roadnet::DistanceOracle;

use crate::algorithms::{ScheduleSolver, SolverOutcome};
use crate::problem::{Schedule, SchedulingProblem};
use crate::types::Stop;

/// MIP-based schedule solver.
#[derive(Debug, Clone)]
pub struct MipScheduleSolver {
    /// Branch-and-bound node budget handed to the underlying MIP solver.
    pub max_nodes: u64,
}

impl Default for MipScheduleSolver {
    fn default() -> Self {
        MipScheduleSolver { max_nodes: 200_000 }
    }
}

impl MipScheduleSolver {
    /// Creates a solver with an explicit node budget.
    pub fn with_budget(max_nodes: u64) -> Self {
        MipScheduleSolver { max_nodes }
    }
}

/// Outcome of building the MTZ formulation for a scheduling problem.
pub enum MipBuild {
    /// The model plus the metadata needed to decode solutions.
    Built(MipFormulation),
    /// No unfinished stops: the empty schedule is trivially optimal.
    Trivial,
    /// A pre-solve screen proved no valid schedule can exist (an expired
    /// deadline or an unreachable stop pair).
    Infeasible,
}

/// The MTZ mixed-integer formulation of one [`SchedulingProblem`],
/// decoupled from solving so benchmarks and equivalence tests can hand the
/// *same* model to different solver backends.
pub struct MipFormulation {
    /// The mixed-integer model: minimise total travelled distance subject
    /// to deadlines, detour limits and (when binding) vehicle capacity.
    pub model: Model,
    /// `y[i][j]`: arc-selection binaries (`None` on the diagonal and into
    /// the start node).
    y: Vec<Vec<Option<VarId>>>,
    /// Stop represented by each node (`None` for the start node 0).
    stop_of: Vec<Option<Stop>>,
    /// Node count `1 + onboard + 2·waiting`.
    total: usize,
}

impl MipFormulation {
    /// Builds the formulation for `problem` over `oracle` distances.
    ///
    /// Returns [`MipBuild::Trivial`] when there is nothing to schedule and
    /// [`MipBuild::Infeasible`] when the quick screens (negative deadline
    /// slack, unreachable pair) already rule every schedule out.
    // Index loops mirror the MTZ formulation's subscripts over the 2-D
    // successor matrix `y`; iterator chains would obscure the math.
    #[allow(clippy::needless_range_loop)]
    pub fn build(problem: &SchedulingProblem, oracle: &dyn DistanceOracle) -> MipBuild {
        let k = problem.onboard.len();
        let n = problem.waiting.len();
        let total = 1 + k + 2 * n;
        if total == 1 {
            return MipBuild::Trivial;
        }

        // Node layout: 0 = start, 1..=k = onboard dropoffs, k+1..=k+n =
        // waiting pickups, k+n+1..=k+2n = waiting dropoffs.
        let mut road_node = vec![problem.start; total];
        let mut stop_of: Vec<Option<Stop>> = vec![None; total];
        // Latest reachable travel distance for each node (relative to `now`),
        // used both as a constraint and to size the big-M coefficients.
        let mut latest = vec![0.0f64; total];
        for (i, t) in problem.onboard.iter().enumerate() {
            let idx = 1 + i;
            road_node[idx] = t.dropoff;
            stop_of[idx] = Some(Stop::dropoff(t.trip, t.dropoff));
            latest[idx] = t.dropoff_deadline - problem.now;
        }
        for (i, t) in problem.waiting.iter().enumerate() {
            let p_idx = 1 + k + i;
            let d_idx = 1 + k + n + i;
            road_node[p_idx] = t.pickup;
            road_node[d_idx] = t.dropoff;
            stop_of[p_idx] = Some(Stop::pickup(t.trip, t.pickup));
            stop_of[d_idx] = Some(Stop::dropoff(t.trip, t.dropoff));
            latest[p_idx] = t.pickup_deadline - problem.now;
            latest[d_idx] = (t.pickup_deadline - problem.now) + t.max_ride;
        }
        // Quick infeasibility screens (also keeps big-M values sane).
        if latest.iter().any(|&l| l < 0.0) {
            return MipBuild::Infeasible;
        }

        // Pairwise shortest distances over the node set.
        let mut dist = vec![vec![0.0f64; total]; total];
        for i in 0..total {
            for j in 0..total {
                if i != j {
                    let d = oracle.dist(road_node[i], road_node[j]);
                    if !d.is_finite() {
                        return MipBuild::Infeasible;
                    }
                    dist[i][j] = d;
                }
            }
        }

        let mut model = Model::new(Sense::Minimize);
        // y[i][j]: arc i -> j used. Arcs never return to the start.
        let mut y = vec![vec![None::<VarId>; total]; total];
        for i in 0..total {
            for j in 1..total {
                if i != j {
                    y[i][j] = Some(model.add_binary(dist[i][j], format!("y_{i}_{j}")));
                }
            }
        }
        // B[i]: distance from the start at which node i is served.
        let mut b = Vec::with_capacity(total);
        for (i, &l) in latest.iter().enumerate() {
            let ub = if i == 0 { 0.0 } else { l };
            b.push(model.add_var(
                0.0,
                ub,
                0.0,
                rideshare_mip::VarKind::Continuous,
                format!("B_{i}"),
            ));
        }
        // L[i] for waiting dropoffs: on-vehicle distance with its bounds
        // d(s, e) <= L <= (1 + eps) d(s, e)  (constraint 9).
        let mut l_vars = vec![None::<VarId>; total];
        for (i, t) in problem.waiting.iter().enumerate() {
            let d_idx = 1 + k + n + i;
            let direct = dist[1 + k + i][d_idx];
            l_vars[d_idx] = Some(model.add_var(
                direct,
                t.max_ride,
                0.0,
                rideshare_mip::VarKind::Continuous,
                format!("L_{d_idx}"),
            ));
        }

        // (2) every node except the start has exactly one predecessor.
        for j in 1..total {
            let terms: Vec<(VarId, f64)> = (0..total)
                .filter_map(|i| y[i][j].map(|v| (v, 1.0)))
                .collect();
            model.add_constraint(&terms, ConstraintOp::Eq, 1.0);
        }
        // (3) the start has exactly one successor.
        let start_out: Vec<(VarId, f64)> = (1..total)
            .filter_map(|j| y[0][j].map(|v| (v, 1.0)))
            .collect();
        model.add_constraint(&start_out, ConstraintOp::Eq, 1.0);
        // Every other node has at most one successor (path structure).
        for i in 1..total {
            let terms: Vec<(VarId, f64)> = (1..total)
                .filter_map(|j| {
                    if i != j {
                        y[i][j].map(|v| (v, 1.0))
                    } else {
                        None
                    }
                })
                .collect();
            if !terms.is_empty() {
                model.add_constraint(&terms, ConstraintOp::Le, 1.0);
            }
        }
        // (5) linearised arrival-propagation: B_j >= B_i + d_ij - M_ij (1 - y_ij).
        // Distinct stops can share a road vertex (d_ij = 0); a strictly
        // positive arc length (the paper's "d_ii is set to a positive
        // number" trick, applied to zero-length arcs) is required for the
        // MTZ-style constraints to eliminate zero-length subtours.
        const MIN_ARC: f64 = 1.0;
        for i in 0..total {
            for j in 1..total {
                let Some(yij) = y[i][j] else { continue };
                let arc = dist[i][j].max(MIN_ARC);
                let m_ij = latest[i] + arc;
                // B_j - B_i + M_ij * y_ij <= M_ij - d_ij ... rearranged:
                // B_j >= B_i + d_ij - M_ij + M_ij*y_ij
                // =>  -B_j + B_i + M_ij*y_ij <= M_ij - d_ij
                model.add_constraint(
                    &[(b[j], -1.0), (b[i], 1.0), (yij, m_ij)],
                    ConstraintOp::Le,
                    m_ij - arc,
                );
            }
        }
        // (6) L_i = B_i - B_{i-n} for waiting dropoffs.
        for i in 0..n {
            let p_idx = 1 + k + i;
            let d_idx = 1 + k + n + i;
            let l = l_vars[d_idx].expect("L variable exists for every waiting dropoff");
            model.add_constraint(
                &[(l, 1.0), (b[d_idx], -1.0), (b[p_idx], 1.0)],
                ConstraintOp::Eq,
                0.0,
            );
        }
        // (7)/(8) are encoded as the upper bounds of the B variables above.

        // Optional capacity propagation: Q_j >= Q_i + load_j - M (1 - y_ij).
        let needs_capacity = problem.capacity < k + n;
        if needs_capacity {
            let cap = problem.capacity as f64;
            let mut q = Vec::with_capacity(total);
            for i in 0..total {
                let (lb, ub) = if i == 0 {
                    (k as f64, k as f64)
                } else {
                    (0.0, cap)
                };
                q.push(model.add_var(
                    lb,
                    ub,
                    0.0,
                    rideshare_mip::VarKind::Continuous,
                    format!("Q_{i}"),
                ));
            }
            let m_q = (k + n) as f64 + 1.0;
            for i in 0..total {
                for j in 1..total {
                    let Some(yij) = y[i][j] else { continue };
                    let load_j = if (1 + k..1 + k + n).contains(&j) {
                        1.0
                    } else {
                        -1.0
                    };
                    // Q_j >= Q_i + load_j - M (1 - y_ij)
                    // =>  -Q_j + Q_i + M*y_ij <= M - load_j
                    model.add_constraint(
                        &[(q[j], -1.0), (q[i], 1.0), (yij, m_q)],
                        ConstraintOp::Le,
                        m_q - load_j,
                    );
                }
            }
        }

        MipBuild::Built(MipFormulation {
            model,
            y,
            stop_of,
            total,
        })
    }

    /// Decodes a solver solution back into a stop schedule by following
    /// the selected arcs from the start node. Returns `None` when the
    /// selected arcs do not form a single path covering every node (which
    /// only happens for incumbents reported under an exhausted budget).
    pub fn decode(&self, solution: &rideshare_mip::Solution) -> Option<Schedule> {
        let mut order: Vec<usize> = Vec::with_capacity(self.total - 1);
        let mut current = 0usize;
        for _ in 0..self.total - 1 {
            let next = (1..self.total).find(|&j| {
                j != current && self.y[current][j].is_some_and(|v| solution.is_one(v))
            })?;
            order.push(next);
            current = next;
        }
        Some(
            order
                .iter()
                .map(|&i| self.stop_of[i].expect("non-start nodes map to stops"))
                .collect(),
        )
    }
}

impl ScheduleSolver for MipScheduleSolver {
    fn name(&self) -> &'static str {
        "mip"
    }

    fn solve(&self, problem: &SchedulingProblem, oracle: &dyn DistanceOracle) -> SolverOutcome {
        let formulation = match MipFormulation::build(problem, oracle) {
            MipBuild::Trivial => {
                return SolverOutcome::Feasible {
                    cost: 0.0,
                    schedule: Vec::new(),
                }
            }
            MipBuild::Infeasible => return SolverOutcome::Infeasible,
            MipBuild::Built(f) => f,
        };
        let options = SolveOptions {
            max_nodes: self.max_nodes,
            ..SolveOptions::default()
        };
        let solution = match formulation.model.solve_with(&options) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => return SolverOutcome::Infeasible,
            Err(SolveError::Unbounded) | Err(SolveError::InvalidModel(_)) => {
                // The formulation is always bounded; treat defensively.
                return SolverOutcome::Infeasible;
            }
            Err(SolveError::BudgetExhausted) => return SolverOutcome::Exhausted,
        };
        let Some(schedule) = formulation.decode(&solution) else {
            return SolverOutcome::Exhausted;
        };
        match problem.validate(&schedule, oracle) {
            Ok(cost) => SolverOutcome::Feasible { cost, schedule },
            Err(_) => SolverOutcome::Exhausted,
        }
    }
}

/// Rough size of the MIP model for a problem, matching the paper's
/// observation that `v = O(m^2)` variables and `c = O(m)` core constraints.
pub fn model_size(problem: &SchedulingProblem) -> (usize, usize) {
    let total = 1 + problem.onboard.len() + 2 * problem.waiting.len();
    let vars = total * (total - 1) + total + problem.waiting.len();
    let cons = total * (total - 1) + 3 * total;
    (vars, cons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForceSolver;
    use crate::problem::{OnboardTrip, WaitingTrip};
    use roadnet::{GeneratorConfig, MatrixOracle, NetworkKind};

    fn grid_oracle(seed: u64) -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 5 },
            seed,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    fn problem_with_trips(
        oracle: &MatrixOracle,
        seed: u64,
        trips: usize,
        capacity: usize,
    ) -> SchedulingProblem {
        let n = oracle.node_count() as u64;
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut p = SchedulingProblem::new((next() % n) as u32, 0.0, capacity);
        for t in 0..trips as u64 {
            let pickup = (next() % n) as u32;
            let mut dropoff = (next() % n) as u32;
            if dropoff == pickup {
                dropoff = (dropoff + 1) % n as u32;
            }
            let direct = oracle.dist(pickup, dropoff);
            p.waiting.push(WaitingTrip {
                trip: t,
                pickup,
                dropoff,
                pickup_deadline: 2_500.0 + (next() % 2_000) as f64,
                max_ride: direct * 1.4 + 100.0,
            });
        }
        p
    }

    #[test]
    fn empty_problem() {
        let oracle = grid_oracle(1);
        let p = SchedulingProblem::new(0, 0.0, 4);
        assert_eq!(
            MipScheduleSolver::default().solve(&p, &oracle).cost(),
            Some(0.0)
        );
    }

    #[test]
    fn single_trip_matches_brute_force() {
        let oracle = grid_oracle(2);
        let p = problem_with_trips(&oracle, 5, 1, 4);
        let mip = MipScheduleSolver::default().solve(&p, &oracle);
        let bf = BruteForceSolver::default().solve(&p, &oracle);
        match (&mip, &bf) {
            (
                SolverOutcome::Feasible { cost: a, schedule },
                SolverOutcome::Feasible { cost: b, .. },
            ) => {
                assert!((a - b).abs() < 1e-4, "mip {a} vs bf {b}");
                assert!(p.is_valid(schedule, &oracle));
            }
            (SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
            other => panic!("mismatch {other:?}"),
        }
    }

    #[test]
    fn two_trips_match_brute_force() {
        let oracle = grid_oracle(3);
        for seed in [1u64, 2, 3, 4] {
            let p = problem_with_trips(&oracle, seed, 2, 4);
            let mip = MipScheduleSolver::default().solve(&p, &oracle);
            let bf = BruteForceSolver::default().solve(&p, &oracle);
            match (&mip, &bf) {
                (
                    SolverOutcome::Feasible { cost: a, .. },
                    SolverOutcome::Feasible { cost: b, .. },
                ) => assert!((a - b).abs() < 1e-4, "seed {seed}: mip {a} vs bf {b}"),
                (SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
                other => panic!("seed {seed}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn onboard_passenger_and_capacity() {
        let oracle = grid_oracle(4);
        let mut p = problem_with_trips(&oracle, 11, 1, 1);
        p.onboard.push(OnboardTrip {
            trip: 99,
            dropoff: 3,
            dropoff_deadline: 50_000.0,
        });
        let mip = MipScheduleSolver::default().solve(&p, &oracle);
        let bf = BruteForceSolver::default().solve(&p, &oracle);
        match (&mip, &bf) {
            (
                SolverOutcome::Feasible { cost: a, schedule },
                SolverOutcome::Feasible { cost: b, .. },
            ) => {
                assert!((a - b).abs() < 1e-4, "mip {a} vs bf {b}");
                // Capacity 1 with someone on board: first stop must drop them.
                assert_eq!(schedule[0], Stop::dropoff(99, 3));
            }
            (SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
            other => panic!("mismatch {other:?}"),
        }
    }

    #[test]
    fn infeasible_deadline_detected() {
        let oracle = grid_oracle(5);
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        let far = (oracle.node_count() - 1) as u32;
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: far,
            dropoff: 0,
            pickup_deadline: 1.0,
            max_ride: 100_000.0,
        });
        assert_eq!(
            MipScheduleSolver::default().solve(&p, &oracle),
            SolverOutcome::Infeasible
        );
    }

    #[test]
    fn model_size_grows_quadratically() {
        let oracle = grid_oracle(6);
        let small = problem_with_trips(&oracle, 1, 1, 4);
        let large = problem_with_trips(&oracle, 1, 4, 4);
        let (vs, _) = model_size(&small);
        let (vl, _) = model_size(&large);
        assert!(vl > 4 * vs);
    }
}

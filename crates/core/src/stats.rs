//! Streaming latency statistics for serving-grade observability.
//!
//! [`LatencyHistogram`] is a fixed-size log-bucketed histogram: recording is
//! O(1) with no allocation (one array increment), so it is safe to feed from
//! a dispatch hot path, and two histograms merge bucket-wise so per-window
//! or per-thread instances can be combined into run totals. Percentile
//! queries return the **upper edge** of the bucket holding the requested
//! rank (clamped to the observed maximum), so a reported p99 never
//! understates the true p99 — the conservative direction for latency-SLO
//! gating.
//!
//! The bucket layout covers 100 µs to 10 000 s with a geometric progression
//! (~7.5 % relative resolution per bucket); everything below the range lands
//! in the first bucket and everything above in the last, with the exact
//! observed minimum/maximum/sum tracked separately so `mean`, `min` and
//! `max` stay exact regardless of bucketing.

use roadnet::io::bin::{self, Reader};
use roadnet::RoadNetError;

/// Smallest bucketed latency, in seconds (100 µs).
const BUCKET_MIN_S: f64 = 1e-4;
/// Largest bucketed latency, in seconds (10 000 s).
const BUCKET_MAX_S: f64 = 1e4;
/// Total bucket count: underflow + 254 geometric buckets + overflow.
const BUCKETS: usize = 256;
/// Number of geometric buckets between the underflow and overflow buckets.
const GEOMETRIC: usize = BUCKETS - 2;

/// A fixed-size log-bucketed latency histogram (see the module docs).
///
/// ```
/// use kinetic_core::stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64 / 1000.0); // 1 ms .. 1 s
/// }
/// assert_eq!(h.count(), 1000);
/// // p50 lands near 0.5 s, with the bucket's ~7.5% resolution.
/// let p50 = h.percentile(0.50);
/// assert!(p50 >= 0.5 && p50 <= 0.56, "p50 = {p50}");
/// // The maximum is exact, and no percentile exceeds it.
/// assert_eq!(h.max(), 1.0);
/// assert!(h.percentile(0.999) <= h.max());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_s: f64,
    min_s: f64,
    max_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }

    /// The geometric growth factor between consecutive bucket edges.
    fn ratio() -> f64 {
        (BUCKET_MAX_S / BUCKET_MIN_S).powf(1.0 / GEOMETRIC as f64)
    }

    /// Index of the bucket a latency falls into.
    fn bucket(seconds: f64) -> usize {
        if seconds < BUCKET_MIN_S {
            return 0;
        }
        if seconds >= BUCKET_MAX_S {
            return BUCKETS - 1;
        }
        let i = ((seconds / BUCKET_MIN_S).ln() / Self::ratio().ln()).floor() as usize;
        (1 + i).min(BUCKETS - 2)
    }

    /// Upper edge (seconds) of bucket `i` — what percentile queries report.
    fn upper_edge(i: usize) -> f64 {
        if i == 0 {
            BUCKET_MIN_S
        } else {
            BUCKET_MIN_S * Self::ratio().powi(i as i32)
        }
    }

    /// Records one latency observation, in seconds. Negative and NaN inputs
    /// are clamped to zero (they can only come from clock skew upstream and
    /// must not poison the histogram).
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        self.counts[Self::bucket(s)] += 1;
        self.count += 1;
        self.sum_s += s;
        if s < self.min_s {
            self.min_s = s;
        }
        if s > self.max_s {
            self.max_s = s;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of all observations, in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Exact smallest observation, in seconds (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_s
        }
    }

    /// Exact largest observation, in seconds (0 when empty).
    pub fn max(&self) -> f64 {
        self.max_s
    }

    /// The latency at or below which a `p` fraction of observations fall,
    /// reported as the holding bucket's upper edge clamped to the exact
    /// observed maximum (so the estimate errs high by at most one bucket,
    /// never low). `p` is clamped to `[0, 1]`; returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the observation that covers fraction p (1-based).
        let rank = ((self.count as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == BUCKETS - 1 {
                    // Overflow bucket: its geometric edge is meaningless,
                    // so report the exact observed maximum instead.
                    return self.max_s;
                }
                return Self::upper_edge(i).min(self.max_s);
            }
        }
        self.max_s
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        if other.count > 0 {
            self.min_s = self.min_s.min(other.min_s);
            self.max_s = self.max_s.max(other.max_s);
        }
    }

    /// Appends the histogram's full state to `out` in the
    /// [`crate::codec`] binary conventions (bucket counts length-prefixed,
    /// `f64` accumulators as IEEE-754 bit patterns), so a metrics sink can
    /// be snapshotted into a serve checkpoint and restored bit-identically.
    pub fn encode(&self, out: &mut Vec<u8>) {
        bin::put_u64(out, self.counts.len() as u64);
        for &c in &self.counts {
            bin::put_u64(out, c);
        }
        bin::put_u64(out, self.count);
        bin::put_f64(out, self.sum_s);
        bin::put_f64(out, self.min_s);
        bin::put_f64(out, self.max_s);
    }

    /// Reads a histogram written by [`LatencyHistogram::encode`]. Never
    /// panics on malformed input; a wrong bucket count (from a different
    /// build's layout, or corruption) is a [`RoadNetError::Persist`].
    pub fn decode(r: &mut Reader<'_>) -> Result<LatencyHistogram, RoadNetError> {
        let n = crate::codec::read_len(r, 8, "histogram bucket count")?;
        if n != BUCKETS {
            return Err(RoadNetError::Persist(format!(
                "histogram bucket count {n} != expected {BUCKETS}"
            )));
        }
        let mut counts = vec![0u64; n];
        for c in counts.iter_mut() {
            *c = r.u64("histogram bucket")?;
        }
        Ok(LatencyHistogram {
            counts,
            count: r.u64("histogram count")?,
            sum_s: r.f64("histogram sum")?,
            min_s: r.f64("histogram min")?,
            max_s: r.f64("histogram max")?,
        })
    }

    /// The standard serving summary: p50/p90/p99/p999, mean, max, count.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_s: self.mean(),
            p50_s: self.percentile(0.50),
            p90_s: self.percentile(0.90),
            p99_s: self.percentile(0.99),
            p999_s: self.percentile(0.999),
            max_s: self.max(),
        }
    }
}

/// Point-in-time percentile summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Observations the summary covers.
    pub count: u64,
    /// Exact mean, in seconds.
    pub mean_s: f64,
    /// Median, in seconds.
    pub p50_s: f64,
    /// 90th percentile, in seconds.
    pub p90_s: f64,
    /// 99th percentile, in seconds.
    pub p99_s: f64,
    /// 99.9th percentile, in seconds.
    pub p999_s: f64,
    /// Exact maximum, in seconds.
    pub max_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn single_observation_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(0.25);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0.25, "p = {p}");
        }
        assert_eq!(h.mean(), 0.25);
        assert_eq!(h.min(), 0.25);
    }

    #[test]
    fn percentiles_are_conservative_and_tight() {
        // Uniform 1 ms .. 10 s: every percentile must lie at or above the
        // true value and within one bucket (~7.5%) of it.
        let mut h = LatencyHistogram::new();
        let n = 10_000;
        for i in 1..=n {
            h.record(i as f64 * 1e-3);
        }
        for (p, truth) in [(0.5, 5.0), (0.9, 9.0), (0.99, 9.9), (0.999, 9.99)] {
            let got = h.percentile(p);
            assert!(got >= truth * 0.999, "p{p}: {got} understates {truth}");
            assert!(got <= truth * 1.08, "p{p}: {got} overshoots {truth}");
        }
        assert!((h.mean() - (n as f64 + 1.0) * 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_observations_are_kept_exactly_in_min_max() {
        let mut h = LatencyHistogram::new();
        h.record(1e-7); // below the first bucket edge
        h.record(50_000.0); // above the last bucket edge
        h.record(-3.0); // clamped to zero
        h.record(f64::NAN); // clamped to zero
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 50_000.0);
        // The overflow bucket still reports the exact max, not an edge.
        assert_eq!(h.percentile(1.0), 50_000.0);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let xs: Vec<f64> = (1..500).map(|i| i as f64 * 7e-3).collect();
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        // Bucket counts and extrema merge exactly; the running sum is
        // accumulated in a different order, so the means agree only up to
        // float reassociation error.
        assert_eq!(left.counts, whole.counts);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        for p in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(left.percentile(p), whole.percentile(p), "p = {p}");
        }
    }

    #[test]
    fn encode_decode_roundtrips_bit_identically() {
        let mut h = LatencyHistogram::new();
        for i in 0..5000 {
            h.record((i % 97) as f64 * 3.3e-3);
        }
        h.record(50_000.0); // overflow bucket + exact max
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back = LatencyHistogram::decode(&mut r).expect("roundtrip");
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, h);
        // Empty histogram (min = +inf) round-trips too.
        let empty = LatencyHistogram::new();
        let mut buf = Vec::new();
        empty.encode(&mut buf);
        assert_eq!(
            LatencyHistogram::decode(&mut Reader::new(&buf)).unwrap(),
            empty
        );
        // Truncated input errors instead of panicking.
        for cut in [0, 1, 8, buf.len() - 1] {
            assert!(LatencyHistogram::decode(&mut Reader::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn bucket_edges_are_monotone_and_cover_the_range() {
        let mut prev = 0.0;
        for i in 0..BUCKETS {
            let e = LatencyHistogram::upper_edge(i);
            assert!(e > prev, "edges must increase (bucket {i})");
            prev = e;
        }
        assert_eq!(LatencyHistogram::bucket(0.0), 0);
        assert_eq!(LatencyHistogram::bucket(BUCKET_MAX_S * 2.0), BUCKETS - 1);
        // Every in-range value lands in a bucket whose edge bounds it above.
        for v in [1e-4, 1e-3, 0.5, 1.0, 60.0, 9_999.0] {
            let b = LatencyHistogram::bucket(v);
            assert!(LatencyHistogram::upper_edge(b) >= v * 0.999, "v = {v}");
        }
    }
}

//! Trip requests and the service-guarantee constraints attached to them.

use roadnet::NodeId;

use crate::types::{Cost, TripId};

/// The service guarantee offered to every rider (Definition 1 of the paper).
///
/// `max_wait` bounds the distance (equivalently, time at constant speed) the
/// vehicle may travel between the moment a request is accepted and the
/// rider's pickup. `detour_factor` is the paper's ε: the on-vehicle distance
/// from pickup to drop-off may not exceed `(1 + ε)` times the shortest-path
/// distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum waiting "time" in meters of vehicle travel (the paper's `w`).
    pub max_wait: Cost,
    /// Maximum relative detour (the paper's ε); 0.2 means at most 20% longer
    /// than the direct shortest path.
    pub detour_factor: f64,
}

impl Constraints {
    /// Creates a constraint set.
    pub fn new(max_wait: Cost, detour_factor: f64) -> Self {
        Constraints {
            max_wait,
            detour_factor,
        }
    }

    /// The paper's default experimental setting: 10 minutes waiting time
    /// (8,400 m at 14 m/s) and a 20% detour tolerance.
    pub fn paper_default() -> Self {
        Constraints::new(10.0 * 60.0 * 14.0, 0.2)
    }

    /// The five settings of Tables I/II, index 0..5: (5 min, 10%),
    /// (10 min, 20%), (15 min, 30%), (20 min, 40%), (25 min, 50%).
    pub fn paper_setting(index: usize) -> Self {
        let minutes = [5.0, 10.0, 15.0, 20.0, 25.0][index.min(4)];
        let eps = [0.1, 0.2, 0.3, 0.4, 0.5][index.min(4)];
        Constraints::new(minutes * 60.0 * 14.0, eps)
    }

    /// Maximum on-vehicle distance for a trip whose shortest-path distance
    /// is `direct`.
    pub fn max_ride(&self, direct: Cost) -> Cost {
        (1.0 + self.detour_factor) * direct
    }
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints::paper_default()
    }
}

/// A rider's trip request (the paper's `tr = <s, e, w, ε>` plus bookkeeping
/// identifiers and the submission time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripRequest {
    /// Unique id of the request.
    pub id: TripId,
    /// Pickup vertex (the paper's `s`).
    pub source: NodeId,
    /// Drop-off vertex (the paper's `e`).
    pub destination: NodeId,
    /// Absolute submission time, in meter-equivalents since simulation start
    /// (the simulator converts seconds to meters at 14 m/s).
    pub submitted_at: Cost,
    /// Service guarantee for this trip.
    pub constraints: Constraints,
}

impl TripRequest {
    /// Creates a request.
    pub fn new(
        id: TripId,
        source: NodeId,
        destination: NodeId,
        submitted_at: Cost,
        constraints: Constraints,
    ) -> Self {
        TripRequest {
            id,
            source,
            destination,
            submitted_at,
            constraints,
        }
    }

    /// Absolute deadline (in meter-equivalents) by which the rider must be
    /// picked up.
    pub fn pickup_deadline(&self) -> Cost {
        self.submitted_at + self.constraints.max_wait
    }

    /// Maximum allowed on-vehicle distance given the direct shortest-path
    /// distance between source and destination.
    pub fn max_ride(&self, direct: Cost) -> Cost {
        self.constraints.max_ride(direct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_ten_minutes() {
        let c = Constraints::paper_default();
        assert_eq!(c.max_wait, 8_400.0);
        assert_eq!(c.detour_factor, 0.2);
    }

    #[test]
    fn paper_settings_cover_table_one() {
        let c0 = Constraints::paper_setting(0);
        assert_eq!(c0.max_wait, 4_200.0);
        assert_eq!(c0.detour_factor, 0.1);
        let c4 = Constraints::paper_setting(4);
        assert_eq!(c4.max_wait, 21_000.0);
        assert_eq!(c4.detour_factor, 0.5);
        // Out-of-range indexes clamp to the loosest setting.
        assert_eq!(Constraints::paper_setting(99), c4);
    }

    #[test]
    fn max_ride_scales_direct_distance() {
        let c = Constraints::new(1_000.0, 0.25);
        assert_eq!(c.max_ride(2_000.0), 2_500.0);
    }

    #[test]
    fn request_deadline_is_submission_plus_wait() {
        let r = TripRequest::new(7, 1, 2, 500.0, Constraints::new(1_000.0, 0.2));
        assert_eq!(r.pickup_deadline(), 1_500.0);
        assert_eq!(r.max_ride(300.0), 360.0);
        assert_eq!(r.id, 7);
    }
}

//! A server (taxi) and its pluggable route planner.
//!
//! A [`Vehicle`] owns the algorithmic state of one server: its current
//! position and clock, the passengers on board, the accepted requests not
//! yet picked up, the committed stop sequence it is executing, and — when
//! the kinetic planner is selected — the kinetic tree that materialises all
//! valid schedules. The simulation crate moves vehicles through space; this
//! type answers "can I take this request, and at what cost?" and keeps the
//! bookkeeping consistent when stops are reached.

use roadnet::{DistanceOracle, NodeId};

use crate::algorithms::{SolverKind, SolverOutcome};
use crate::kinetic::{KineticConfig, KineticTree, TreeInsertError};
use crate::problem::{OnboardTrip, Schedule, SchedulingProblem, WaitingTrip};
use crate::request::TripRequest;
use crate::types::{Cost, Stop, StopKind, TripId};

/// Which matching algorithm a vehicle uses to evaluate new requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannerKind {
    /// Re-solve the augmented problem from scratch with a stateless solver
    /// (the paper's brute-force / branch-and-bound / MIP baselines).
    Solver(SolverKind),
    /// Maintain a kinetic tree incrementally (the paper's contribution).
    Kinetic(KineticConfig),
}

impl PlannerKind {
    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerKind::Solver(SolverKind::BruteForce) => "brute-force",
            PlannerKind::Solver(SolverKind::BranchBound) => "branch-and-bound",
            PlannerKind::Solver(SolverKind::Mip) => "mip",
            PlannerKind::Solver(SolverKind::Insertion) => "insertion",
            PlannerKind::Kinetic(cfg) => cfg.variant_name(),
        }
    }
}

/// Result of evaluating a request against one vehicle.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Total distance of the augmented unfinished schedule.
    pub cost: Cost,
    /// The best stop ordering found.
    pub schedule: Schedule,
    /// The trip bookkeeping entry to adopt on commit.
    pub trip: WaitingTrip,
    /// The augmented kinetic tree to adopt on commit (kinetic planner only).
    kinetic: Option<KineticTree>,
}

/// Coarse activity state of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VehicleStatus {
    /// No committed stops: the vehicle cruises.
    Cruising,
    /// At least one committed stop remains.
    Serving,
}

/// Cumulative per-vehicle service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VehicleCounters {
    /// Requests committed to this vehicle.
    pub assigned: u64,
    /// Passengers picked up.
    pub picked_up: u64,
    /// Passengers delivered.
    pub delivered: u64,
}

/// A server: position, passengers, committed route and planner.
#[derive(Debug, Clone)]
pub struct Vehicle {
    id: u32,
    capacity: usize,
    location: NodeId,
    clock: Cost,
    planner: PlannerKind,
    onboard: Vec<OnboardTrip>,
    waiting: Vec<WaitingTrip>,
    route: Schedule,
    tree: Option<KineticTree>,
    counters: VehicleCounters,
}

impl Vehicle {
    /// Creates an idle vehicle at `start`.
    pub fn new(id: u32, start: NodeId, capacity: usize, planner: PlannerKind, clock: Cost) -> Self {
        let tree = match planner {
            PlannerKind::Kinetic(cfg) => Some(KineticTree::new(start, clock, capacity, cfg)),
            PlannerKind::Solver(_) => None,
        };
        Vehicle {
            id,
            capacity,
            location: start,
            clock,
            planner,
            onboard: Vec::new(),
            waiting: Vec::new(),
            route: Vec::new(),
            tree,
            counters: VehicleCounters::default(),
        }
    }

    /// Vehicle identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Seat capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current vertex.
    pub fn location(&self) -> NodeId {
        self.location
    }

    /// Current absolute clock (meter-equivalents).
    pub fn clock(&self) -> Cost {
        self.clock
    }

    /// The planner this vehicle uses.
    pub fn planner(&self) -> PlannerKind {
        self.planner
    }

    /// Passengers currently on board.
    pub fn onboard_count(&self) -> usize {
        self.onboard.len()
    }

    /// Active trips: on board plus accepted-but-not-picked-up.
    pub fn active_trip_count(&self) -> usize {
        self.onboard.len() + self.waiting.len()
    }

    /// Committed stop sequence still to execute.
    pub fn route(&self) -> &Schedule {
        &self.route
    }

    /// Next committed stop, if any.
    pub fn next_stop(&self) -> Option<Stop> {
        self.route.first().copied()
    }

    /// Whether the vehicle is cruising or serving.
    pub fn status(&self) -> VehicleStatus {
        if self.route.is_empty() {
            VehicleStatus::Cruising
        } else {
            VehicleStatus::Serving
        }
    }

    /// Cumulative service counters.
    pub fn counters(&self) -> VehicleCounters {
        self.counters
    }

    /// The kinetic tree, when the kinetic planner is in use.
    pub fn tree(&self) -> Option<&KineticTree> {
        self.tree.as_ref()
    }

    /// Updates the vehicle's position and clock (e.g. after cruising or
    /// part-way through a leg). The kinetic tree is re-rooted accordingly.
    pub fn set_position(&mut self, node: NodeId, clock: Cost, oracle: &dyn DistanceOracle) {
        self.location = node;
        self.clock = clock;
        if let Some(tree) = &mut self.tree {
            tree.reroot(node, clock, oracle);
        }
    }

    /// The scheduling problem describing this vehicle's unfinished work.
    pub fn problem(&self) -> SchedulingProblem {
        SchedulingProblem {
            start: self.location,
            now: self.clock,
            capacity: self.capacity,
            onboard: self.onboard.clone(),
            waiting: self.waiting.clone(),
        }
    }

    fn make_waiting_trip(
        &self,
        request: &TripRequest,
        oracle: &dyn DistanceOracle,
    ) -> Option<WaitingTrip> {
        let direct = oracle.dist(request.source, request.destination);
        if !direct.is_finite() {
            return None;
        }
        Some(WaitingTrip {
            trip: request.id,
            pickup: request.source,
            dropoff: request.destination,
            pickup_deadline: request.pickup_deadline(),
            max_ride: request.max_ride(direct),
        })
    }

    /// Evaluates whether this vehicle can serve `request`, returning the
    /// cheapest augmented schedule if so. The vehicle's own state is not
    /// modified; call [`Vehicle::commit`] with the returned proposal to
    /// accept the request.
    pub fn evaluate(&self, request: &TripRequest, oracle: &dyn DistanceOracle) -> Option<Proposal> {
        let trip = self.make_waiting_trip(request, oracle)?;
        match self.planner {
            PlannerKind::Kinetic(_) => {
                let tree = self
                    .tree
                    .as_ref()
                    .expect("kinetic planner always has a tree");
                match tree.try_insert(trip, oracle) {
                    Ok((new_tree, cost)) => {
                        let schedule = new_tree.best_route().map(|(_, s)| s).unwrap_or_default();
                        Some(Proposal {
                            cost,
                            schedule,
                            trip,
                            kinetic: Some(new_tree),
                        })
                    }
                    Err(TreeInsertError::Infeasible) | Err(TreeInsertError::Overflow) => None,
                }
            }
            PlannerKind::Solver(kind) => {
                let mut problem = self.problem();
                problem.waiting.push(trip);
                let solver = kind.build();
                match solver.solve(&problem, oracle) {
                    SolverOutcome::Feasible { cost, schedule } => Some(Proposal {
                        cost,
                        schedule,
                        trip,
                        kinetic: None,
                    }),
                    SolverOutcome::Infeasible | SolverOutcome::Exhausted => None,
                }
            }
        }
    }

    /// Accepts a request previously evaluated with [`Vehicle::evaluate`].
    pub fn commit(&mut self, proposal: Proposal) {
        self.waiting.push(proposal.trip);
        self.route = proposal.schedule;
        if let Some(tree) = proposal.kinetic {
            self.tree = Some(tree);
        }
        self.counters.assigned += 1;
    }

    /// Records arrival at the next committed stop at absolute clock `clock`.
    ///
    /// Updates passenger bookkeeping (pickup moves the trip on board with
    /// its drop-off deadline fixed; drop-off completes it), advances and
    /// re-roots the kinetic tree, and re-derives the committed route from
    /// the tree's best remaining schedule when the kinetic planner is in
    /// use (the stateless planners keep executing their committed order).
    ///
    /// # Panics
    /// Panics if the vehicle has no committed stops.
    pub fn arrive_at_next_stop(&mut self, clock: Cost, oracle: &dyn DistanceOracle) -> Stop {
        let stop = self.route.remove(0);
        self.location = stop.node;
        self.clock = clock;
        match stop.kind {
            StopKind::Pickup => {
                if let Some(pos) = self.waiting.iter().position(|t| t.trip == stop.trip) {
                    let t = self.waiting.remove(pos);
                    self.onboard.push(OnboardTrip {
                        trip: t.trip,
                        dropoff: t.dropoff,
                        dropoff_deadline: clock + t.max_ride,
                    });
                    self.counters.picked_up += 1;
                }
            }
            StopKind::Dropoff => {
                self.onboard.retain(|t| t.trip != stop.trip);
                self.counters.delivered += 1;
            }
        }
        if let Some(tree) = &mut self.tree {
            let _ = tree.advance_to(stop);
            tree.reroot(stop.node, clock, oracle);
            if let Some((_, schedule)) = tree.best_route() {
                self.route = schedule;
            }
        }
        stop
    }

    /// Drops an accepted-but-not-picked-up trip (dispatcher-side
    /// cancellation). Returns true if the trip was present.
    pub fn cancel_waiting(&mut self, trip: TripId, oracle: &dyn DistanceOracle) -> bool {
        let had = self.waiting.iter().any(|t| t.trip == trip);
        self.waiting.retain(|t| t.trip != trip);
        self.route.retain(|s| s.trip != trip);
        if let Some(tree) = &mut self.tree {
            tree.cancel_waiting(trip);
            tree.reroot(self.location, self.clock, oracle);
        }
        had
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Constraints;
    use roadnet::{GeneratorConfig, MatrixOracle, NetworkKind};

    fn oracle() -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 5,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    fn request(id: TripId, s: NodeId, e: NodeId, at: Cost) -> TripRequest {
        TripRequest::new(id, s, e, at, Constraints::new(8_400.0, 0.5))
    }

    fn planners() -> Vec<PlannerKind> {
        vec![
            PlannerKind::Solver(SolverKind::BruteForce),
            PlannerKind::Solver(SolverKind::BranchBound),
            PlannerKind::Kinetic(KineticConfig::basic()),
            PlannerKind::Kinetic(KineticConfig::slack()),
        ]
    }

    #[test]
    fn all_planners_agree_on_a_single_request() {
        let oracle = oracle();
        let req = request(1, 7, 30, 0.0);
        let mut costs = Vec::new();
        for planner in planners() {
            let v = Vehicle::new(0, 0, 4, planner, 0.0);
            let p = v.evaluate(&req, &oracle).expect("feasible");
            costs.push(p.cost);
        }
        for c in &costs {
            assert!(
                (c - costs[0]).abs() < 1e-6,
                "planner disagreement: {costs:?}"
            );
        }
    }

    #[test]
    fn commit_and_arrivals_update_bookkeeping() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(3, 0, 4, planner, 0.0);
            assert_eq!(v.status(), VehicleStatus::Cruising);
            let req = request(1, 7, 30, 0.0);
            let p = v.evaluate(&req, &oracle).unwrap();
            let cost = p.cost;
            v.commit(p);
            assert_eq!(v.status(), VehicleStatus::Serving);
            assert_eq!(v.active_trip_count(), 1);
            assert_eq!(v.onboard_count(), 0);
            assert_eq!(v.route().len(), 2);

            // Drive to the pickup.
            let first = v.next_stop().unwrap();
            assert_eq!(first, Stop::pickup(1, 7));
            let leg1 = oracle.dist(0, 7);
            let s = v.arrive_at_next_stop(leg1, &oracle);
            assert_eq!(s.kind, StopKind::Pickup);
            assert_eq!(v.onboard_count(), 1);
            assert_eq!(v.counters().picked_up, 1);

            // Drive to the drop-off.
            let leg2 = oracle.dist(7, 30);
            let s = v.arrive_at_next_stop(leg1 + leg2, &oracle);
            assert_eq!(s.kind, StopKind::Dropoff);
            assert_eq!(v.onboard_count(), 0);
            assert_eq!(v.active_trip_count(), 0);
            assert_eq!(v.counters().delivered, 1);
            assert_eq!(v.status(), VehicleStatus::Cruising);
            assert!((cost - (leg1 + leg2)).abs() < 1e-6);
        }
    }

    #[test]
    fn capacity_is_respected_across_planners() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(0, 0, 1, planner, 0.0);
            let r1 = request(1, 7, 30, 0.0);
            let p = v.evaluate(&r1, &oracle).unwrap();
            v.commit(p);
            // Second passenger whose trip would have to overlap with trip 1
            // can still be accepted if served sequentially; verify that the
            // resulting schedule never has 2 passengers on board.
            let r2 = request(2, 8, 31, 0.0);
            if let Some(p) = v.evaluate(&r2, &oracle) {
                let problem = {
                    let mut prob = v.problem();
                    prob.waiting.push(p.trip);
                    prob
                };
                assert!(problem.is_valid(&p.schedule, &oracle));
            }
        }
    }

    #[test]
    fn infeasible_request_returns_none() {
        let oracle = oracle();
        let far = (oracle.node_count() - 1) as NodeId;
        let tight = TripRequest::new(1, far, 0, 0.0, Constraints::new(1.0, 0.1));
        for planner in planners() {
            let v = Vehicle::new(0, 0, 4, planner, 0.0);
            assert!(v.evaluate(&tight, &oracle).is_none(), "{planner:?}");
        }
    }

    #[test]
    fn set_position_moves_vehicle_and_tree() {
        let oracle = oracle();
        let mut v = Vehicle::new(0, 0, 4, PlannerKind::Kinetic(KineticConfig::basic()), 0.0);
        v.set_position(10, 500.0, &oracle);
        assert_eq!(v.location(), 10);
        assert_eq!(v.clock(), 500.0);
        assert_eq!(v.tree().unwrap().problem().start, 10);
    }

    #[test]
    fn cancel_waiting_removes_trip() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(0, 0, 4, planner, 0.0);
            let r1 = request(1, 7, 30, 0.0);
            let p = v.evaluate(&r1, &oracle).unwrap();
            v.commit(p);
            assert!(v.cancel_waiting(1, &oracle));
            assert!(!v.cancel_waiting(1, &oracle));
            assert_eq!(v.active_trip_count(), 0);
            assert!(v.route().iter().all(|s| s.trip != 1));
        }
    }

    #[test]
    fn planner_names() {
        assert_eq!(PlannerKind::Solver(SolverKind::Mip).name(), "mip");
        assert_eq!(
            PlannerKind::Kinetic(KineticConfig::hotspot(100.0)).name(),
            "kinetic-hotspot"
        );
    }
}

//! A server (taxi) and its pluggable route planner.
//!
//! A [`Vehicle`] owns the algorithmic state of one server: its current
//! position and clock, the passengers on board, the accepted requests not
//! yet picked up, the committed stop sequence it is executing, and — when
//! the kinetic planner is selected — the kinetic tree that materialises all
//! valid schedules. The simulation crate moves vehicles through space; this
//! type answers "can I take this request, and at what cost?" and keeps the
//! bookkeeping consistent when stops are reached.

use roadnet::io::bin::{self, Reader};
use roadnet::{DistanceOracle, NodeId, RoadNetError};

use crate::algorithms::{SolverKind, SolverOutcome};
use crate::codec;
use crate::kinetic::{KineticConfig, KineticTree, TreeInsertError};
use crate::problem::{OnboardTrip, Schedule, SchedulingProblem, WaitingTrip};
use crate::request::TripRequest;
use crate::types::{Cost, Stop, StopKind, TripId};

/// Which matching algorithm a vehicle uses to evaluate new requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannerKind {
    /// Re-solve the augmented problem from scratch with a stateless solver
    /// (the paper's brute-force / branch-and-bound / MIP baselines).
    Solver(SolverKind),
    /// Maintain a kinetic tree incrementally (the paper's contribution).
    Kinetic(KineticConfig),
}

impl PlannerKind {
    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerKind::Solver(SolverKind::BruteForce) => "brute-force",
            PlannerKind::Solver(SolverKind::BranchBound) => "branch-and-bound",
            PlannerKind::Solver(SolverKind::Mip) => "mip",
            PlannerKind::Solver(SolverKind::Insertion) => "insertion",
            PlannerKind::Kinetic(cfg) => cfg.variant_name(),
        }
    }
}

/// Result of evaluating a request against one vehicle.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Total distance of the augmented unfinished schedule.
    pub cost: Cost,
    /// The best stop ordering found.
    pub schedule: Schedule,
    /// The trip bookkeeping entry to adopt on commit.
    pub trip: WaitingTrip,
    /// The augmented kinetic tree to adopt on commit (kinetic planner only).
    kinetic: Option<KineticTree>,
}

/// Coarse activity state of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VehicleStatus {
    /// No committed stops: the vehicle cruises.
    Cruising,
    /// At least one committed stop remains.
    Serving,
}

/// Cumulative per-vehicle service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VehicleCounters {
    /// Requests committed to this vehicle.
    pub assigned: u64,
    /// Passengers picked up.
    pub picked_up: u64,
    /// Passengers delivered.
    pub delivered: u64,
}

/// A server: position, passengers, committed route and planner.
#[derive(Debug, Clone)]
pub struct Vehicle {
    id: u32,
    capacity: usize,
    location: NodeId,
    clock: Cost,
    planner: PlannerKind,
    onboard: Vec<OnboardTrip>,
    waiting: Vec<WaitingTrip>,
    route: Schedule,
    tree: Option<KineticTree>,
    counters: VehicleCounters,
}

impl Vehicle {
    /// Creates an idle vehicle at `start`.
    pub fn new(id: u32, start: NodeId, capacity: usize, planner: PlannerKind, clock: Cost) -> Self {
        let tree = match planner {
            PlannerKind::Kinetic(cfg) => Some(KineticTree::new(start, clock, capacity, cfg)),
            PlannerKind::Solver(_) => None,
        };
        Vehicle {
            id,
            capacity,
            location: start,
            clock,
            planner,
            onboard: Vec::new(),
            waiting: Vec::new(),
            route: Vec::new(),
            tree,
            counters: VehicleCounters::default(),
        }
    }

    /// Vehicle identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Seat capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current vertex.
    pub fn location(&self) -> NodeId {
        self.location
    }

    /// Current absolute clock (meter-equivalents).
    pub fn clock(&self) -> Cost {
        self.clock
    }

    /// The planner this vehicle uses.
    pub fn planner(&self) -> PlannerKind {
        self.planner
    }

    /// Passengers currently on board.
    pub fn onboard_count(&self) -> usize {
        self.onboard.len()
    }

    /// Active trips: on board plus accepted-but-not-picked-up.
    pub fn active_trip_count(&self) -> usize {
        self.onboard.len() + self.waiting.len()
    }

    /// Committed stop sequence still to execute.
    pub fn route(&self) -> &Schedule {
        &self.route
    }

    /// Next committed stop, if any.
    pub fn next_stop(&self) -> Option<Stop> {
        self.route.first().copied()
    }

    /// Whether the vehicle is cruising or serving.
    pub fn status(&self) -> VehicleStatus {
        if self.route.is_empty() {
            VehicleStatus::Cruising
        } else {
            VehicleStatus::Serving
        }
    }

    /// Cumulative service counters.
    pub fn counters(&self) -> VehicleCounters {
        self.counters
    }

    /// The kinetic tree, when the kinetic planner is in use.
    pub fn tree(&self) -> Option<&KineticTree> {
        self.tree.as_ref()
    }

    /// Updates the vehicle's position and clock (e.g. after cruising or
    /// part-way through a leg). The kinetic tree is re-rooted accordingly.
    pub fn set_position(&mut self, node: NodeId, clock: Cost, oracle: &dyn DistanceOracle) {
        self.location = node;
        self.clock = clock;
        if let Some(tree) = &mut self.tree {
            tree.reroot(node, clock, oracle);
        }
    }

    /// The scheduling problem describing this vehicle's unfinished work.
    pub fn problem(&self) -> SchedulingProblem {
        SchedulingProblem {
            start: self.location,
            now: self.clock,
            capacity: self.capacity,
            onboard: self.onboard.clone(),
            waiting: self.waiting.clone(),
        }
    }

    fn make_waiting_trip(
        &self,
        request: &TripRequest,
        oracle: &dyn DistanceOracle,
    ) -> Option<WaitingTrip> {
        let direct = oracle.dist(request.source, request.destination);
        if !direct.is_finite() {
            return None;
        }
        Some(WaitingTrip {
            trip: request.id,
            pickup: request.source,
            dropoff: request.destination,
            pickup_deadline: request.pickup_deadline(),
            max_ride: request.max_ride(direct),
        })
    }

    /// Evaluates whether this vehicle can serve `request`, returning the
    /// cheapest augmented schedule if so. The vehicle's own state is not
    /// modified; call [`Vehicle::commit`] with the returned proposal to
    /// accept the request.
    pub fn evaluate(&self, request: &TripRequest, oracle: &dyn DistanceOracle) -> Option<Proposal> {
        let trip = self.make_waiting_trip(request, oracle)?;
        match self.planner {
            PlannerKind::Kinetic(_) => {
                let tree = self
                    .tree
                    .as_ref()
                    .expect("kinetic planner always has a tree");
                match tree.try_insert(trip, oracle) {
                    Ok((new_tree, cost)) => {
                        let schedule = new_tree.best_route().map(|(_, s)| s).unwrap_or_default();
                        Some(Proposal {
                            cost,
                            schedule,
                            trip,
                            kinetic: Some(new_tree),
                        })
                    }
                    Err(TreeInsertError::Infeasible) | Err(TreeInsertError::Overflow) => None,
                }
            }
            PlannerKind::Solver(kind) => {
                let mut problem = self.problem();
                problem.waiting.push(trip);
                let solver = kind.build();
                match solver.solve(&problem, oracle) {
                    SolverOutcome::Feasible { cost, schedule } => Some(Proposal {
                        cost,
                        schedule,
                        trip,
                        kinetic: None,
                    }),
                    SolverOutcome::Infeasible | SolverOutcome::Exhausted => None,
                }
            }
        }
    }

    /// Accepts a request previously evaluated with [`Vehicle::evaluate`].
    pub fn commit(&mut self, proposal: Proposal) {
        self.waiting.push(proposal.trip);
        self.route = proposal.schedule;
        if let Some(tree) = proposal.kinetic {
            self.tree = Some(tree);
        }
        self.counters.assigned += 1;
    }

    /// Records arrival at the next committed stop at absolute clock `clock`.
    ///
    /// Updates passenger bookkeeping (pickup moves the trip on board with
    /// its drop-off deadline fixed; drop-off completes it), advances and
    /// re-roots the kinetic tree, and re-derives the committed route from
    /// the tree's best remaining schedule when the kinetic planner is in
    /// use (the stateless planners keep executing their committed order).
    ///
    /// # Panics
    /// Panics if the vehicle has no committed stops.
    pub fn arrive_at_next_stop(&mut self, clock: Cost, oracle: &dyn DistanceOracle) -> Stop {
        let stop = self.route.remove(0);
        self.location = stop.node;
        self.clock = clock;
        match stop.kind {
            StopKind::Pickup => {
                if let Some(pos) = self.waiting.iter().position(|t| t.trip == stop.trip) {
                    let t = self.waiting.remove(pos);
                    self.onboard.push(OnboardTrip {
                        trip: t.trip,
                        dropoff: t.dropoff,
                        dropoff_deadline: clock + t.max_ride,
                    });
                    self.counters.picked_up += 1;
                }
            }
            StopKind::Dropoff => {
                self.onboard.retain(|t| t.trip != stop.trip);
                self.counters.delivered += 1;
            }
        }
        if let Some(tree) = &mut self.tree {
            let _ = tree.advance_to(stop);
            tree.reroot(stop.node, clock, oracle);
            if let Some((_, schedule)) = tree.best_route() {
                self.route = schedule;
            }
        }
        stop
    }

    /// Serialises the vehicle's complete algorithmic state — identity,
    /// position, passengers, committed route, counters and (for the
    /// kinetic planner) the tree — in the `roadnet::io::bin` conventions
    /// used by simulation checkpoints. [`Vehicle::decode`] restores it
    /// bit-identically.
    pub fn encode(&self, out: &mut Vec<u8>) {
        bin::put_u32(out, self.id);
        bin::put_u64(out, self.capacity as u64);
        bin::put_u32(out, self.location);
        bin::put_f64(out, self.clock);
        encode_planner(out, self.planner);
        bin::put_u64(out, self.onboard.len() as u64);
        for t in &self.onboard {
            codec::put_onboard(out, t);
        }
        bin::put_u64(out, self.waiting.len() as u64);
        for t in &self.waiting {
            codec::put_waiting(out, t);
        }
        bin::put_u64(out, self.route.len() as u64);
        for s in &self.route {
            codec::put_stop(out, s);
        }
        match &self.tree {
            Some(tree) => {
                codec::put_bool(out, true);
                tree.encode(out);
            }
            None => codec::put_bool(out, false),
        }
        bin::put_u64(out, self.counters.assigned);
        bin::put_u64(out, self.counters.picked_up);
        bin::put_u64(out, self.counters.delivered);
    }

    /// Reads a vehicle written by [`Vehicle::encode`]. Malformed input is
    /// reported as [`RoadNetError::Persist`], never a panic.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, RoadNetError> {
        let id = r.u32("vehicle id")?;
        let capacity = r.u64("vehicle capacity")? as usize;
        let location = r.u32("vehicle location")?;
        let clock = r.f64("vehicle clock")?;
        let planner = decode_planner(r)?;
        let n_onboard = codec::read_len(r, 20, "vehicle onboard count")?;
        let onboard = (0..n_onboard)
            .map(|_| codec::read_onboard(r))
            .collect::<Result<_, _>>()?;
        let n_waiting = codec::read_len(r, 32, "vehicle waiting count")?;
        let waiting = (0..n_waiting)
            .map(|_| codec::read_waiting(r))
            .collect::<Result<_, _>>()?;
        let n_route = codec::read_len(r, 13, "vehicle route length")?;
        let route = (0..n_route)
            .map(|_| codec::read_stop(r))
            .collect::<Result<_, _>>()?;
        let tree = if codec::read_bool(r, "vehicle tree tag")? {
            Some(KineticTree::decode(r)?)
        } else {
            None
        };
        if tree.is_some() != matches!(planner, PlannerKind::Kinetic(_)) {
            return Err(RoadNetError::Persist(
                "vehicle planner and kinetic-tree presence disagree".to_string(),
            ));
        }
        let counters = VehicleCounters {
            assigned: r.u64("vehicle assigned counter")?,
            picked_up: r.u64("vehicle picked-up counter")?,
            delivered: r.u64("vehicle delivered counter")?,
        };
        Ok(Vehicle {
            id,
            capacity,
            location,
            clock,
            planner,
            onboard,
            waiting,
            route,
            tree,
            counters,
        })
    }

    /// Drops an accepted-but-not-picked-up trip (dispatcher-side
    /// cancellation). Returns true if the trip was present.
    pub fn cancel_waiting(&mut self, trip: TripId, oracle: &dyn DistanceOracle) -> bool {
        let had = self.waiting.iter().any(|t| t.trip == trip);
        self.waiting.retain(|t| t.trip != trip);
        self.route.retain(|s| s.trip != trip);
        if let Some(tree) = &mut self.tree {
            tree.cancel_waiting(trip);
            tree.reroot(self.location, self.clock, oracle);
        }
        had
    }
}

fn encode_planner(out: &mut Vec<u8>, planner: PlannerKind) {
    let tag: u8 = match planner {
        PlannerKind::Solver(SolverKind::BruteForce) => 0,
        PlannerKind::Solver(SolverKind::BranchBound) => 1,
        PlannerKind::Solver(SolverKind::Mip) => 2,
        PlannerKind::Solver(SolverKind::Insertion) => 3,
        PlannerKind::Kinetic(_) => 4,
    };
    out.push(tag);
    if let PlannerKind::Kinetic(cfg) = planner {
        codec::put_bool(out, cfg.use_slack);
        codec::put_opt_f64(out, cfg.hotspot_theta);
        bin::put_u64(out, cfg.max_nodes as u64);
    }
}

fn decode_planner(r: &mut Reader<'_>) -> Result<PlannerKind, RoadNetError> {
    let tag = r.bytes(1, "planner tag")?[0];
    Ok(match tag {
        0 => PlannerKind::Solver(SolverKind::BruteForce),
        1 => PlannerKind::Solver(SolverKind::BranchBound),
        2 => PlannerKind::Solver(SolverKind::Mip),
        3 => PlannerKind::Solver(SolverKind::Insertion),
        4 => PlannerKind::Kinetic(KineticConfig {
            use_slack: codec::read_bool(r, "planner use_slack")?,
            hotspot_theta: codec::read_opt_f64(r, "planner hotspot theta")?,
            max_nodes: r.u64("planner max_nodes")? as usize,
        }),
        other => {
            return Err(RoadNetError::Persist(format!(
                "unknown planner tag {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Constraints;
    use roadnet::{GeneratorConfig, MatrixOracle, NetworkKind};

    fn oracle() -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 5,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    fn request(id: TripId, s: NodeId, e: NodeId, at: Cost) -> TripRequest {
        TripRequest::new(id, s, e, at, Constraints::new(8_400.0, 0.5))
    }

    fn planners() -> Vec<PlannerKind> {
        vec![
            PlannerKind::Solver(SolverKind::BruteForce),
            PlannerKind::Solver(SolverKind::BranchBound),
            PlannerKind::Kinetic(KineticConfig::basic()),
            PlannerKind::Kinetic(KineticConfig::slack()),
        ]
    }

    #[test]
    fn all_planners_agree_on_a_single_request() {
        let oracle = oracle();
        let req = request(1, 7, 30, 0.0);
        let mut costs = Vec::new();
        for planner in planners() {
            let v = Vehicle::new(0, 0, 4, planner, 0.0);
            let p = v.evaluate(&req, &oracle).expect("feasible");
            costs.push(p.cost);
        }
        for c in &costs {
            assert!(
                (c - costs[0]).abs() < 1e-6,
                "planner disagreement: {costs:?}"
            );
        }
    }

    #[test]
    fn commit_and_arrivals_update_bookkeeping() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(3, 0, 4, planner, 0.0);
            assert_eq!(v.status(), VehicleStatus::Cruising);
            let req = request(1, 7, 30, 0.0);
            let p = v.evaluate(&req, &oracle).unwrap();
            let cost = p.cost;
            v.commit(p);
            assert_eq!(v.status(), VehicleStatus::Serving);
            assert_eq!(v.active_trip_count(), 1);
            assert_eq!(v.onboard_count(), 0);
            assert_eq!(v.route().len(), 2);

            // Drive to the pickup.
            let first = v.next_stop().unwrap();
            assert_eq!(first, Stop::pickup(1, 7));
            let leg1 = oracle.dist(0, 7);
            let s = v.arrive_at_next_stop(leg1, &oracle);
            assert_eq!(s.kind, StopKind::Pickup);
            assert_eq!(v.onboard_count(), 1);
            assert_eq!(v.counters().picked_up, 1);

            // Drive to the drop-off.
            let leg2 = oracle.dist(7, 30);
            let s = v.arrive_at_next_stop(leg1 + leg2, &oracle);
            assert_eq!(s.kind, StopKind::Dropoff);
            assert_eq!(v.onboard_count(), 0);
            assert_eq!(v.active_trip_count(), 0);
            assert_eq!(v.counters().delivered, 1);
            assert_eq!(v.status(), VehicleStatus::Cruising);
            assert!((cost - (leg1 + leg2)).abs() < 1e-6);
        }
    }

    #[test]
    fn capacity_is_respected_across_planners() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(0, 0, 1, planner, 0.0);
            let r1 = request(1, 7, 30, 0.0);
            let p = v.evaluate(&r1, &oracle).unwrap();
            v.commit(p);
            // Second passenger whose trip would have to overlap with trip 1
            // can still be accepted if served sequentially; verify that the
            // resulting schedule never has 2 passengers on board.
            let r2 = request(2, 8, 31, 0.0);
            if let Some(p) = v.evaluate(&r2, &oracle) {
                let problem = {
                    let mut prob = v.problem();
                    prob.waiting.push(p.trip);
                    prob
                };
                assert!(problem.is_valid(&p.schedule, &oracle));
            }
        }
    }

    #[test]
    fn infeasible_request_returns_none() {
        let oracle = oracle();
        let far = (oracle.node_count() - 1) as NodeId;
        let tight = TripRequest::new(1, far, 0, 0.0, Constraints::new(1.0, 0.1));
        for planner in planners() {
            let v = Vehicle::new(0, 0, 4, planner, 0.0);
            assert!(v.evaluate(&tight, &oracle).is_none(), "{planner:?}");
        }
    }

    #[test]
    fn set_position_moves_vehicle_and_tree() {
        let oracle = oracle();
        let mut v = Vehicle::new(0, 0, 4, PlannerKind::Kinetic(KineticConfig::basic()), 0.0);
        v.set_position(10, 500.0, &oracle);
        assert_eq!(v.location(), 10);
        assert_eq!(v.clock(), 500.0);
        assert_eq!(v.tree().unwrap().problem().start, 10);
    }

    #[test]
    fn cancel_waiting_removes_trip() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(0, 0, 4, planner, 0.0);
            let r1 = request(1, 7, 30, 0.0);
            let p = v.evaluate(&r1, &oracle).unwrap();
            v.commit(p);
            assert!(v.cancel_waiting(1, &oracle));
            assert!(!v.cancel_waiting(1, &oracle));
            assert_eq!(v.active_trip_count(), 0);
            assert!(v.route().iter().all(|s| s.trip != 1));
        }
    }

    #[test]
    fn encode_decode_roundtrips_every_planner() {
        let oracle = oracle();
        for planner in planners() {
            let mut v = Vehicle::new(9, 0, 4, planner, 0.0);
            let p = v.evaluate(&request(1, 7, 30, 0.0), &oracle).unwrap();
            v.commit(p);
            let leg = oracle.dist(0, 7);
            v.arrive_at_next_stop(leg, &oracle); // pickup: one on board
            if let Some(p) = v.evaluate(&request(2, 8, 31, leg), &oracle) {
                v.commit(p);
            }

            let mut bytes = Vec::new();
            v.encode(&mut bytes);
            let mut r = Reader::new(&bytes);
            let back = Vehicle::decode(&mut r).unwrap();
            assert_eq!(r.remaining(), 0, "{planner:?}");
            let mut bytes2 = Vec::new();
            back.encode(&mut bytes2);
            assert_eq!(bytes, bytes2, "{planner:?}");
            assert_eq!(back.id(), v.id());
            assert_eq!(back.location(), v.location());
            assert_eq!(back.route(), v.route());
            assert_eq!(back.counters(), v.counters());
            assert_eq!(back.onboard_count(), v.onboard_count());
            assert_eq!(back.active_trip_count(), v.active_trip_count());

            // Truncated input always errors, never panics.
            for len in 0..bytes.len() {
                let mut r = Reader::new(&bytes[..len]);
                assert!(Vehicle::decode(&mut r).is_err(), "truncation at {len}");
            }
        }
    }

    #[test]
    fn planner_names() {
        assert_eq!(PlannerKind::Solver(SolverKind::Mip).name(), "mip");
        assert_eq!(
            PlannerKind::Kinetic(KineticConfig::hotspot(100.0)).name(),
            "kinetic-hotspot"
        );
    }
}

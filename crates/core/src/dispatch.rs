//! Fleet-level dispatching: candidate filtering and minimum-cost assignment.
//!
//! When a request arrives, only servers whose current position lies within
//! the waiting-time radius `w` of the pickup can possibly serve it (any
//! farther server would already violate the waiting-time constraint on the
//! empty road). The dispatcher therefore asks the grid-based spatial index
//! for the vehicles inside that radius, evaluates the request against each
//! candidate, and assigns it to the vehicle offering the smallest augmented
//! trip cost — exactly the paper's simulation loop.
//!
//! The dispatcher also measures the two quantities the paper reports:
//! *average customer response time* (ACRT — wall-clock time to find the best
//! vehicle for one request) and *average response time* (ART — wall-clock
//! time of a single vehicle evaluation, bucketed by how many active requests
//! that vehicle already has).

use std::collections::BTreeMap;
use std::time::Instant;

use roadnet::{DistanceOracle, Point, RoadNetwork};
use spatial::{GridIndex, Position};

use crate::request::TripRequest;
use crate::types::Cost;
use crate::vehicle::{Proposal, Vehicle};

/// Dispatcher configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatcherConfig {
    /// Use the grid index to pre-filter candidates (`true` in the paper);
    /// `false` evaluates every vehicle, which is only sensible for tiny
    /// fleets or ablation studies.
    pub use_spatial_filter: bool,
    /// Multiplier applied to the waiting-time radius when querying the grid
    /// index. Values above 1.0 compensate for the difference between the
    /// Euclidean filter distance and the road-network distance actually
    /// constrained (1.0 is exact for networks whose edge weights equal the
    /// Euclidean length; generated networks add jitter, hence the default
    /// slack).
    pub radius_factor: f64,
    /// Minimum number of `(request, candidate)` work items before the
    /// *parallel* dispatcher spawns worker threads; smaller batches run
    /// inline (spawn latency would exceed the work distributed). Ignored by
    /// the sequential [`Dispatcher`]; results are identical either way. See
    /// [`crate::parallel::MIN_PARALLEL_ITEMS`] for the default's rationale.
    pub min_parallel_items: usize,
    /// Slack-aware best-first candidate pruning (Sec. IV of the paper).
    ///
    /// When enabled, each candidate is first screened with O(1) straight-line
    /// lower bounds against the pickup deadline and the kinetic tree's cached
    /// root slacks; survivors are evaluated cheapest-lower-bound-first with
    /// an early exit once the bound meets the incumbent. Assignments are
    /// **provably identical** to exhaustive evaluation — the screen only
    /// removes candidates whose evaluation must fail, and the early exit only
    /// skips candidates that cannot beat the incumbent under the
    /// lowest-vehicle-id tie-break. Only the number of schedule evaluations
    /// (ART bucket counts, [`GridStats::evaluated`]) changes.
    ///
    /// Soundness requires edge weights that dominate the straight-line
    /// distance between their endpoints, which every `roadnet` generator
    /// guarantees; disable for hand-built networks that violate it.
    ///
    /// [`GridStats::evaluated`]: spatial::GridStats::evaluated
    pub use_pruning: bool,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            use_spatial_filter: true,
            radius_factor: 1.0,
            min_parallel_items: crate::parallel::MIN_PARALLEL_ITEMS,
            use_pruning: true,
        }
    }
}

/// Planner effort level — the serve path's graceful-degradation ladder.
///
/// Under overload the serve loop steps the dispatcher down this ladder one
/// rung at a time and climbs back up with hysteresis; the rungs trade
/// assignment quality for per-request compute:
///
/// * [`Full`](DispatchEffort::Full) — the configured behaviour: every
///   candidate considered, cheapest feasible insertion wins (with or
///   without slack pruning per [`DispatcherConfig::use_pruning`]; the
///   winner is identical either way).
/// * [`SlackPruned`](DispatchEffort::SlackPruned) — forces the slack
///   screen + best-first early exit even when the config disables it.
///   Still exact (same winner as `Full`), but with the compute ceiling the
///   screen provides; a meaningful step only for configs that run
///   exhaustive by default.
/// * [`Greedy`](DispatchEffort::Greedy) — nearest-feasible: candidates are
///   screened, sorted by straight-line distance to the pickup, and the
///   **first** feasible insertion is committed instead of the cheapest.
///   O(1) evaluations in the common case; assignment quality degrades but
///   every committed schedule still satisfies the waiting-time and detour
///   guarantees (feasibility is checked by the same schedule walker).
///
/// Every level is a pure function of fleet state, so degraded runs replay
/// deterministically — what the serve recovery proof requires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DispatchEffort {
    /// Full evaluation: cheapest feasible insertion across all candidates.
    #[default]
    Full,
    /// Slack screen + best-first early exit forced on (still exact).
    SlackPruned,
    /// First feasible insertion in nearest-pickup order.
    Greedy,
}

impl DispatchEffort {
    /// All levels, mildest first — index with [`DispatchEffort::index`].
    pub const ALL: [DispatchEffort; 3] = [
        DispatchEffort::Full,
        DispatchEffort::SlackPruned,
        DispatchEffort::Greedy,
    ];

    /// Position on the ladder: 0 = full effort, 2 = greedy.
    pub fn index(self) -> usize {
        self as usize
    }

    /// One rung down the ladder (less effort); saturates at `Greedy`.
    pub fn degraded(self) -> DispatchEffort {
        match self {
            DispatchEffort::Full => DispatchEffort::SlackPruned,
            _ => DispatchEffort::Greedy,
        }
    }

    /// One rung up the ladder (more effort); saturates at `Full`.
    pub fn restored(self) -> DispatchEffort {
        match self {
            DispatchEffort::Greedy => DispatchEffort::SlackPruned,
            _ => DispatchEffort::Full,
        }
    }

    /// Stable lower-case name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            DispatchEffort::Full => "full",
            DispatchEffort::SlackPruned => "slack_pruned",
            DispatchEffort::Greedy => "greedy",
        }
    }
}

/// Outcome of dispatching one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssignmentOutcome {
    /// The request was assigned to `vehicle` with the given augmented cost.
    Assigned {
        /// Winning vehicle id.
        vehicle: u32,
        /// Cost of the winning augmented schedule.
        cost: Cost,
        /// Number of candidate vehicles evaluated.
        candidates: usize,
    },
    /// No candidate vehicle could serve the request within its constraints.
    Rejected {
        /// Number of candidate vehicles evaluated.
        candidates: usize,
    },
}

impl AssignmentOutcome {
    /// True when the request was assigned.
    pub fn is_assigned(&self) -> bool {
        matches!(self, AssignmentOutcome::Assigned { .. })
    }
}

/// Aggregated dispatching statistics (ACRT / ART bookkeeping).
#[derive(Debug, Clone, Default)]
pub struct DispatchStats {
    /// Requests processed.
    pub requests: u64,
    /// Requests assigned to some vehicle.
    pub assigned: u64,
    /// Requests rejected (no feasible vehicle).
    pub rejected: u64,
    /// Total candidates evaluated over all requests.
    pub candidates: u64,
    /// Total wall-clock nanoseconds spent answering requests (ACRT total).
    pub response_nanos: u128,
    /// Per-vehicle evaluation time bucketed by the vehicle's number of
    /// active requests at evaluation time: bucket -> (evaluations, nanos).
    pub art_buckets: BTreeMap<usize, (u64, u128)>,
}

impl DispatchStats {
    /// Average customer response time in milliseconds.
    pub fn acrt_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.response_nanos as f64 / self.requests as f64 / 1.0e6
        }
    }

    /// Average per-vehicle evaluation time (ms) for vehicles that currently
    /// have `active` active requests, if any were measured.
    pub fn art_ms(&self, active: usize) -> Option<f64> {
        self.art_buckets
            .get(&active)
            .map(|&(count, nanos)| nanos as f64 / count as f64 / 1.0e6)
    }

    /// All ART buckets as `(active requests, evaluations, mean ms)`.
    pub fn art_table(&self) -> Vec<(usize, u64, f64)> {
        self.art_buckets
            .iter()
            .map(|(&k, &(count, nanos))| (k, count, nanos as f64 / count as f64 / 1.0e6))
            .collect()
    }

    /// Fraction of requests that were assigned.
    pub fn service_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.assigned as f64 / self.requests as f64
        }
    }

    /// Mean number of candidates (spatial-filter hits) per request.
    pub fn mean_candidates(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.candidates as f64 / self.requests as f64
        }
    }

    /// Total schedule evaluations actually performed — the sum of the ART
    /// bucket counts. With pruning enabled this is (usually far) smaller
    /// than [`DispatchStats::candidates`]: the slack screen and the
    /// best-first early exit discard candidates before any schedule is
    /// touched.
    pub fn evaluated(&self) -> u64 {
        self.art_buckets.values().map(|&(c, _)| c).sum()
    }

    /// Mean number of candidates fully evaluated per request.
    pub fn mean_evaluated(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.evaluated() as f64 / self.requests as f64
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &DispatchStats) {
        self.requests += other.requests;
        self.assigned += other.assigned;
        self.rejected += other.rejected;
        self.candidates += other.candidates;
        self.response_nanos += other.response_nanos;
        for (&k, &(c, n)) in &other.art_buckets {
            let e = self.art_buckets.entry(k).or_insert((0, 0));
            e.0 += c;
            e.1 += n;
        }
    }
}

/// Candidate vehicle ids for a request under `config`: every vehicle when
/// spatial filtering is off, otherwise the grid-index hits within the
/// waiting-time radius of the pickup vertex. Both forms return ids in
/// ascending order ([`GridIndex::query_radius`] sorts), which is what makes
/// first-wins iteration equivalent to the lowest-id tie-break the parallel
/// dispatcher reduces with.
pub(crate) fn filter_candidates(
    config: &DispatcherConfig,
    request: &TripRequest,
    graph: &RoadNetwork,
    index: &mut GridIndex,
    fleet_size: usize,
) -> Vec<u32> {
    let mut out = Vec::new();
    filter_candidates_into(config, request, graph, index, fleet_size, &mut out);
    out
}

/// Buffer-reusing form of [`filter_candidates`]: the dispatch hot path runs
/// once per submitted trip, so both dispatchers keep one scratch vector
/// alive across requests instead of allocating a candidate `Vec` each time.
pub(crate) fn filter_candidates_into(
    config: &DispatcherConfig,
    request: &TripRequest,
    graph: &RoadNetwork,
    index: &mut GridIndex,
    fleet_size: usize,
    out: &mut Vec<u32>,
) {
    if !config.use_spatial_filter {
        out.clear();
        out.extend(0..fleet_size as u32);
        return;
    }
    let p = graph.point(request.source);
    let radius = request.constraints.max_wait * config.radius_factor;
    index.query_radius_into(Position::new(p.x, p.y), radius, out);
}

/// Safety margin (meters) the candidate screen adds on top of the schedule
/// walker's `1e-6` feasibility tolerance. A candidate is only pruned when
/// its straight-line lower bound exceeds the relevant budget by more than
/// this, so screening can never reject a vehicle whose evaluation would
/// have succeeded.
pub(crate) const PRUNE_EPS: f64 = 1e-3;

/// Outcome of the O(1) candidate screen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Screen {
    /// No feasible insertion can exist: every augmented schedule provably
    /// violates the pickup deadline or a cached root slack.
    Pruned,
    /// The candidate survives; `lb` is an admissible lower bound on the
    /// cost of any feasible augmented schedule.
    Keep {
        /// Admissible lower bound (meters) on the augmented schedule cost.
        lb: Cost,
    },
}

/// Screens one candidate vehicle against `request` using only straight-line
/// geometry and the kinetic tree's cached per-branch bottleneck slacks —
/// no schedule is constructed.
///
/// Soundness (assignments stay bit-identical to exhaustive evaluation):
/// road distances dominate straight-line distances on every generated
/// network, so
/// * any augmented route reaches the pickup no earlier than
///   `clock + |vehicle pickup|` — later than the deadline means infeasible;
/// * a route that serves the pickup before the schedule's first old stop
///   `c` inserts a detour of at least `|vehicle pickup| + |pickup c| - leg(c)`
///   ahead of `c`, which by Theorem 1 kills the whole branch when it
///   exceeds the branch's bottleneck root slack;
/// * a route that serves some old first stop `c` before the pickup cannot
///   reach the pickup before `clock + leg(c) + |c pickup|`.
///
/// A candidate is pruned only when **every** root branch fails both of the
/// last two tests (and the bound always keeps [`PRUNE_EPS`] of safety), so
/// a pruned candidate's `evaluate` must return `None`.
///
/// The returned lower bound is `max(best remaining cost, |vehicle pickup| +
/// direct)`: removing the two new stops from any augmented route leaves a
/// valid old route (so the augmented cost is at least the old optimum), and
/// every augmented route travels to the pickup and then covers at least the
/// direct pickup-to-dropoff distance.
pub(crate) fn screen_candidate(
    vehicle: &Vehicle,
    graph: &RoadNetwork,
    pickup: Point,
    deadline: Cost,
    direct: Cost,
) -> Screen {
    let vp = graph.point(vehicle.location());
    let to_pickup = vp.distance(&pickup);
    if vehicle.clock() + to_pickup > deadline + PRUNE_EPS {
        return Screen::Pruned;
    }
    let mut base = 0.0;
    if let Some(tree) = vehicle.tree() {
        let mut has_branch = false;
        let mut alive = false;
        for (node, leg, slack) in tree.root_branches() {
            has_branch = true;
            let branch = graph.point(node);
            let pickup_to_branch = pickup.distance(&branch);
            if to_pickup + pickup_to_branch - leg <= slack + PRUNE_EPS
                || vehicle.clock() + leg + pickup_to_branch <= deadline + PRUNE_EPS
            {
                alive = true;
                break;
            }
        }
        if has_branch && !alive {
            return Screen::Pruned;
        }
        let best = tree.best_cost();
        if best.is_finite() {
            base = best;
        }
    }
    Screen::Keep {
        lb: base.max(to_pickup + direct),
    }
}

/// Fleet-level matcher.
#[derive(Debug, Clone, Default)]
pub struct Dispatcher {
    config: DispatcherConfig,
    stats: DispatchStats,
    /// Current effort level (the serve path's degradation ladder).
    effort: DispatchEffort,
    /// Candidate-id scratch buffer reused across requests (dispatch runs
    /// once per submitted trip; this avoids an allocation each time).
    scratch: Vec<u32>,
}

impl Dispatcher {
    /// Creates a dispatcher with the given configuration.
    pub fn new(config: DispatcherConfig) -> Self {
        Dispatcher {
            config,
            stats: DispatchStats::default(),
            effort: DispatchEffort::Full,
            scratch: Vec::new(),
        }
    }

    /// Dispatching statistics accumulated so far.
    pub fn stats(&self) -> &DispatchStats {
        &self.stats
    }

    /// Current effort level.
    pub fn effort(&self) -> DispatchEffort {
        self.effort
    }

    /// Sets the effort level for subsequent [`Dispatcher::assign`] calls.
    pub fn set_effort(&mut self, effort: DispatchEffort) {
        self.effort = effort;
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DispatchStats::default();
    }

    /// Replaces the accumulated statistics wholesale — used when resuming a
    /// checkpointed simulation, whose final report must account for the
    /// requests dispatched before the snapshot.
    pub fn set_stats(&mut self, stats: DispatchStats) {
        self.stats = stats;
    }

    /// Candidate vehicle ids for a request: those whose indexed position is
    /// within the waiting-time radius of the pickup vertex.
    pub fn candidates(
        &self,
        request: &TripRequest,
        graph: &RoadNetwork,
        index: &mut GridIndex,
        fleet_size: usize,
    ) -> Vec<u32> {
        filter_candidates(&self.config, request, graph, index, fleet_size)
    }

    /// Processes one request: filters candidates, evaluates them, assigns
    /// the request to the cheapest feasible vehicle (committing it) and
    /// records timing statistics.
    ///
    /// With [`DispatcherConfig::use_pruning`] (the default) candidates are
    /// screened with `screen_candidate` and evaluated best-first by
    /// admissible lower bound with an early exit; otherwise every candidate
    /// is evaluated in ascending-id order. The chosen assignment is
    /// identical either way.
    ///
    /// Cost ties break to the lowest vehicle id, so the assignment is a
    /// pure function of fleet state — [`ParallelDispatcher`] reduces its
    /// worker results with the same rule and is bit-identical to this loop.
    ///
    /// [`ParallelDispatcher`]: crate::parallel::ParallelDispatcher
    pub fn assign(
        &mut self,
        request: &TripRequest,
        vehicles: &mut [Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &dyn DistanceOracle,
    ) -> AssignmentOutcome {
        let request_timer = Instant::now();
        let mut candidate_ids = std::mem::take(&mut self.scratch);
        filter_candidates_into(
            &self.config,
            request,
            graph,
            index,
            vehicles.len(),
            &mut candidate_ids,
        );
        let best = match self.effort {
            DispatchEffort::Full if !self.config.use_pruning => {
                self.evaluate_exhaustive(request, &candidate_ids, vehicles, index, oracle)
            }
            DispatchEffort::Full | DispatchEffort::SlackPruned => {
                self.evaluate_pruned(request, &candidate_ids, vehicles, graph, index, oracle)
            }
            DispatchEffort::Greedy => {
                self.evaluate_greedy(request, &candidate_ids, vehicles, graph, index, oracle)
            }
        };
        self.stats.requests += 1;
        self.stats.candidates += candidate_ids.len() as u64;
        self.stats.response_nanos += request_timer.elapsed().as_nanos();
        let n_candidates = candidate_ids.len();
        self.scratch = candidate_ids;
        match best {
            Some((slot, proposal)) => {
                let cost = proposal.cost;
                let vehicle = vehicles[slot].id();
                vehicles[slot].commit(proposal);
                self.stats.assigned += 1;
                AssignmentOutcome::Assigned {
                    vehicle,
                    cost,
                    candidates: n_candidates,
                }
            }
            None => {
                self.stats.rejected += 1;
                AssignmentOutcome::Rejected {
                    candidates: n_candidates,
                }
            }
        }
    }

    /// Exhaustive evaluation in ascending-id order (pruning disabled).
    fn evaluate_exhaustive(
        &mut self,
        request: &TripRequest,
        candidate_ids: &[u32],
        vehicles: &[Vehicle],
        index: &mut GridIndex,
        oracle: &dyn DistanceOracle,
    ) -> Option<(usize, Proposal)> {
        let mut best: Option<(usize, Proposal)> = None;
        let mut evaluated = 0u64;
        for &vid in candidate_ids {
            let Some(slot) = vehicles.iter().position(|v| v.id() == vid) else {
                continue;
            };
            let active = vehicles[slot].active_trip_count();
            let eval_timer = Instant::now();
            let proposal = vehicles[slot].evaluate(request, oracle);
            let nanos = eval_timer.elapsed().as_nanos();
            let bucket = self.stats.art_buckets.entry(active).or_insert((0, 0));
            bucket.0 += 1;
            bucket.1 += nanos;
            evaluated += 1;
            if let Some(p) = proposal {
                // Strictly-better cost wins; on an exact tie the lowest
                // vehicle id wins (candidate ids arrive in ascending order,
                // so keeping the incumbent implements that).
                if best.as_ref().is_none_or(|(_, b)| p.cost < b.cost) {
                    best = Some((slot, p));
                }
            }
        }
        index.record_pruning(candidate_ids.len() as u64, 0, 0, evaluated);
        best
    }

    /// Slack-screened, best-first evaluation with early exit. Returns the
    /// same winner as [`Dispatcher::evaluate_exhaustive`] — see
    /// [`screen_candidate`] for the soundness argument; the early exit only
    /// skips candidates whose lower bound already loses to the incumbent
    /// under the `(cost, vehicle id)` lexicographic order.
    fn evaluate_pruned(
        &mut self,
        request: &TripRequest,
        candidate_ids: &[u32],
        vehicles: &[Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &dyn DistanceOracle,
    ) -> Option<(usize, Proposal)> {
        let pickup = graph.point(request.source);
        let deadline = request.pickup_deadline();
        let direct = oracle.dist(request.source, request.destination);
        let mut ranked: Vec<(Cost, u32, u32)> = Vec::with_capacity(candidate_ids.len());
        let mut by_slack = 0u64;
        for &vid in candidate_ids {
            let Some(slot) = vehicles.iter().position(|v| v.id() == vid) else {
                continue;
            };
            match screen_candidate(&vehicles[slot], graph, pickup, deadline, direct) {
                Screen::Pruned => by_slack += 1,
                Screen::Keep { lb } => ranked.push((lb, vid, slot as u32)),
            }
        }
        ranked.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("lower bounds are never NaN")
                .then(a.1.cmp(&b.1))
        });
        let mut best: Option<(usize, u32, Proposal)> = None;
        let mut evaluated = 0u64;
        let mut by_bound = 0u64;
        for (i, &(lb, vid, slot)) in ranked.iter().enumerate() {
            if let Some((_, best_vid, b)) = &best {
                // Remaining candidates are sorted by (lb, vid), so once the
                // bound meets the incumbent nothing later can win the
                // (cost, id) lexicographic comparison either.
                if lb > b.cost || (lb == b.cost && vid > *best_vid) {
                    by_bound = (ranked.len() - i) as u64;
                    break;
                }
            }
            let slot = slot as usize;
            let active = vehicles[slot].active_trip_count();
            let eval_timer = Instant::now();
            let proposal = vehicles[slot].evaluate(request, oracle);
            let nanos = eval_timer.elapsed().as_nanos();
            let bucket = self.stats.art_buckets.entry(active).or_insert((0, 0));
            bucket.0 += 1;
            bucket.1 += nanos;
            evaluated += 1;
            if let Some(p) = proposal {
                let better = match &best {
                    None => true,
                    Some((_, best_vid, b)) => {
                        p.cost < b.cost || (p.cost == b.cost && vid < *best_vid)
                    }
                };
                if better {
                    best = Some((slot, vid, p));
                }
            }
        }
        index.record_pruning(candidate_ids.len() as u64, by_slack, by_bound, evaluated);
        best.map(|(slot, _, p)| (slot, p))
    }

    /// Nearest-feasible evaluation ([`DispatchEffort::Greedy`]); see
    /// [`evaluate_greedy`].
    fn evaluate_greedy(
        &mut self,
        request: &TripRequest,
        candidate_ids: &[u32],
        vehicles: &[Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &dyn DistanceOracle,
    ) -> Option<(usize, Proposal)> {
        evaluate_greedy(
            &mut self.stats,
            request,
            candidate_ids,
            vehicles,
            graph,
            index,
            oracle,
        )
    }
}

/// Nearest-feasible evaluation ([`DispatchEffort::Greedy`]): screen the
/// candidates, visit survivors in ascending straight-line distance to the
/// pickup (ties to the lowest vehicle id) and return the **first** feasible
/// insertion. The schedule walker still enforces every guarantee, so a
/// greedy assignment is feasible — just not necessarily cheapest.
/// Deterministic: the visit order and the stop-at-first rule are pure
/// functions of fleet state. Shared by both dispatchers so the parallel
/// greedy path is bit-identical to the sequential one.
pub(crate) fn evaluate_greedy(
    stats: &mut DispatchStats,
    request: &TripRequest,
    candidate_ids: &[u32],
    vehicles: &[Vehicle],
    graph: &RoadNetwork,
    index: &mut GridIndex,
    oracle: &dyn DistanceOracle,
) -> Option<(usize, Proposal)> {
    let pickup = graph.point(request.source);
    let deadline = request.pickup_deadline();
    let direct = oracle.dist(request.source, request.destination);
    let mut ranked: Vec<(Cost, u32, u32)> = Vec::with_capacity(candidate_ids.len());
    let mut by_slack = 0u64;
    for &vid in candidate_ids {
        let Some(slot) = vehicles.iter().position(|v| v.id() == vid) else {
            continue;
        };
        match screen_candidate(&vehicles[slot], graph, pickup, deadline, direct) {
            Screen::Pruned => by_slack += 1,
            Screen::Keep { .. } => {
                let to_pickup = graph.point(vehicles[slot].location()).distance(&pickup);
                ranked.push((to_pickup, vid, slot as u32));
            }
        }
    }
    ranked.sort_unstable_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("distances are never NaN")
            .then(a.1.cmp(&b.1))
    });
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    let mut found: Option<(usize, Proposal)> = None;
    for (i, &(_, _, slot)) in ranked.iter().enumerate() {
        let slot = slot as usize;
        let active = vehicles[slot].active_trip_count();
        let eval_timer = Instant::now();
        let proposal = vehicles[slot].evaluate(request, oracle);
        let nanos = eval_timer.elapsed().as_nanos();
        let bucket = stats.art_buckets.entry(active).or_insert((0, 0));
        bucket.0 += 1;
        bucket.1 += nanos;
        evaluated += 1;
        if let Some(p) = proposal {
            skipped = (ranked.len() - i - 1) as u64;
            found = Some((slot, p));
            break;
        }
    }
    index.record_pruning(candidate_ids.len() as u64, by_slack, skipped, evaluated);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinetic::KineticConfig;
    use crate::request::Constraints;
    use crate::vehicle::PlannerKind;
    use roadnet::{CachedOracle, GeneratorConfig, NetworkKind};

    fn setup(planner: PlannerKind, positions: &[u32]) -> (RoadNetwork, Vec<Vehicle>, GridIndex) {
        let graph = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 3,
            ..GeneratorConfig::default()
        }
        .generate();
        let mut vehicles = Vec::new();
        let mut index = GridIndex::new(1_000.0);
        for (i, &node) in positions.iter().enumerate() {
            let v = Vehicle::new(i as u32, node, 4, planner, 0.0);
            let p = graph.point(node);
            index.insert(i as u32, Position::new(p.x, p.y));
            vehicles.push(v);
        }
        (graph, vehicles, index)
    }

    #[test]
    fn nearest_feasible_vehicle_wins() {
        let (graph, mut vehicles, mut index) =
            setup(PlannerKind::Kinetic(KineticConfig::basic()), &[0, 35, 63]);
        let oracle = CachedOracle::without_labels(&graph);
        let mut dispatcher = Dispatcher::new(DispatcherConfig::default());
        // Request right next to vehicle 1 (node 35).
        let req = TripRequest::new(1, 36, 60, 0.0, Constraints::new(8_400.0, 0.3));
        let out = dispatcher.assign(&req, &mut vehicles, &graph, &mut index, &oracle);
        match out {
            AssignmentOutcome::Assigned {
                vehicle,
                cost,
                candidates,
            } => {
                assert_eq!(vehicle, 1, "the nearby vehicle should win");
                assert!(cost > 0.0);
                assert!(candidates >= 1);
            }
            other => panic!("expected assignment, got {other:?}"),
        }
        assert!(out.is_assigned());
        assert_eq!(vehicles[1].active_trip_count(), 1);
        assert_eq!(vehicles[0].active_trip_count(), 0);
        assert_eq!(dispatcher.stats().assigned, 1);
        assert_eq!(dispatcher.stats().service_rate(), 1.0);
        assert!(dispatcher.stats().acrt_ms() >= 0.0);
        assert!(dispatcher.stats().mean_candidates() >= 1.0);
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        // One vehicle at the far corner, request at the near corner with a
        // waiting budget far too small to cover the distance.
        let (graph, mut vehicles, mut index) = setup(
            PlannerKind::Solver(crate::algorithms::SolverKind::BruteForce),
            &[63],
        );
        let oracle = CachedOracle::without_labels(&graph);
        let mut dispatcher = Dispatcher::new(DispatcherConfig::default());
        let req = TripRequest::new(1, 0, 9, 0.0, Constraints::new(300.0, 0.2));
        let out = dispatcher.assign(&req, &mut vehicles, &graph, &mut index, &oracle);
        assert!(matches!(out, AssignmentOutcome::Rejected { .. }));
        assert_eq!(dispatcher.stats().rejected, 1);
        // The spatial filter should have excluded the far vehicle entirely.
        assert_eq!(dispatcher.stats().candidates, 0);
    }

    #[test]
    fn disabling_the_spatial_filter_evaluates_every_vehicle() {
        let (graph, mut vehicles, mut index) = setup(
            PlannerKind::Kinetic(KineticConfig::slack()),
            &[0, 7, 56, 63],
        );
        let oracle = CachedOracle::without_labels(&graph);
        let mut dispatcher = Dispatcher::new(DispatcherConfig {
            use_spatial_filter: false,
            ..DispatcherConfig::default()
        });
        let req = TripRequest::new(1, 27, 36, 0.0, Constraints::new(8_400.0, 0.3));
        let out = dispatcher.assign(&req, &mut vehicles, &graph, &mut index, &oracle);
        match out {
            AssignmentOutcome::Assigned { candidates, .. } => assert_eq!(candidates, 4),
            other => panic!("{other:?}"),
        }
        // ART buckets were filled for vehicles with zero active requests.
        assert!(dispatcher.stats().art_ms(0).is_some());
        assert_eq!(dispatcher.stats().art_table().len(), 1);
    }

    #[test]
    fn effort_ladder_steps_and_names_are_consistent() {
        use DispatchEffort::*;
        assert_eq!(Full.degraded(), SlackPruned);
        assert_eq!(SlackPruned.degraded(), Greedy);
        assert_eq!(Greedy.degraded(), Greedy, "bottom rung saturates");
        assert_eq!(Greedy.restored(), SlackPruned);
        assert_eq!(SlackPruned.restored(), Full);
        assert_eq!(Full.restored(), Full, "top rung saturates");
        for (i, level) in DispatchEffort::ALL.iter().enumerate() {
            assert_eq!(level.index(), i);
        }
        assert_eq!(Full.name(), "full");
        assert_eq!(Greedy.name(), "greedy");
        assert_eq!(DispatchEffort::default(), Full);
    }

    #[test]
    fn greedy_commits_the_nearest_feasible_vehicle_deterministically() {
        // Vehicle 1 sits right at the pickup; vehicle 0 is farther away but
        // both are feasible. Full effort and greedy agree here (the nearest
        // is also the cheapest), and greedy stops after one evaluation.
        let (graph, mut vehicles, mut index) =
            setup(PlannerKind::Kinetic(KineticConfig::slack()), &[0, 36, 63]);
        let oracle = CachedOracle::without_labels(&graph);
        let mut dispatcher = Dispatcher::new(DispatcherConfig::default());
        dispatcher.set_effort(DispatchEffort::Greedy);
        assert_eq!(dispatcher.effort(), DispatchEffort::Greedy);
        let req = TripRequest::new(1, 36, 60, 0.0, Constraints::new(8_400.0, 0.3));
        let out = dispatcher.assign(&req, &mut vehicles, &graph, &mut index, &oracle);
        match out {
            AssignmentOutcome::Assigned { vehicle, .. } => {
                assert_eq!(vehicle, 1, "nearest feasible vehicle must win");
            }
            other => panic!("expected assignment, got {other:?}"),
        }
        // Greedy under an infeasible request still rejects cleanly.
        dispatcher.set_effort(DispatchEffort::Greedy);
        let far = TripRequest::new(2, 7, 9, 0.0, Constraints::new(1.0, 0.2));
        let out = dispatcher.assign(&far, &mut vehicles, &graph, &mut index, &oracle);
        assert!(matches!(out, AssignmentOutcome::Rejected { .. }));
        // SlackPruned forces the pruned path even with pruning disabled in
        // config, and matches the Full winner on a fresh identical fleet.
        let (graph2, mut fleet_a, mut index_a) =
            setup(PlannerKind::Kinetic(KineticConfig::slack()), &[0, 36, 63]);
        let (_, mut fleet_b, mut index_b) =
            setup(PlannerKind::Kinetic(KineticConfig::slack()), &[0, 36, 63]);
        let oracle2 = CachedOracle::without_labels(&graph2);
        let no_prune = DispatcherConfig {
            use_pruning: false,
            ..DispatcherConfig::default()
        };
        let mut full = Dispatcher::new(no_prune);
        let mut forced = Dispatcher::new(no_prune);
        forced.set_effort(DispatchEffort::SlackPruned);
        let req2 = TripRequest::new(3, 27, 60, 0.0, Constraints::new(8_400.0, 0.3));
        let a = full.assign(&req2, &mut fleet_a, &graph2, &mut index_a, &oracle2);
        let b = forced.assign(&req2, &mut fleet_b, &graph2, &mut index_b, &oracle2);
        match (a, b) {
            (
                AssignmentOutcome::Assigned {
                    vehicle: va,
                    cost: ca,
                    ..
                },
                AssignmentOutcome::Assigned {
                    vehicle: vb,
                    cost: cb,
                    ..
                },
            ) => {
                assert_eq!(va, vb, "slack-pruned winner must match exhaustive");
                assert_eq!(ca, cb);
            }
            other => panic!("expected two assignments, got {other:?}"),
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = DispatchStats {
            requests: 2,
            assigned: 1,
            rejected: 1,
            candidates: 5,
            response_nanos: 1_000,
            art_buckets: BTreeMap::from([(0, (2, 500))]),
        };
        let b = DispatchStats {
            requests: 1,
            assigned: 1,
            rejected: 0,
            candidates: 2,
            response_nanos: 500,
            art_buckets: BTreeMap::from([(0, (1, 100)), (3, (1, 900))]),
        };
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.assigned, 2);
        assert_eq!(a.candidates, 7);
        assert_eq!(a.art_buckets[&0], (3, 600));
        assert_eq!(a.art_buckets[&3], (1, 900));
        assert!(a.art_ms(7).is_none());
    }
}

//! Binary (de)serialisation of scheduling-core state.
//!
//! The simulation crate checkpoints a running fleet to disk so a day-long
//! replay survives interruption; the pieces of that state owned by this
//! crate — [`Vehicle`](crate::Vehicle)s and their
//! [`KineticTree`](crate::KineticTree)s — serialise themselves through
//! [`Vehicle::encode`](crate::Vehicle::encode) /
//! [`Vehicle::decode`](crate::Vehicle::decode), built on the helpers here.
//!
//! The format follows the `roadnet::io::bin` conventions: little-endian
//! fixed-width integers, `f64`s as IEEE-754 bit patterns (so distances,
//! deadlines and ±∞ slack values round-trip bit-identically), collections
//! as a `u64` length followed by the elements, and `Option`s as a one-byte
//! tag. Framing, versioning and checksumming are the *container's* job
//! (the checkpoint file wraps everything in one checksummed blob); decoding
//! here still never panics on malformed input — every error surfaces as
//! [`RoadNetError::Persist`].

use roadnet::io::bin::{self, Reader};
use roadnet::RoadNetError;

use crate::problem::{OnboardTrip, SchedulingProblem, WaitingTrip};
use crate::types::{Stop, StopKind};

/// Appends a `bool` as a single byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Reads a `bool` written by [`put_bool`], rejecting other byte values.
pub fn read_bool(r: &mut Reader<'_>, what: &str) -> Result<bool, RoadNetError> {
    match r.bytes(1, what)?[0] {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(RoadNetError::Persist(format!(
            "invalid boolean byte {other} for {what}"
        ))),
    }
}

/// Appends an `Option<f64>` as a presence byte plus the payload bits.
pub fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            put_bool(out, true);
            bin::put_f64(out, x);
        }
        None => put_bool(out, false),
    }
}

/// Reads an `Option<f64>` written by [`put_opt_f64`].
pub fn read_opt_f64(r: &mut Reader<'_>, what: &str) -> Result<Option<f64>, RoadNetError> {
    Ok(if read_bool(r, what)? {
        Some(r.f64(what)?)
    } else {
        None
    })
}

/// Appends an `Option<u32>` as a presence byte plus the payload.
pub fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            put_bool(out, true);
            bin::put_u32(out, x);
        }
        None => put_bool(out, false),
    }
}

/// Reads an `Option<u32>` written by [`put_opt_u32`].
pub fn read_opt_u32(r: &mut Reader<'_>, what: &str) -> Result<Option<u32>, RoadNetError> {
    Ok(if read_bool(r, what)? {
        Some(r.u32(what)?)
    } else {
        None
    })
}

/// Reads a collection length, bounding it by what the remaining buffer
/// could possibly hold (`min_elem_bytes` per element) so a corrupt length
/// cannot trigger a huge allocation.
pub fn read_len(
    r: &mut Reader<'_>,
    min_elem_bytes: usize,
    what: &str,
) -> Result<usize, RoadNetError> {
    let len = r.u64(what)? as usize;
    if len.saturating_mul(min_elem_bytes.max(1)) > r.remaining() {
        return Err(RoadNetError::Persist(format!(
            "{what}: length {len} exceeds the {} bytes remaining",
            r.remaining()
        )));
    }
    Ok(len)
}

/// Appends a [`Stop`].
pub fn put_stop(out: &mut Vec<u8>, s: &Stop) {
    bin::put_u64(out, s.trip);
    put_bool(out, s.kind == StopKind::Pickup);
    bin::put_u32(out, s.node);
}

/// Reads a [`Stop`] written by [`put_stop`].
pub fn read_stop(r: &mut Reader<'_>) -> Result<Stop, RoadNetError> {
    let trip = r.u64("stop trip")?;
    let kind = if read_bool(r, "stop kind")? {
        StopKind::Pickup
    } else {
        StopKind::Dropoff
    };
    let node = r.u32("stop node")?;
    Ok(Stop { trip, kind, node })
}

/// Appends a [`WaitingTrip`].
pub fn put_waiting(out: &mut Vec<u8>, t: &WaitingTrip) {
    bin::put_u64(out, t.trip);
    bin::put_u32(out, t.pickup);
    bin::put_u32(out, t.dropoff);
    bin::put_f64(out, t.pickup_deadline);
    bin::put_f64(out, t.max_ride);
}

/// Reads a [`WaitingTrip`] written by [`put_waiting`].
pub fn read_waiting(r: &mut Reader<'_>) -> Result<WaitingTrip, RoadNetError> {
    Ok(WaitingTrip {
        trip: r.u64("waiting trip id")?,
        pickup: r.u32("waiting pickup")?,
        dropoff: r.u32("waiting dropoff")?,
        pickup_deadline: r.f64("waiting pickup deadline")?,
        max_ride: r.f64("waiting max ride")?,
    })
}

/// Appends an [`OnboardTrip`].
pub fn put_onboard(out: &mut Vec<u8>, t: &OnboardTrip) {
    bin::put_u64(out, t.trip);
    bin::put_u32(out, t.dropoff);
    bin::put_f64(out, t.dropoff_deadline);
}

/// Reads an [`OnboardTrip`] written by [`put_onboard`].
pub fn read_onboard(r: &mut Reader<'_>) -> Result<OnboardTrip, RoadNetError> {
    Ok(OnboardTrip {
        trip: r.u64("onboard trip id")?,
        dropoff: r.u32("onboard dropoff")?,
        dropoff_deadline: r.f64("onboard dropoff deadline")?,
    })
}

/// Appends a [`SchedulingProblem`].
pub fn put_problem(out: &mut Vec<u8>, p: &SchedulingProblem) {
    bin::put_u32(out, p.start);
    bin::put_f64(out, p.now);
    bin::put_u64(out, p.capacity as u64);
    bin::put_u64(out, p.onboard.len() as u64);
    for t in &p.onboard {
        put_onboard(out, t);
    }
    bin::put_u64(out, p.waiting.len() as u64);
    for t in &p.waiting {
        put_waiting(out, t);
    }
}

/// Reads a [`SchedulingProblem`] written by [`put_problem`].
pub fn read_problem(r: &mut Reader<'_>) -> Result<SchedulingProblem, RoadNetError> {
    let start = r.u32("problem start")?;
    let now = r.f64("problem clock")?;
    let capacity = r.u64("problem capacity")? as usize;
    let n_onboard = read_len(r, 20, "problem onboard count")?;
    let onboard = (0..n_onboard)
        .map(|_| read_onboard(r))
        .collect::<Result<_, _>>()?;
    let n_waiting = read_len(r, 32, "problem waiting count")?;
    let waiting = (0..n_waiting)
        .map(|_| read_waiting(r))
        .collect::<Result<_, _>>()?;
    Ok(SchedulingProblem {
        start,
        now,
        capacity,
        onboard,
        waiting,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_helpers_roundtrip() {
        let mut buf = Vec::new();
        put_bool(&mut buf, true);
        put_bool(&mut buf, false);
        put_opt_f64(&mut buf, Some(-1.5));
        put_opt_f64(&mut buf, None);
        put_opt_u32(&mut buf, Some(7));
        put_opt_u32(&mut buf, None);
        let mut r = Reader::new(&buf);
        assert!(read_bool(&mut r, "a").unwrap());
        assert!(!read_bool(&mut r, "b").unwrap());
        assert_eq!(read_opt_f64(&mut r, "c").unwrap(), Some(-1.5));
        assert_eq!(read_opt_f64(&mut r, "d").unwrap(), None);
        assert_eq!(read_opt_u32(&mut r, "e").unwrap(), Some(7));
        assert_eq!(read_opt_u32(&mut r, "f").unwrap(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn invalid_bool_and_oversized_len_error() {
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            read_bool(&mut r, "x"),
            Err(RoadNetError::Persist(_))
        ));
        let mut buf = Vec::new();
        bin::put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            read_len(&mut r, 8, "list"),
            Err(RoadNetError::Persist(_))
        ));
    }

    #[test]
    fn trip_records_roundtrip() {
        let stop = Stop::dropoff(42, 17);
        let waiting = WaitingTrip {
            trip: 3,
            pickup: 1,
            dropoff: 2,
            pickup_deadline: 8_400.0,
            max_ride: 1_234.5,
        };
        let onboard = OnboardTrip {
            trip: 4,
            dropoff: 9,
            dropoff_deadline: f64::INFINITY,
        };
        let mut buf = Vec::new();
        put_stop(&mut buf, &stop);
        put_waiting(&mut buf, &waiting);
        put_onboard(&mut buf, &onboard);
        let mut r = Reader::new(&buf);
        assert_eq!(read_stop(&mut r).unwrap(), stop);
        assert_eq!(read_waiting(&mut r).unwrap(), waiting);
        assert_eq!(read_onboard(&mut r).unwrap(), onboard);
    }
}

//! Fundamental identifiers and value types of the scheduling core.

use roadnet::NodeId;

/// Identifier of a trip request, unique within a simulation run.
pub type TripId = u64;

/// Costs, distances and (meter-equivalent) times.
///
/// Everything in the scheduling core is expressed in meters. The paper uses
/// a constant driving speed of 14 m/s, so a waiting time of 10 minutes is
/// the 8,400 m the paper rounds to "8,500 meters"; the simulation crate
/// performs the seconds-to-meters conversion at its boundary and the core
/// never needs wall-clock units.
pub type Cost = f64;

/// Whether a scheduled stop picks a passenger up or drops one off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopKind {
    /// Passenger boards the vehicle at this stop.
    Pickup,
    /// Passenger leaves the vehicle at this stop.
    Dropoff,
}

/// One stop of a trip schedule: a pickup or drop-off of a specific trip at a
/// specific road-network vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stop {
    /// The trip being served.
    pub trip: TripId,
    /// Pickup or drop-off.
    pub kind: StopKind,
    /// Road-network vertex of the stop.
    pub node: NodeId,
}

impl Stop {
    /// Creates a pickup stop.
    pub fn pickup(trip: TripId, node: NodeId) -> Self {
        Stop {
            trip,
            kind: StopKind::Pickup,
            node,
        }
    }

    /// Creates a drop-off stop.
    pub fn dropoff(trip: TripId, node: NodeId) -> Self {
        Stop {
            trip,
            kind: StopKind::Dropoff,
            node,
        }
    }

    /// True if this stop is a pickup.
    pub fn is_pickup(&self) -> bool {
        self.kind == StopKind::Pickup
    }

    /// True if this stop is a drop-off.
    pub fn is_dropoff(&self) -> bool {
        self.kind == StopKind::Dropoff
    }
}

impl std::fmt::Display for Stop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            StopKind::Pickup => write!(f, "s{}@{}", self.trip, self.node),
            StopKind::Dropoff => write!(f, "e{}@{}", self.trip, self.node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let p = Stop::pickup(3, 17);
        let d = Stop::dropoff(3, 21);
        assert!(p.is_pickup() && !p.is_dropoff());
        assert!(d.is_dropoff() && !d.is_pickup());
        assert_eq!(p.trip, 3);
        assert_eq!(d.node, 21);
        assert_ne!(p, d);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Stop::pickup(2, 5).to_string(), "s2@5");
        assert_eq!(Stop::dropoff(2, 9).to_string(), "e2@9");
    }
}

//! Parallel fleet dispatch: sharded candidate evaluation over a work pool.
//!
//! The per-request work in [`Dispatcher::assign`](crate::Dispatcher::assign)
//! is dominated by evaluating candidate vehicles, and the paper observes
//! those evaluations are independent — each one reads a vehicle's schedule
//! state and the (shared, read-mostly) distance oracle and writes nothing.
//! [`ParallelDispatcher`] exploits that: it flattens a batch of concurrent
//! requests into `(request, candidate)` work items, shards the items across
//! a scoped [`WorkPool`], evaluates them concurrently against an immutable
//! snapshot of the fleet, and then reduces sequentially — in request order,
//! breaking cost ties to the lowest vehicle id — so the produced assignment
//! sequence and [`DispatchStats`] counts are **bit-identical** to running
//! the sequential dispatcher over the same requests in the same order.
//!
//! Determinism is preserved under speculation: a candidate whose vehicle
//! was committed to by an *earlier* request in the batch ("dirty") has its
//! speculative evaluation discarded and is re-evaluated during the reduce,
//! where it sees exactly the fleet state the sequential loop would have
//! shown it. Clean candidates are untouched by earlier commits, so their
//! speculative results are already exact.
//!
//! The oracle must be thread-safe: this module takes
//! `&(dyn DistanceOracle + Sync)` — use
//! [`ShardedOracle`](roadnet::ShardedOracle) (per-shard locked caches)
//! rather than the `RefCell`-based sequential
//! [`CachedOracle`](roadnet::CachedOracle).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use roadnet::{DistanceOracle, RoadNetwork};
use spatial::GridIndex;
use workpool::WorkPool;

use crate::dispatch::{
    evaluate_greedy, filter_candidates, filter_candidates_into, screen_candidate,
    AssignmentOutcome, DispatchEffort, DispatchStats, DispatcherConfig, Screen,
};
use crate::request::TripRequest;
use crate::types::Cost;
use crate::vehicle::Vehicle;

/// Default for [`DispatcherConfig::min_parallel_items`]: below this many
/// `(request, candidate)` work items a batch is evaluated inline on the
/// calling thread. Spawning a scoped worker costs tens of microseconds
/// while one warm-cache evaluation costs ~2 µs, so the break-even batch is
/// in the hundreds of items; below it, fan-out would make dispatch
/// *slower* than sequential. Results are identical either way.
pub const MIN_PARALLEL_ITEMS: usize = 256;

/// One unit of speculative work: evaluate request `req` against the vehicle
/// in `slot`.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    req: u32,
    slot: u32,
}

/// One screened candidate of a request. `pruned` candidates get no work
/// item; kept candidates own the next speculative [`Eval`] of their request
/// in phase-1 order.
#[derive(Debug, Clone, Copy)]
struct Cand {
    vid: u32,
    slot: u32,
    /// Admissible lower bound on the cost increment (0.0 when pruning is
    /// off — the exhaustive reduce ignores it).
    lb: Cost,
    pruned: bool,
}

/// Result of one speculative evaluation. The owning candidate (and its
/// vehicle id / slot) is recovered positionally: evaluations arrive in the
/// same per-request order the kept candidates were emitted in.
#[derive(Debug, Clone, Copy)]
struct Eval {
    req: u32,
    /// Active trips of the vehicle at evaluation time (ART bucket key).
    active: usize,
    /// Wall-clock nanoseconds the evaluation took.
    nanos: u128,
    /// Augmented schedule cost, `None` when the vehicle cannot serve it.
    cost: Option<Cost>,
}

/// Multi-threaded fleet matcher, bit-identical to [`Dispatcher`].
///
/// With one worker (or a batch below [`MIN_PARALLEL_ITEMS`]) everything
/// runs inline on the calling thread through the same code path, so a
/// `workers = 1` dispatcher is a drop-in sequential replacement.
///
/// [`Dispatcher`]: crate::Dispatcher
#[derive(Debug, Clone)]
pub struct ParallelDispatcher {
    config: DispatcherConfig,
    pool: WorkPool,
    stats: DispatchStats,
    /// Current effort level (the serve path's degradation ladder).
    effort: DispatchEffort,
}

impl ParallelDispatcher {
    /// Creates a dispatcher fanning out across `workers` threads (clamped
    /// to at least 1). Batches below
    /// [`DispatcherConfig::min_parallel_items`] run inline; the determinism
    /// tests set that to zero so even tiny fixtures exercise real worker
    /// threads.
    pub fn new(config: DispatcherConfig, workers: usize) -> Self {
        ParallelDispatcher {
            config,
            pool: WorkPool::new(workers).run_inline_below(config.min_parallel_items),
            stats: DispatchStats::default(),
            effort: DispatchEffort::Full,
        }
    }

    /// Number of worker threads evaluations fan out across.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Current effort level.
    pub fn effort(&self) -> DispatchEffort {
        self.effort
    }

    /// Sets the effort level for subsequent assignments. `SlackPruned`
    /// forces the slack screen on even when the config disables it (still
    /// exact); `Greedy` switches batches to the sequential nearest-feasible
    /// path (one evaluation per request in the common case — fanning that
    /// out would cost more than it saves), bit-identical to the sequential
    /// dispatcher at the same level.
    pub fn set_effort(&mut self, effort: DispatchEffort) {
        self.effort = effort;
    }

    /// Dispatching statistics accumulated so far.
    ///
    /// All counters (`requests`, `assigned`, `rejected`, `candidates`, ART
    /// bucket evaluation counts) are bit-identical to what the sequential
    /// dispatcher would have accumulated; the nanosecond fields are wall
    /// clock and therefore run-dependent. `response_nanos` records whole
    /// batch wall time, so ACRT reflects the parallel speedup.
    pub fn stats(&self) -> &DispatchStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DispatchStats::default();
    }

    /// Replaces the accumulated statistics wholesale — used when resuming a
    /// checkpointed simulation, whose final report must account for the
    /// requests dispatched before the snapshot.
    pub fn set_stats(&mut self, stats: DispatchStats) {
        self.stats = stats;
    }

    /// Candidate vehicle ids for a request (ascending), exactly as the
    /// sequential dispatcher computes them.
    pub fn candidates(
        &self,
        request: &TripRequest,
        graph: &RoadNetwork,
        index: &mut GridIndex,
        fleet_size: usize,
    ) -> Vec<u32> {
        filter_candidates(&self.config, request, graph, index, fleet_size)
    }

    /// Processes one request; equivalent to a one-element
    /// [`ParallelDispatcher::assign_batch`].
    pub fn assign(
        &mut self,
        request: &TripRequest,
        vehicles: &mut [Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &(dyn DistanceOracle + Sync),
    ) -> AssignmentOutcome {
        self.assign_batch(
            std::slice::from_ref(request),
            vehicles,
            graph,
            index,
            oracle,
        )
        .pop()
        .expect("one outcome per request")
    }

    /// Processes a batch of concurrent requests (one dispatch tick).
    ///
    /// Requests are logically processed in slice order: request `i` sees
    /// every commit made for requests `0..i`, exactly as if each had been
    /// passed to [`Dispatcher::assign`](crate::Dispatcher::assign) in turn.
    /// The speculative evaluations fan out across the work pool; the
    /// reduce re-evaluates only candidates invalidated by an earlier
    /// commit in the batch, then picks the cheapest feasible vehicle with
    /// cost ties broken to the lowest vehicle id.
    pub fn assign_batch(
        &mut self,
        requests: &[TripRequest],
        vehicles: &mut [Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &(dyn DistanceOracle + Sync),
    ) -> Vec<AssignmentOutcome> {
        if self.effort == DispatchEffort::Greedy {
            return self.assign_batch_greedy(requests, vehicles, graph, index, oracle);
        }
        // SlackPruned forces the screen on; the winner is unchanged (the
        // screen is exact), only the evaluation count drops.
        let pruning = self.config.use_pruning || self.effort == DispatchEffort::SlackPruned;
        let batch_timer = Instant::now();

        // Phase 0 (sequential): candidate filtering and slot resolution.
        // Commits never move a vehicle in the grid index, so candidate sets
        // computed up front equal the ones the sequential loop would see.
        //
        // Slot resolution matches the sequential dispatcher's
        // `position(|v| v.id() == vid)` semantics — first match wins when
        // ids repeat — via a fast path for the canonical layout every
        // engine uses (vehicle `i` has id `i`: no map at all) and a
        // first-wins map otherwise.
        let canonical = vehicles
            .iter()
            .enumerate()
            .all(|(slot, v)| v.id() == slot as u32);
        let slot_of: HashMap<u32, u32> = if canonical {
            HashMap::new()
        } else {
            let mut map = HashMap::with_capacity(vehicles.len());
            for (slot, v) in vehicles.iter().enumerate() {
                map.entry(v.id()).or_insert(slot as u32);
            }
            map
        };
        let fleet_len = vehicles.len();
        let resolve = |vid: u32| -> Option<u32> {
            if canonical {
                ((vid as usize) < fleet_len).then_some(vid)
            } else {
                slot_of.get(&vid).copied()
            }
        };
        // With pruning on, each candidate is additionally screened with
        // `screen_candidate` against the pre-batch fleet state; only kept
        // candidates become speculative work items. Candidates of vehicles
        // dirtied by an earlier commit are re-screened during the reduce
        // (a commit can flip a slack screen in either direction), so the
        // reduce sees exactly the screening decisions the sequential
        // pruned loop would have made.
        let mut candidate_counts = Vec::with_capacity(requests.len());
        let mut cand_by_req: Vec<Vec<Cand>> = Vec::with_capacity(requests.len());
        let mut items: Vec<WorkItem> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for (ri, request) in requests.iter().enumerate() {
            filter_candidates_into(
                &self.config,
                request,
                graph,
                index,
                vehicles.len(),
                &mut scratch,
            );
            candidate_counts.push(scratch.len());
            let mut cands = Vec::with_capacity(scratch.len());
            let screen_ctx = pruning.then(|| {
                (
                    graph.point(request.source),
                    request.pickup_deadline(),
                    oracle.dist(request.source, request.destination),
                )
            });
            for &vid in &scratch {
                let Some(slot) = resolve(vid) else { continue };
                let (pruned, lb) = match screen_ctx {
                    Some((pickup, deadline, direct)) => {
                        match screen_candidate(
                            &vehicles[slot as usize],
                            graph,
                            pickup,
                            deadline,
                            direct,
                        ) {
                            Screen::Pruned => (true, 0.0),
                            Screen::Keep { lb } => (false, lb),
                        }
                    }
                    None => (false, 0.0),
                };
                cands.push(Cand {
                    vid,
                    slot,
                    lb,
                    pruned,
                });
                if !pruned {
                    items.push(WorkItem {
                        req: ri as u32,
                        slot,
                    });
                }
            }
            cand_by_req.push(cands);
        }

        // Phase 1 (parallel): speculative evaluation against the pre-batch
        // fleet snapshot. Chunk results come back in chunk order and each
        // chunk preserves item order, so the concatenation below is in
        // (request, candidate-id) ascending order — the sequential
        // evaluation order.
        let fleet: &[Vehicle] = vehicles;
        let chunked: Vec<Vec<Eval>> = self.pool.map_chunks(&items, |_, _, chunk| {
            chunk
                .iter()
                .map(|it| {
                    let v = &fleet[it.slot as usize];
                    let active = v.active_trip_count();
                    let timer = Instant::now();
                    let cost = v
                        .evaluate(&requests[it.req as usize], oracle)
                        .map(|p| p.cost);
                    Eval {
                        req: it.req,
                        active,
                        nanos: timer.elapsed().as_nanos(),
                        cost,
                    }
                })
                .collect()
        });
        let mut evals_by_req: Vec<Vec<Eval>> = vec![Vec::new(); requests.len()];
        for eval in chunked.into_iter().flatten() {
            evals_by_req[eval.req as usize].push(eval);
        }

        // Phase 2 (sequential reduce): in request order, repair speculation
        // against earlier commits, select, commit.
        //
        // Pruned mode walks each request's surviving candidates in
        // ascending `(lb, vid)` order with the same early exit as the
        // sequential pruned loop; dirty candidates are re-screened and (if
        // kept) re-evaluated against the current fleet state, so both the
        // chosen assignment and every pruning counter are bit-identical to
        // feeding the requests one by one through `Dispatcher::assign`.
        let mut dirty: HashSet<u32> = HashSet::new();
        let mut outcomes = Vec::with_capacity(requests.len());
        for (ri, request) in requests.iter().enumerate() {
            let mut best: Option<(Cost, u32, usize)> = None;
            // The winner's proposal when the winner was re-evaluated in the
            // reduce (already in hand); clean winners are re-evaluated at
            // commit (phase 1 keeps only costs to avoid shipping kinetic
            // trees across threads).
            let mut best_proposal: Option<crate::vehicle::Proposal> = None;
            // Walk order: `(lb, vid, slot, speculative eval index)`; a
            // `None` index means the candidate must be evaluated fresh.
            let evals = &evals_by_req[ri];
            let mut by_slack = 0u64;
            let mut entries: Vec<(Cost, u32, u32, Option<usize>)> =
                Vec::with_capacity(cand_by_req[ri].len());
            let screen_ctx = pruning.then(|| {
                (
                    graph.point(request.source),
                    request.pickup_deadline(),
                    oracle.dist(request.source, request.destination),
                )
            });
            let mut next_eval = 0usize;
            for c in &cand_by_req[ri] {
                let spec = if c.pruned {
                    None
                } else {
                    let k = next_eval;
                    next_eval += 1;
                    Some(k)
                };
                match (screen_ctx, dirty.contains(&c.vid)) {
                    (Some((pickup, deadline, direct)), true) => {
                        // An earlier commit changed this vehicle's schedule;
                        // the phase-0 screen (and any speculative eval) is
                        // stale in both directions.
                        match screen_candidate(
                            &vehicles[c.slot as usize],
                            graph,
                            pickup,
                            deadline,
                            direct,
                        ) {
                            Screen::Pruned => by_slack += 1,
                            Screen::Keep { lb } => entries.push((lb, c.vid, c.slot, None)),
                        }
                    }
                    _ if c.pruned => by_slack += 1,
                    (_, is_dirty) => {
                        entries.push((c.lb, c.vid, c.slot, (!is_dirty).then_some(spec).flatten()))
                    }
                }
            }
            if pruning {
                entries.sort_unstable_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("lower bounds are never NaN")
                        .then(a.1.cmp(&b.1))
                });
            }
            let mut evaluated = 0u64;
            let mut by_bound = 0u64;
            for (i, &(lb, vid, slot, spec)) in entries.iter().enumerate() {
                if pruning {
                    if let Some((bc, bvid, _)) = &best {
                        // Entries are sorted by (lb, vid): once the bound
                        // loses to the incumbent under the (cost, id)
                        // order, every later entry does too.
                        if lb > *bc || (lb == *bc && vid > *bvid) {
                            by_bound = (entries.len() - i) as u64;
                            break;
                        }
                    }
                }
                let (active, nanos, cost, proposal) = match spec {
                    Some(k) => {
                        let eval = &evals[k];
                        (eval.active, eval.nanos, eval.cost, None)
                    }
                    None => {
                        // Dirty candidate: re-evaluate against the current
                        // state — the same state the sequential loop would
                        // have evaluated.
                        let v = &vehicles[slot as usize];
                        let active = v.active_trip_count();
                        let timer = Instant::now();
                        let proposal = v.evaluate(request, oracle);
                        let cost = proposal.as_ref().map(|p| p.cost);
                        (active, timer.elapsed().as_nanos(), cost, proposal)
                    }
                };
                let bucket = self.stats.art_buckets.entry(active).or_insert((0, 0));
                bucket.0 += 1;
                bucket.1 += nanos;
                evaluated += 1;
                if let Some(cost) = cost {
                    let better = match &best {
                        None => true,
                        Some((bc, bvid, _)) => cost < *bc || (cost == *bc && vid < *bvid),
                    };
                    if better {
                        best = Some((cost, vid, slot as usize));
                        best_proposal = proposal;
                    }
                }
            }
            index.record_pruning(candidate_counts[ri] as u64, by_slack, by_bound, evaluated);
            self.stats.requests += 1;
            self.stats.candidates += candidate_counts[ri] as u64;
            let outcome = match best {
                Some((_, vid, slot)) => {
                    // Evaluation is deterministic and the winner's state is
                    // exactly what produced its cost (clean vehicles are
                    // untouched, dirty ones were just re-evaluated), so a
                    // clean winner's proposal is reproducible here.
                    let proposal = best_proposal.unwrap_or_else(|| {
                        vehicles[slot]
                            .evaluate(request, oracle)
                            .expect("winning evaluation must stay feasible on replay")
                    });
                    let cost = proposal.cost;
                    vehicles[slot].commit(proposal);
                    dirty.insert(vid);
                    self.stats.assigned += 1;
                    AssignmentOutcome::Assigned {
                        vehicle: vid,
                        cost,
                        candidates: candidate_counts[ri],
                    }
                }
                None => {
                    self.stats.rejected += 1;
                    AssignmentOutcome::Rejected {
                        candidates: candidate_counts[ri],
                    }
                }
            };
            outcomes.push(outcome);
        }
        self.stats.response_nanos += batch_timer.elapsed().as_nanos();
        outcomes
    }

    /// Greedy batch path: one sequential nearest-feasible pass per request
    /// (the shared [`evaluate_greedy`] routine), so the parallel dispatcher
    /// at [`DispatchEffort::Greedy`] is bit-identical to the sequential one.
    /// Greedy usually evaluates a single candidate per request, so there is
    /// no work worth fanning out.
    fn assign_batch_greedy(
        &mut self,
        requests: &[TripRequest],
        vehicles: &mut [Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &(dyn DistanceOracle + Sync),
    ) -> Vec<AssignmentOutcome> {
        let batch_timer = Instant::now();
        let mut scratch: Vec<u32> = Vec::new();
        let mut outcomes = Vec::with_capacity(requests.len());
        for request in requests {
            filter_candidates_into(
                &self.config,
                request,
                graph,
                index,
                vehicles.len(),
                &mut scratch,
            );
            let best = evaluate_greedy(
                &mut self.stats,
                request,
                &scratch,
                vehicles,
                graph,
                index,
                oracle,
            );
            self.stats.requests += 1;
            self.stats.candidates += scratch.len() as u64;
            let outcome = match best {
                Some((slot, proposal)) => {
                    let cost = proposal.cost;
                    let vehicle = vehicles[slot].id();
                    vehicles[slot].commit(proposal);
                    self.stats.assigned += 1;
                    AssignmentOutcome::Assigned {
                        vehicle,
                        cost,
                        candidates: scratch.len(),
                    }
                }
                None => {
                    self.stats.rejected += 1;
                    AssignmentOutcome::Rejected {
                        candidates: scratch.len(),
                    }
                }
            };
            outcomes.push(outcome);
        }
        self.stats.response_nanos += batch_timer.elapsed().as_nanos();
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Dispatcher;
    use crate::kinetic::KineticConfig;
    use crate::request::Constraints;
    use crate::vehicle::PlannerKind;
    use roadnet::{CachedOracle, GeneratorConfig, NetworkKind, ShardedOracle};
    use spatial::Position;

    fn grid_setup(positions: &[u32]) -> (roadnet::RoadNetwork, Vec<Vehicle>, GridIndex) {
        let graph = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 3,
            ..GeneratorConfig::default()
        }
        .generate();
        let mut vehicles = Vec::new();
        let mut index = GridIndex::new(1_000.0);
        for (i, &node) in positions.iter().enumerate() {
            let v = Vehicle::new(
                i as u32,
                node,
                4,
                PlannerKind::Kinetic(KineticConfig::basic()),
                0.0,
            );
            let p = graph.point(node);
            index.insert(i as u32, Position::new(p.x, p.y));
            vehicles.push(v);
        }
        (graph, vehicles, index)
    }

    fn requests() -> Vec<TripRequest> {
        vec![
            TripRequest::new(1, 36, 60, 0.0, Constraints::new(8_400.0, 0.3)),
            TripRequest::new(2, 35, 62, 0.0, Constraints::new(8_400.0, 0.3)),
            TripRequest::new(3, 10, 50, 0.0, Constraints::new(8_400.0, 0.3)),
        ]
    }

    /// Sequential and parallel dispatch must agree on everything
    /// observable, for every worker count.
    #[test]
    fn batch_matches_sequential_for_all_worker_counts() {
        let positions = [0u32, 35, 63, 20, 42];
        let reqs = requests();

        let (graph, mut seq_vehicles, mut seq_index) = grid_setup(&positions);
        let seq_oracle = CachedOracle::without_labels(&graph);
        let mut seq = Dispatcher::new(DispatcherConfig::default());
        let seq_outcomes: Vec<_> = reqs
            .iter()
            .map(|r| seq.assign(r, &mut seq_vehicles, &graph, &mut seq_index, &seq_oracle))
            .collect();

        // Threshold zero: force the threaded path even on tiny fleets.
        let config = DispatcherConfig {
            min_parallel_items: 0,
            ..DispatcherConfig::default()
        };
        for workers in [1usize, 2, 4, 8] {
            let (graph, mut vehicles, mut index) = grid_setup(&positions);
            let oracle = ShardedOracle::without_labels(&graph);
            let mut par = ParallelDispatcher::new(config, workers);
            let outcomes = par.assign_batch(&reqs, &mut vehicles, &graph, &mut index, &oracle);
            assert_eq!(outcomes, seq_outcomes, "workers = {workers}");
            assert_eq!(par.stats().requests, seq.stats().requests);
            assert_eq!(par.stats().assigned, seq.stats().assigned);
            assert_eq!(par.stats().rejected, seq.stats().rejected);
            assert_eq!(par.stats().candidates, seq.stats().candidates);
            let seq_counts: Vec<_> = seq
                .stats()
                .art_buckets
                .iter()
                .map(|(&k, &(c, _))| (k, c))
                .collect();
            let par_counts: Vec<_> = par
                .stats()
                .art_buckets
                .iter()
                .map(|(&k, &(c, _))| (k, c))
                .collect();
            assert_eq!(par_counts, seq_counts, "workers = {workers}");
            // Committed fleet state agrees too.
            for (a, b) in vehicles.iter().zip(seq_vehicles.iter()) {
                assert_eq!(a.active_trip_count(), b.active_trip_count());
                assert_eq!(a.route(), b.route());
            }
        }
    }

    /// Two same-tick requests contending for the same best vehicle: the
    /// second must see the first one's commit (speculation repair).
    #[test]
    fn same_vehicle_contention_is_repaired() {
        // Both requests start right next to vehicle 1 (node 35).
        let positions = [0u32, 35, 63];
        let reqs = vec![
            TripRequest::new(1, 36, 60, 0.0, Constraints::new(8_400.0, 0.3)),
            TripRequest::new(2, 36, 59, 0.0, Constraints::new(8_400.0, 0.3)),
        ];
        let (graph, mut seq_vehicles, mut seq_index) = grid_setup(&positions);
        let seq_oracle = CachedOracle::without_labels(&graph);
        let mut seq = Dispatcher::new(DispatcherConfig::default());
        let seq_outcomes: Vec<_> = reqs
            .iter()
            .map(|r| seq.assign(r, &mut seq_vehicles, &graph, &mut seq_index, &seq_oracle))
            .collect();

        let (graph, mut vehicles, mut index) = grid_setup(&positions);
        let oracle = ShardedOracle::without_labels(&graph);
        let mut par = ParallelDispatcher::new(
            DispatcherConfig {
                min_parallel_items: 0,
                ..DispatcherConfig::default()
            },
            4,
        );
        let outcomes = par.assign_batch(&reqs, &mut vehicles, &graph, &mut index, &oracle);
        assert_eq!(outcomes, seq_outcomes);
        // The first request's winner must carry both or the second must have
        // moved on — either way vehicle states agree with sequential.
        for (a, b) in vehicles.iter().zip(seq_vehicles.iter()) {
            assert_eq!(a.active_trip_count(), b.active_trip_count());
        }
    }

    #[test]
    fn single_assign_wraps_batch() {
        let positions = [0u32, 35, 63];
        let (graph, mut vehicles, mut index) = grid_setup(&positions);
        let oracle = ShardedOracle::without_labels(&graph);
        let mut par = ParallelDispatcher::new(DispatcherConfig::default(), 2);
        let req = TripRequest::new(1, 36, 60, 0.0, Constraints::new(8_400.0, 0.3));
        let out = par.assign(&req, &mut vehicles, &graph, &mut index, &oracle);
        match out {
            AssignmentOutcome::Assigned { vehicle, .. } => assert_eq!(vehicle, 1),
            other => panic!("expected assignment, got {other:?}"),
        }
        assert_eq!(par.stats().requests, 1);
        assert_eq!(par.workers(), 2);
        par.reset_stats();
        assert_eq!(par.stats().requests, 0);
    }

    #[test]
    fn degraded_efforts_match_sequential_for_all_worker_counts() {
        let positions = [0u32, 35, 63, 20, 42];
        let reqs = requests();
        for effort in [
            crate::dispatch::DispatchEffort::SlackPruned,
            crate::dispatch::DispatchEffort::Greedy,
        ] {
            let (graph, mut seq_vehicles, mut seq_index) = grid_setup(&positions);
            let seq_oracle = CachedOracle::without_labels(&graph);
            let mut seq = Dispatcher::new(DispatcherConfig::default());
            seq.set_effort(effort);
            let seq_outcomes: Vec<_> = reqs
                .iter()
                .map(|r| seq.assign(r, &mut seq_vehicles, &graph, &mut seq_index, &seq_oracle))
                .collect();
            // Greedy commits after each request, so the sequential reference
            // is the per-request loop — which is exactly what the batch path
            // must reproduce.
            let config = DispatcherConfig {
                min_parallel_items: 0,
                ..DispatcherConfig::default()
            };
            for workers in [1usize, 4] {
                let (graph, mut vehicles, mut index) = grid_setup(&positions);
                let oracle = ShardedOracle::without_labels(&graph);
                let mut par = ParallelDispatcher::new(config, workers);
                par.set_effort(effort);
                assert_eq!(par.effort(), effort);
                let outcomes = par.assign_batch(&reqs, &mut vehicles, &graph, &mut index, &oracle);
                assert_eq!(outcomes, seq_outcomes, "{effort:?} workers={workers}");
                for (a, b) in vehicles.iter().zip(seq_vehicles.iter()) {
                    assert_eq!(a.active_trip_count(), b.active_trip_count());
                    assert_eq!(a.route(), b.route());
                }
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_fleet() {
        let positions: [u32; 0] = [];
        let (graph, mut vehicles, mut index) = grid_setup(&positions);
        let oracle = ShardedOracle::without_labels(&graph);
        let mut par = ParallelDispatcher::new(DispatcherConfig::default(), 4);
        assert!(par
            .assign_batch(&[], &mut vehicles, &graph, &mut index, &oracle)
            .is_empty());
        let req = TripRequest::new(1, 36, 60, 0.0, Constraints::new(8_400.0, 0.3));
        let out = par.assign(&req, &mut vehicles, &graph, &mut index, &oracle);
        assert_eq!(out, AssignmentOutcome::Rejected { candidates: 0 });
    }
}

//! The per-vehicle scheduling problem and schedule validation.
//!
//! When a new request arrives, the only part of a vehicle's trip schedule
//! that can still change is the *unfinished* part: the drop-offs of
//! passengers already on board and the pickups + drop-offs of accepted
//! passengers not yet picked up, plus the new request (the paper's
//! "augmented valid trip schedule"). [`SchedulingProblem`] captures exactly
//! that state, expressed against an absolute clock in meter-equivalents so
//! that deadlines never need to be rewritten as the vehicle moves.
//!
//! Every solver in [`crate::algorithms`] and the kinetic tree in
//! [`crate::kinetic`] consumes this type, and
//! [`SchedulingProblem::validate`] is the shared correctness oracle used in
//! tests to prove they agree.

use std::collections::HashMap;

use roadnet::{DistanceOracle, NodeId};

use crate::types::{Cost, Stop, StopKind, TripId};

/// A passenger already on board: only the drop-off remains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnboardTrip {
    /// Trip id.
    pub trip: TripId,
    /// Drop-off vertex.
    pub dropoff: NodeId,
    /// Absolute clock (meter-equivalents) by which the drop-off must happen
    /// to keep the trip within `(1 + ε)` of its direct distance.
    pub dropoff_deadline: Cost,
}

/// An accepted passenger not yet picked up: pickup and drop-off remain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitingTrip {
    /// Trip id.
    pub trip: TripId,
    /// Pickup vertex (the request's source).
    pub pickup: NodeId,
    /// Drop-off vertex (the request's destination).
    pub dropoff: NodeId,
    /// Absolute clock by which the pickup must happen (submission time plus
    /// the waiting-time budget `w`).
    pub pickup_deadline: Cost,
    /// Maximum on-vehicle distance from pickup to drop-off,
    /// `(1 + ε) · d(pickup, dropoff)`.
    pub max_ride: Cost,
}

/// The augmented scheduling problem for one vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulingProblem {
    /// Vehicle's current vertex.
    pub start: NodeId,
    /// Current absolute clock in meter-equivalents.
    pub now: Cost,
    /// Maximum number of passengers on board simultaneously. `usize::MAX`
    /// models the paper's "unlimited capacity" experiments.
    pub capacity: usize,
    /// Passengers currently on board.
    pub onboard: Vec<OnboardTrip>,
    /// Accepted passengers not yet picked up (including, by convention, the
    /// new request being evaluated).
    pub waiting: Vec<WaitingTrip>,
}

/// An ordering of the remaining stops.
pub type Schedule = Vec<Stop>;

/// Reasons a proposed schedule is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A required stop is missing from the schedule.
    MissingStop(Stop),
    /// A stop appears more than once.
    DuplicateStop(Stop),
    /// A stop refers to a trip the problem does not contain (or a pickup for
    /// a passenger who is already on board).
    UnknownStop(Stop),
    /// A drop-off appears before its pickup.
    DropoffBeforePickup(TripId),
    /// A pickup would happen after the trip's waiting-time deadline.
    WaitingTimeViolated {
        /// The violating trip.
        trip: TripId,
        /// Absolute arrival clock at the pickup.
        arrival: Cost,
        /// The trip's pickup deadline.
        deadline: Cost,
    },
    /// The on-vehicle distance would exceed the trip's service constraint.
    ServiceConstraintViolated {
        /// The violating trip.
        trip: TripId,
        /// On-vehicle distance the schedule would impose.
        ride: Cost,
        /// Maximum allowed on-vehicle distance.
        limit: Cost,
    },
    /// More passengers would be on board than the vehicle can carry.
    CapacityExceeded {
        /// Number of passengers after the violating pickup.
        onboard: usize,
        /// Vehicle capacity.
        capacity: usize,
    },
    /// Two consecutive stops are not connected in the road network.
    Unreachable(NodeId, NodeId),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::MissingStop(s) => write!(f, "schedule is missing stop {s}"),
            ValidationError::DuplicateStop(s) => write!(f, "schedule repeats stop {s}"),
            ValidationError::UnknownStop(s) => write!(f, "schedule contains unknown stop {s}"),
            ValidationError::DropoffBeforePickup(t) => {
                write!(f, "trip {t} is dropped off before being picked up")
            }
            ValidationError::WaitingTimeViolated {
                trip,
                arrival,
                deadline,
            } => write!(
                f,
                "trip {trip} picked up at {arrival:.0} after deadline {deadline:.0}"
            ),
            ValidationError::ServiceConstraintViolated { trip, ride, limit } => write!(
                f,
                "trip {trip} rides {ride:.0} m exceeding limit {limit:.0} m"
            ),
            ValidationError::CapacityExceeded { onboard, capacity } => {
                write!(
                    f,
                    "{onboard} passengers on board exceeds capacity {capacity}"
                )
            }
            ValidationError::Unreachable(a, b) => write!(f, "no path between {a} and {b}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl SchedulingProblem {
    /// Creates an empty problem for a vehicle at `start` with `capacity`
    /// seats at clock `now`.
    pub fn new(start: NodeId, now: Cost, capacity: usize) -> Self {
        SchedulingProblem {
            start,
            now,
            capacity,
            onboard: Vec::new(),
            waiting: Vec::new(),
        }
    }

    /// All stops that a complete schedule must contain.
    pub fn required_stops(&self) -> Vec<Stop> {
        let mut stops = Vec::with_capacity(self.onboard.len() + 2 * self.waiting.len());
        for t in &self.onboard {
            stops.push(Stop::dropoff(t.trip, t.dropoff));
        }
        for t in &self.waiting {
            stops.push(Stop::pickup(t.trip, t.pickup));
            stops.push(Stop::dropoff(t.trip, t.dropoff));
        }
        stops
    }

    /// Number of stops a complete schedule contains.
    pub fn num_stops(&self) -> usize {
        self.onboard.len() + 2 * self.waiting.len()
    }

    /// Number of distinct trips (on board + waiting).
    pub fn num_trips(&self) -> usize {
        self.onboard.len() + self.waiting.len()
    }

    /// Looks up a waiting trip by id.
    pub fn waiting_trip(&self, trip: TripId) -> Option<&WaitingTrip> {
        self.waiting.iter().find(|t| t.trip == trip)
    }

    /// Looks up an on-board trip by id.
    pub fn onboard_trip(&self, trip: TripId) -> Option<&OnboardTrip> {
        self.onboard.iter().find(|t| t.trip == trip)
    }

    /// Validates a complete schedule and returns its total cost (distance
    /// from the vehicle's current location through every stop in order).
    pub fn validate(
        &self,
        schedule: &[Stop],
        oracle: &dyn DistanceOracle,
    ) -> Result<Cost, ValidationError> {
        // Completeness: every required stop exactly once, nothing else.
        // Walked in schedule order so the reported offender is always the
        // first one in the schedule, not whichever a hash walk yields.
        let required = self.required_stops();
        let mut seen: HashMap<Stop, usize> = HashMap::with_capacity(schedule.len());
        for &stop in schedule {
            let count = seen.entry(stop).or_insert(0);
            *count += 1;
            if *count > 1 {
                return Err(ValidationError::DuplicateStop(stop));
            }
            if !required.contains(&stop) {
                return Err(ValidationError::UnknownStop(stop));
            }
        }
        for &stop in &required {
            if !seen.contains_key(&stop) {
                return Err(ValidationError::MissingStop(stop));
            }
        }
        // Walk the schedule with the shared step validator.
        let mut walker = ScheduleWalker::new(self);
        for &stop in schedule {
            walker.advance(stop, oracle)?;
        }
        Ok(walker.cum_dist)
    }

    /// Convenience: true when `schedule` is a complete valid schedule.
    pub fn is_valid(&self, schedule: &[Stop], oracle: &dyn DistanceOracle) -> bool {
        self.validate(schedule, oracle).is_ok()
    }
}

/// Incremental validity checking while building a schedule stop by stop.
///
/// All solvers share this walker so that the feasibility rules are written
/// exactly once. Cloning the walker is cheap (small vectors), which is what
/// the recursive solvers rely on.
#[derive(Debug, Clone)]
pub struct ScheduleWalker<'p> {
    problem: &'p SchedulingProblem,
    /// Vertex of the last scheduled stop (or the start).
    pub location: NodeId,
    /// Distance travelled from the start through the scheduled prefix.
    pub cum_dist: Cost,
    /// Passengers currently on board in the scheduled prefix.
    pub onboard_count: usize,
    /// For waiting trips picked up within the prefix: distance at pickup.
    picked_at: Vec<(TripId, Cost)>,
    /// Trips already completed (dropped off) within the prefix.
    dropped: Vec<TripId>,
}

impl<'p> ScheduleWalker<'p> {
    /// Starts a walk at the vehicle's current location.
    pub fn new(problem: &'p SchedulingProblem) -> Self {
        ScheduleWalker {
            problem,
            location: problem.start,
            cum_dist: 0.0,
            onboard_count: problem.onboard.len(),
            picked_at: Vec::new(),
            dropped: Vec::new(),
        }
    }

    /// The problem being walked.
    pub fn problem(&self) -> &SchedulingProblem {
        self.problem
    }

    /// Absolute clock at the current position of the walk.
    pub fn clock(&self) -> Cost {
        self.problem.now + self.cum_dist
    }

    /// Whether `trip` has been picked up in the walked prefix.
    pub fn picked_up(&self, trip: TripId) -> bool {
        self.picked_at.iter().any(|&(t, _)| t == trip)
    }

    /// Number of stops appended so far (each pickup is recorded in
    /// `picked_at`, each drop-off in `dropped`).
    pub fn stops_taken(&self) -> usize {
        self.picked_at.len() + self.dropped.len()
    }

    /// Appends `stop` to the walked prefix, checking every constraint that
    /// becomes decidable at this stop. The distance to the stop is obtained
    /// from `oracle`.
    pub fn advance(
        &mut self,
        stop: Stop,
        oracle: &dyn DistanceOracle,
    ) -> Result<(), ValidationError> {
        let leg = oracle.dist(self.location, stop.node);
        if !leg.is_finite() {
            return Err(ValidationError::Unreachable(self.location, stop.node));
        }
        self.advance_with_distance(stop, leg)
    }

    /// Appends `stop` when the leg distance from the current location is
    /// already known (the kinetic tree caches leg distances in its nodes).
    pub fn advance_with_distance(&mut self, stop: Stop, leg: Cost) -> Result<(), ValidationError> {
        let new_dist = self.cum_dist + leg;
        let arrival_clock = self.problem.now + new_dist;
        match stop.kind {
            StopKind::Pickup => {
                let trip = self
                    .problem
                    .waiting_trip(stop.trip)
                    .ok_or(ValidationError::UnknownStop(stop))?;
                if self.picked_up(stop.trip) || self.dropped.contains(&stop.trip) {
                    return Err(ValidationError::DuplicateStop(stop));
                }
                if arrival_clock > trip.pickup_deadline + 1e-6 {
                    return Err(ValidationError::WaitingTimeViolated {
                        trip: stop.trip,
                        arrival: arrival_clock,
                        deadline: trip.pickup_deadline,
                    });
                }
                if self.onboard_count + 1 > self.problem.capacity {
                    return Err(ValidationError::CapacityExceeded {
                        onboard: self.onboard_count + 1,
                        capacity: self.problem.capacity,
                    });
                }
                self.onboard_count += 1;
                self.picked_at.push((stop.trip, new_dist));
            }
            StopKind::Dropoff => {
                if self.dropped.contains(&stop.trip) {
                    return Err(ValidationError::DuplicateStop(stop));
                }
                if let Some(t) = self.problem.onboard_trip(stop.trip) {
                    if arrival_clock > t.dropoff_deadline + 1e-6 {
                        return Err(ValidationError::ServiceConstraintViolated {
                            trip: stop.trip,
                            ride: arrival_clock - self.problem.now,
                            limit: t.dropoff_deadline - self.problem.now,
                        });
                    }
                    self.onboard_count = self.onboard_count.saturating_sub(1);
                    self.dropped.push(stop.trip);
                } else if let Some(t) = self.problem.waiting_trip(stop.trip) {
                    let pickup_dist = self
                        .picked_at
                        .iter()
                        .find(|&&(id, _)| id == stop.trip)
                        .map(|&(_, d)| d)
                        .ok_or(ValidationError::DropoffBeforePickup(stop.trip))?;
                    let ride = new_dist - pickup_dist;
                    if ride > t.max_ride + 1e-6 {
                        return Err(ValidationError::ServiceConstraintViolated {
                            trip: stop.trip,
                            ride,
                            limit: t.max_ride,
                        });
                    }
                    self.onboard_count = self.onboard_count.saturating_sub(1);
                    self.dropped.push(stop.trip);
                } else {
                    return Err(ValidationError::UnknownStop(stop));
                }
            }
        }
        self.location = stop.node;
        self.cum_dist = new_dist;
        Ok(())
    }

    /// Slack of a single stop if it were appended at distance `extra` beyond
    /// the current prefix: how much additional detour the stop could absorb
    /// before its own constraint breaks. Used by the branch-and-bound lower
    /// bound tie-breaking and by the kinetic tree's slack (Δ) values.
    pub fn stop_slack(&self, stop: Stop, leg: Cost) -> Option<Cost> {
        let new_dist = self.cum_dist + leg;
        let arrival_clock = self.problem.now + new_dist;
        match stop.kind {
            StopKind::Pickup => {
                let trip = self.problem.waiting_trip(stop.trip)?;
                Some(trip.pickup_deadline - arrival_clock)
            }
            StopKind::Dropoff => {
                if let Some(t) = self.problem.onboard_trip(stop.trip) {
                    Some(t.dropoff_deadline - arrival_clock)
                } else if let Some(t) = self.problem.waiting_trip(stop.trip) {
                    let pickup_dist = self
                        .picked_at
                        .iter()
                        .find(|&&(id, _)| id == stop.trip)
                        .map(|&(_, d)| d)?;
                    Some(t.max_ride - (new_dist - pickup_dist))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{GraphBuilder, MatrixOracle, Point};

    /// A 1-D "line city": nodes 0..6 spaced 100 m apart.
    pub(crate) fn line_oracle() -> MatrixOracle {
        let mut b = GraphBuilder::new();
        for i in 0..7 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 0..6 {
            b.add_edge(i, i + 1, 100.0);
        }
        MatrixOracle::new(&b.build())
    }

    fn simple_problem() -> SchedulingProblem {
        // Vehicle at node 0, one waiting trip 1: pickup node 2, dropoff node 5.
        let mut p = SchedulingProblem::new(0, 0.0, 4);
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: 2,
            dropoff: 5,
            pickup_deadline: 500.0,
            max_ride: 360.0, // direct 300 * 1.2
        });
        p
    }

    #[test]
    fn valid_single_trip_schedule() {
        let oracle = line_oracle();
        let p = simple_problem();
        let schedule = vec![Stop::pickup(1, 2), Stop::dropoff(1, 5)];
        let cost = p.validate(&schedule, &oracle).unwrap();
        assert_eq!(cost, 500.0);
        assert!(p.is_valid(&schedule, &oracle));
    }

    #[test]
    fn missing_and_duplicate_stops_rejected() {
        let oracle = line_oracle();
        let p = simple_problem();
        assert!(matches!(
            p.validate(&[Stop::pickup(1, 2)], &oracle),
            Err(ValidationError::MissingStop(_))
        ));
        assert!(matches!(
            p.validate(
                &[Stop::pickup(1, 2), Stop::pickup(1, 2), Stop::dropoff(1, 5)],
                &oracle
            ),
            Err(ValidationError::DuplicateStop(_))
        ));
        assert!(matches!(
            p.validate(&[Stop::pickup(9, 2), Stop::dropoff(1, 5)], &oracle),
            Err(ValidationError::UnknownStop(_))
        ));
    }

    #[test]
    fn dropoff_before_pickup_rejected() {
        let oracle = line_oracle();
        let p = simple_problem();
        let schedule = vec![Stop::dropoff(1, 5), Stop::pickup(1, 2)];
        assert!(matches!(
            p.validate(&schedule, &oracle),
            Err(ValidationError::DropoffBeforePickup(1))
        ));
    }

    #[test]
    fn waiting_deadline_enforced() {
        let oracle = line_oracle();
        let mut p = simple_problem();
        p.waiting[0].pickup_deadline = 150.0; // pickup is 200 m away
        let schedule = vec![Stop::pickup(1, 2), Stop::dropoff(1, 5)];
        assert!(matches!(
            p.validate(&schedule, &oracle),
            Err(ValidationError::WaitingTimeViolated { trip: 1, .. })
        ));
    }

    #[test]
    fn service_constraint_enforced_for_waiting_trip() {
        let oracle = line_oracle();
        let mut p = simple_problem();
        // Add a second waiting trip whose detour forces trip 1 over budget.
        p.waiting.push(WaitingTrip {
            trip: 2,
            pickup: 0,
            dropoff: 6,
            pickup_deadline: 10_000.0,
            max_ride: 10_000.0,
        });
        // Pick up 1 (at 2), detour back to 0 for 2, then drop 1 at 5:
        // ride for 1 = (2->0->5) = 200 + 500 = 700 > 360.
        let schedule = vec![
            Stop::pickup(1, 2),
            Stop::pickup(2, 0),
            Stop::dropoff(1, 5),
            Stop::dropoff(2, 6),
        ];
        assert!(matches!(
            p.validate(&schedule, &oracle),
            Err(ValidationError::ServiceConstraintViolated { trip: 1, .. })
        ));
    }

    #[test]
    fn onboard_deadline_enforced() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 1_000.0, 4);
        p.onboard.push(OnboardTrip {
            trip: 3,
            dropoff: 4,
            dropoff_deadline: 1_350.0, // 400 m away, only 350 allowed
        });
        let schedule = vec![Stop::dropoff(3, 4)];
        assert!(matches!(
            p.validate(&schedule, &oracle),
            Err(ValidationError::ServiceConstraintViolated { trip: 3, .. })
        ));
        // Loosening the deadline makes it valid.
        p.onboard[0].dropoff_deadline = 1_400.0;
        assert_eq!(p.validate(&schedule, &oracle).unwrap(), 400.0);
    }

    #[test]
    fn capacity_enforced() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 1);
        for (id, pickup, dropoff) in [(1u64, 1u32, 5u32), (2, 2, 6)] {
            p.waiting.push(WaitingTrip {
                trip: id,
                pickup,
                dropoff,
                pickup_deadline: 10_000.0,
                max_ride: 10_000.0,
            });
        }
        // Both on board at once: violates capacity 1.
        let overlapping = vec![
            Stop::pickup(1, 1),
            Stop::pickup(2, 2),
            Stop::dropoff(1, 5),
            Stop::dropoff(2, 6),
        ];
        assert!(matches!(
            p.validate(&overlapping, &oracle),
            Err(ValidationError::CapacityExceeded { .. })
        ));
        // Sequential service is fine.
        let sequential = vec![
            Stop::pickup(1, 1),
            Stop::dropoff(1, 5),
            Stop::pickup(2, 2),
            Stop::dropoff(2, 6),
        ];
        assert!(p.is_valid(&sequential, &oracle));
    }

    #[test]
    fn onboard_passengers_count_against_capacity() {
        let oracle = line_oracle();
        let mut p = SchedulingProblem::new(0, 0.0, 1);
        p.onboard.push(OnboardTrip {
            trip: 9,
            dropoff: 3,
            dropoff_deadline: 10_000.0,
        });
        p.waiting.push(WaitingTrip {
            trip: 1,
            pickup: 1,
            dropoff: 5,
            pickup_deadline: 10_000.0,
            max_ride: 10_000.0,
        });
        // Picking up trip 1 before dropping trip 9 exceeds capacity 1.
        let bad = vec![Stop::pickup(1, 1), Stop::dropoff(9, 3), Stop::dropoff(1, 5)];
        assert!(matches!(
            p.validate(&bad, &oracle),
            Err(ValidationError::CapacityExceeded { .. })
        ));
        let good = vec![Stop::dropoff(9, 3), Stop::pickup(1, 1), Stop::dropoff(1, 5)];
        assert!(p.is_valid(&good, &oracle));
    }

    #[test]
    fn walker_exposes_clock_and_slack() {
        let oracle = line_oracle();
        let p = simple_problem();
        let mut w = ScheduleWalker::new(&p);
        assert_eq!(w.clock(), 0.0);
        let slack = w.stop_slack(Stop::pickup(1, 2), 200.0).unwrap();
        assert_eq!(slack, 300.0); // deadline 500 - arrival 200
        w.advance(Stop::pickup(1, 2), &oracle).unwrap();
        assert_eq!(w.clock(), 200.0);
        assert!(w.picked_up(1));
        let slack = w.stop_slack(Stop::dropoff(1, 5), 300.0).unwrap();
        assert!((slack - 60.0).abs() < 1e-9); // max_ride 360 - ride 300
    }

    #[test]
    fn required_stops_cover_onboard_and_waiting() {
        let mut p = simple_problem();
        p.onboard.push(OnboardTrip {
            trip: 7,
            dropoff: 6,
            dropoff_deadline: 1_000.0,
        });
        let stops = p.required_stops();
        assert_eq!(stops.len(), 3);
        assert_eq!(p.num_stops(), 3);
        assert_eq!(p.num_trips(), 2);
        assert!(stops.contains(&Stop::dropoff(7, 6)));
        assert!(stops.contains(&Stop::pickup(1, 2)));
        assert!(p.waiting_trip(1).is_some());
        assert!(p.onboard_trip(7).is_some());
        assert!(p.waiting_trip(99).is_none());
    }
}

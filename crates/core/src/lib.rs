//! Ridesharing scheduling core.
//!
//! This crate implements the algorithmic contribution of *"Large Scale
//! Real-time Ridesharing with Service Guarantee on Road Networks"* (Huang,
//! Jin, Bastani, Wang — VLDB 2014): matching incoming trip requests to
//! servers (taxis) such that every accepted request keeps its waiting-time
//! and service (detour) guarantees, while the server's total trip cost is
//! minimised.
//!
//! The crate is organised around a single per-vehicle combinatorial problem,
//! [`SchedulingProblem`]: given the vehicle's current location, its on-board
//! passengers (each with a drop-off deadline), its accepted-but-not-yet-
//! picked-up passengers (each with a pickup deadline and a maximum ride
//! distance) and a capacity, find the minimum-cost ordering of the remaining
//! stops that satisfies every constraint. Four solvers are provided:
//!
//! * [`algorithms::BruteForceSolver`] — exhaustive permutation enumeration
//!   with early pruning (the paper's baseline);
//! * [`algorithms::BranchBoundSolver`] — best-first branch and bound with
//!   the paper's minimum-incident-edge lower bound (Sec. II);
//! * [`algorithms::MipScheduleSolver`] — the mixed-integer formulation of Sec. III-A
//!   solved by the workspace's own simplex + branch-and-bound solver;
//! * [`kinetic::KineticTree`] — the paper's contribution: a prefix tree of
//!   all valid schedules that is maintained incrementally as the vehicle
//!   moves and as requests are inserted, with optional slack-time filtering
//!   (Theorem 1) and hotspot clustering (Sec. V).
//!
//! [`Vehicle`] packages a server's state with a pluggable planner and
//! [`dispatch::Dispatcher`] runs the fleet-level matching loop (grid-index
//! candidate filtering, per-vehicle evaluation, minimum-cost assignment).
//! [`parallel::ParallelDispatcher`] is its multi-threaded counterpart:
//! candidate evaluations fan out across a scoped work pool and reduce with
//! lowest-vehicle-id tie-breaking, producing bit-identical assignments.
//!
//! All quantities are measured in meters. With the paper's constant speed of
//! 14 m/s, meters and seconds are interchangeable; the simulation crate
//! performs that conversion at its boundary.

pub mod algorithms;
pub mod codec;
pub mod dispatch;
pub mod fault;
pub mod kinetic;
pub mod parallel;
pub mod problem;
pub mod request;
pub mod stats;
pub mod types;
pub mod vehicle;

pub use algorithms::{
    BranchBoundSolver, BruteForceSolver, InsertionSolver, MipScheduleSolver, ScheduleSolver,
    SolverKind, SolverOutcome,
};
pub use dispatch::{
    AssignmentOutcome, DispatchEffort, DispatchStats, Dispatcher, DispatcherConfig,
};
pub use fault::FaultPlan;
pub use kinetic::{KineticConfig, KineticTree, TreeInsertError, TreeStats};
pub use parallel::ParallelDispatcher;
pub use problem::{OnboardTrip, Schedule, SchedulingProblem, ValidationError, WaitingTrip};
pub use request::{Constraints, TripRequest};
pub use stats::{LatencyHistogram, LatencySummary};
pub use types::{Cost, Stop, StopKind, TripId};
pub use vehicle::{PlannerKind, Proposal, Vehicle, VehicleStatus};

//! The kinetic tree: the paper's incremental matcher.
//!
//! A kinetic tree maintains, for one vehicle, *every* valid ordering of its
//! unfinished stops as a prefix tree rooted at the vehicle's current
//! location. Because only valid schedules can be extended into valid
//! augmented schedules (the key observation of the paper's Contributions
//! section), handling a new request never requires re-deriving the old
//! schedules — the tree is extended in place, reusing all previous
//! computation, and pruned lazily as the vehicle moves.
//!
//! Three variants are provided through [`KineticConfig`]:
//!
//! * **basic** — every insertion re-validates candidate branches with the
//!   shared [`crate::problem::ScheduleWalker`];
//! * **slack time** — every node carries its slack δ and the aggregated
//!   min–max slack Δ of Theorem 1, letting whole subtrees be rejected with a
//!   single comparison before any walking happens;
//! * **hotspot clustering** — pickups/drop-offs within θ of an existing tree
//!   node are pinned next to that node instead of being tried at every
//!   position, bounding the combinatorial blow-up at dense locations
//!   (Sec. V) at the price of the `2(m+1)θ` cost bound of Theorem 2.

mod tree;

pub use tree::{KineticConfig, KineticTree, TreeInsertError, TreeStats};

//! Kinetic tree data structure and operations.

use roadnet::io::bin::{self, Reader};
use roadnet::{DistanceOracle, NodeId, RoadNetError};

use crate::codec;
use crate::problem::{OnboardTrip, Schedule, ScheduleWalker, SchedulingProblem, WaitingTrip};
use crate::types::{Cost, Stop, StopKind, TripId};

/// Behavioural switches of the kinetic tree (paper Sec. IV–V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KineticConfig {
    /// Enable min–max slack-time filtering (Theorem 1): prune whole branches
    /// whose aggregated slack Δ cannot absorb the detour of an insertion.
    pub use_slack: bool,
    /// Enable hotspot clustering with the given θ (meters): a new stop
    /// within θ of an existing tree node (and of every stop already merged
    /// into that node's hotspot) is pinned immediately before it instead of
    /// being tried at every feasible position.
    pub hotspot_theta: Option<f64>,
    /// Maximum number of tree nodes. Insertions that would exceed the budget
    /// fail with [`TreeInsertError::Overflow`]; this models the paper's
    /// 3 GB memory cap that makes the basic/slack variants break off at high
    /// capacities (Fig. 9(c)).
    pub max_nodes: usize,
}

impl Default for KineticConfig {
    fn default() -> Self {
        KineticConfig {
            use_slack: false,
            hotspot_theta: None,
            max_nodes: 2_000_000,
        }
    }
}

impl KineticConfig {
    /// The basic tree algorithm.
    pub fn basic() -> Self {
        KineticConfig::default()
    }

    /// The slack-time tree algorithm.
    pub fn slack() -> Self {
        KineticConfig {
            use_slack: true,
            ..KineticConfig::default()
        }
    }

    /// The hotspot-clustering tree algorithm (which also uses slack time, as
    /// in the paper's evaluation).
    pub fn hotspot(theta: f64) -> Self {
        KineticConfig {
            use_slack: true,
            hotspot_theta: Some(theta),
            ..KineticConfig::default()
        }
    }

    /// Human-readable variant name used by experiment reports.
    pub fn variant_name(&self) -> &'static str {
        match (self.hotspot_theta.is_some(), self.use_slack) {
            (true, _) => "kinetic-hotspot",
            (false, true) => "kinetic-slack",
            (false, false) => "kinetic-basic",
        }
    }
}

/// Why an insertion attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeInsertError {
    /// No valid augmented schedule exists for this vehicle and request.
    Infeasible,
    /// The node budget ([`KineticConfig::max_nodes`]) was exceeded while
    /// materialising the augmented tree.
    Overflow,
}

impl std::fmt::Display for TreeInsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeInsertError::Infeasible => write!(f, "no valid augmented schedule exists"),
            TreeInsertError::Overflow => write!(f, "kinetic tree node budget exceeded"),
        }
    }
}

impl std::error::Error for TreeInsertError {}

/// Size and shape statistics of a kinetic tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of tree nodes (excluding the implicit root).
    pub nodes: usize,
    /// Number of leaves = number of distinct valid schedules materialised.
    pub leaves: usize,
    /// Depth of the tree = number of remaining stops.
    pub depth: usize,
}

/// One node of the kinetic tree: a stop plus the distance from its parent.
#[derive(Debug, Clone)]
struct TreeNode {
    stop: Stop,
    /// Shortest-path distance from the parent node's location (or from the
    /// root location for depth-1 nodes).
    leg: Cost,
    /// Δ over root-referenced constraints: the bottleneck slack of the most
    /// lenient route through this subtree, restricted to constraints that a
    /// detour inserted above this node always affects (pickup deadlines and
    /// on-board drop-off deadlines). Used for sound subtree pruning.
    slack_root: Cost,
    /// Road vertices forming this node's hotspot group (itself plus any
    /// stops that were pinned onto it by hotspot clustering).
    group: Vec<NodeId>,
    children: Vec<TreeNode>,
}

impl TreeNode {
    fn count(&self) -> usize {
        1 + self.children.iter().map(TreeNode::count).sum::<usize>()
    }

    fn leaves(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(TreeNode::leaves).sum()
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(TreeNode::depth).max().unwrap_or(0)
    }

    /// Minimum remaining distance from this node to any leaf of its
    /// subtree, without materialising the stop sequence (the dispatcher's
    /// candidate screen only needs the cost).
    fn best_completion_cost(&self) -> Cost {
        if self.children.is_empty() {
            return 0.0;
        }
        self.children
            .iter()
            .map(|c| c.leg + c.best_completion_cost())
            .fold(Cost::INFINITY, Cost::min)
    }

    /// Minimum remaining distance from this node to any leaf of its subtree,
    /// plus the stop sequence achieving it.
    fn best_completion(&self) -> (Cost, Vec<Stop>) {
        if self.children.is_empty() {
            return (0.0, Vec::new());
        }
        let mut best_cost = Cost::INFINITY;
        let mut best_path = Vec::new();
        for child in &self.children {
            let (c, mut path) = child.best_completion();
            let total = child.leg + c;
            if total < best_cost {
                best_cost = total;
                path.insert(0, child.stop);
                best_path = path;
            }
        }
        (best_cost, best_path)
    }
}

/// The kinetic tree of one vehicle.
#[derive(Debug, Clone)]
pub struct KineticTree {
    config: KineticConfig,
    /// The scheduling problem this tree materialises: `start`/`now` track
    /// the root, `onboard`/`waiting` the active trips.
    problem: SchedulingProblem,
    children: Vec<TreeNode>,
    node_count: usize,
}

impl KineticTree {
    /// Creates an empty tree for a vehicle at `start` with `capacity` seats
    /// at absolute clock `now`.
    pub fn new(start: NodeId, now: Cost, capacity: usize, config: KineticConfig) -> Self {
        KineticTree {
            config,
            problem: SchedulingProblem::new(start, now, capacity),
            children: Vec::new(),
            node_count: 0,
        }
    }

    /// The scheduling problem (root location, clock, active trips) the tree
    /// currently materialises.
    pub fn problem(&self) -> &SchedulingProblem {
        &self.problem
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &KineticConfig {
        &self.config
    }

    /// Number of active trips (on board + waiting).
    pub fn active_trips(&self) -> usize {
        self.problem.num_trips()
    }

    /// Tree size/shape statistics.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            nodes: self.node_count,
            leaves: self.children.iter().map(TreeNode::leaves).sum(),
            depth: self.children.iter().map(TreeNode::depth).max().unwrap_or(0),
        }
    }

    /// Re-roots the tree at the vehicle's current vertex and clock.
    ///
    /// Called when the vehicle has moved along the road network without
    /// reaching its next scheduled stop (for example because a new request
    /// is being evaluated mid-leg). Only the depth-1 legs change; deeper
    /// legs and the stored slack values stay valid (moving the vehicle can
    /// only shrink true slacks, so pruning on the stored values remains
    /// sound).
    pub fn reroot(&mut self, node: NodeId, now: Cost, oracle: &dyn DistanceOracle) {
        self.problem.start = node;
        self.problem.now = now;
        for child in &mut self.children {
            child.leg = oracle.dist(node, child.stop.node);
        }
    }

    /// Attempts to insert a new trip, returning the augmented tree and the
    /// cost of its best route. The current tree is left untouched (the
    /// dispatcher evaluates many vehicles and only the winner adopts its
    /// augmented tree).
    pub fn try_insert(
        &self,
        trip: WaitingTrip,
        oracle: &dyn DistanceOracle,
    ) -> Result<(KineticTree, Cost), TreeInsertError> {
        let mut new_problem = self.problem.clone();
        new_problem.waiting.push(trip);
        let to_insert = [
            Stop::pickup(trip.trip, trip.pickup),
            Stop::dropoff(trip.trip, trip.dropoff),
        ];
        let mut budget = self.config.max_nodes as i64;
        let walker = ScheduleWalker::new(&new_problem);
        let children = self.extend(
            &self.children,
            &walker,
            0.0,
            false,
            &to_insert,
            &mut budget,
            oracle,
        )?;
        if children.is_empty() {
            return Err(TreeInsertError::Infeasible);
        }
        let node_count = children.iter().map(TreeNode::count).sum();
        let tree = KineticTree {
            config: self.config,
            problem: new_problem,
            children,
            node_count,
        };
        let cost = tree
            .best_route()
            .map(|(c, _)| c)
            .ok_or(TreeInsertError::Infeasible)?;
        Ok((tree, cost))
    }

    /// The cheapest complete schedule materialised by the tree, as
    /// `(total distance, stop sequence)`. `None` only when the tree should
    /// contain stops but has none (which cannot happen through the public
    /// API); an empty problem yields `Some((0.0, []))`.
    pub fn best_route(&self) -> Option<(Cost, Schedule)> {
        if self.problem.num_stops() == 0 {
            return Some((0.0, Vec::new()));
        }
        let mut best_cost = Cost::INFINITY;
        let mut best_path = Vec::new();
        for child in &self.children {
            let (c, mut path) = child.best_completion();
            let total = child.leg + c;
            if total < best_cost {
                best_cost = total;
                path.insert(0, child.stop);
                best_path = path;
            }
        }
        if best_cost.is_finite() {
            Some((best_cost, best_path))
        } else {
            None
        }
    }

    /// The root's branches as `(stop vertex, leg distance from the vehicle's
    /// position, bottleneck root slack)` — the O(branching factor) view the
    /// dispatcher's candidate screen reads. Each entry is a possible *first*
    /// stop of the vehicle's remaining schedule; `slack_root` is the largest
    /// detour that can be inserted ahead of that stop without provably
    /// violating a root-referenced deadline anywhere in its subtree
    /// (Theorem 1), maintained by every insert and kept conservative by
    /// [`KineticTree::reroot`].
    pub fn root_branches(&self) -> impl Iterator<Item = (NodeId, Cost, Cost)> + '_ {
        self.children
            .iter()
            .map(|c| (c.stop.node, c.leg, c.slack_root))
    }

    /// Cost of the cheapest complete schedule, without materialising the
    /// stop sequence (what [`KineticTree::best_route`] returns, minus the
    /// path allocation). An empty problem costs `0.0`; a tree that should
    /// contain stops but has none yields `INFINITY` (cannot happen through
    /// the public API).
    pub fn best_cost(&self) -> Cost {
        if self.problem.num_stops() == 0 {
            return 0.0;
        }
        self.children
            .iter()
            .map(|c| c.leg + c.best_completion_cost())
            .fold(Cost::INFINITY, Cost::min)
    }

    /// Advances the tree after the vehicle reached `stop` (which must be one
    /// of the root's children, normally the first stop of the best route).
    ///
    /// The subtree rooted at that child becomes the whole tree (Lemma 1: all
    /// schedules not sharing the executed prefix become inactive), the clock
    /// advances by the travelled leg, and the trip bookkeeping is updated —
    /// a pickup moves the trip from `waiting` to `onboard` with its drop-off
    /// deadline fixed at "pickup clock + maximum ride".
    ///
    /// Returns the leg distance travelled to reach the stop.
    pub fn advance_to(&mut self, stop: Stop) -> Result<Cost, TreeInsertError> {
        let idx = self
            .children
            .iter()
            .position(|c| c.stop == stop)
            .ok_or(TreeInsertError::Infeasible)?;
        let chosen = self.children.swap_remove(idx);
        let leg = chosen.leg;
        self.problem.now += leg;
        self.problem.start = stop.node;
        match stop.kind {
            StopKind::Pickup => {
                if let Some(pos) = self
                    .problem
                    .waiting
                    .iter()
                    .position(|t| t.trip == stop.trip)
                {
                    let t = self.problem.waiting.remove(pos);
                    self.problem.onboard.push(OnboardTrip {
                        trip: t.trip,
                        dropoff: t.dropoff,
                        dropoff_deadline: self.problem.now + t.max_ride,
                    });
                }
            }
            StopKind::Dropoff => {
                self.problem.onboard.retain(|t| t.trip != stop.trip);
                // A drop-off of a never-picked-up trip cannot be reached
                // through a valid tree, but keep the bookkeeping consistent.
                self.problem.waiting.retain(|t| t.trip != stop.trip);
            }
        }
        self.children = chosen.children;
        self.node_count = self.children.iter().map(TreeNode::count).sum();
        Ok(leg)
    }

    /// Removes a waiting trip that was assigned but whose pickup the
    /// operator cancelled. Every branch is filtered; branches that only
    /// served the cancelled trip collapse.
    pub fn cancel_waiting(&mut self, trip: TripId) {
        fn strip(nodes: Vec<TreeNode>, trip: TripId) -> Vec<TreeNode> {
            let mut out = Vec::new();
            for mut node in nodes {
                if node.stop.trip == trip {
                    // Splice the node out: its children move up one level.
                    // Their legs become stale; they are recomputed lazily on
                    // the next reroot/insert, so mark them by keeping the
                    // parent leg (a safe overestimate is not available here,
                    // so the caller is expected to reroot afterwards).
                    out.extend(strip(node.children, trip));
                } else {
                    node.children = strip(std::mem::take(&mut node.children), trip);
                    out.push(node);
                }
            }
            out
        }
        self.problem.waiting.retain(|t| t.trip != trip);
        self.children = strip(std::mem::take(&mut self.children), trip);
        self.node_count = self.children.iter().map(TreeNode::count).sum();
    }

    /// Recursive augmentation: interleave `remaining` new stops into the
    /// alternatives recorded by `old_children`.
    ///
    /// * choosing an old child next keeps the recorded ordering and recurses
    ///   with the same `remaining`;
    /// * choosing `remaining[0]` next creates a new node whose children are
    ///   the same alternatives (this single node covers the paper's
    ///   "insert at every outgoing edge" because all old alternatives hang
    ///   below it).
    ///
    /// `detour` is the extra distance accumulated along the walked prefix
    /// relative to the same prefix of old stops in the old tree (i.e. how
    /// much later every old stop below will now be reached); the slack-time
    /// variant prunes on it. `fresh_location` is true when the walker's
    /// current location is a newly inserted stop rather than the old parent,
    /// in which case the cached child legs are stale and must be re-derived
    /// from the oracle.
    #[allow(clippy::too_many_arguments)]
    fn extend(
        &self,
        old_children: &[TreeNode],
        walker: &ScheduleWalker<'_>,
        detour: Cost,
        fresh_location: bool,
        remaining: &[Stop],
        budget: &mut i64,
        oracle: &dyn DistanceOracle,
    ) -> Result<Vec<TreeNode>, TreeInsertError> {
        let mut out: Vec<TreeNode> = Vec::new();

        // Hotspot clustering: if the next new stop is within θ of one of the
        // old alternatives (and of everything already merged into it), pin
        // it right here and do not try it anywhere deeper in this subtree.
        let mut pinned = false;
        if let (Some(theta), Some(&next_new)) = (self.config.hotspot_theta, remaining.first()) {
            let compatible = old_children.iter().any(|c| {
                c.group
                    .iter()
                    .all(|&g| oracle.dist(g, next_new.node) <= theta)
            });
            if compatible {
                pinned = true;
            }
        }

        // Option A: keep an old alternative as the next stop.
        if !pinned {
            for child in old_children {
                let leg = if fresh_location {
                    // The node immediately below an insertion point gets a
                    // fresh leg from the walker's current location.
                    oracle.dist(walker.location, child.stop.node)
                } else {
                    child.leg
                };
                // Extra distance this child (and everything below it) incurs
                // compared to the old tree.
                let child_detour = detour + leg - child.leg;
                if self.config.use_slack && child_detour > child.slack_root + 1e-9 {
                    // Theorem 1: no route through this child can absorb the
                    // detour already inserted above it.
                    continue;
                }
                let mut next_walker = walker.clone();
                let own_slack = next_walker
                    .stop_slack(child.stop, leg)
                    .unwrap_or(Cost::NEG_INFINITY);
                if next_walker.advance_with_distance(child.stop, leg).is_err() {
                    continue;
                }
                *budget -= 1;
                if *budget < 0 {
                    return Err(TreeInsertError::Overflow);
                }
                let new_children = self.extend(
                    &child.children,
                    &next_walker,
                    child_detour,
                    false,
                    remaining,
                    budget,
                    oracle,
                )?;
                let is_complete_leaf = child.children.is_empty() && remaining.is_empty();
                if new_children.is_empty() && !is_complete_leaf {
                    continue;
                }
                out.push(self.make_node(
                    child.stop,
                    leg,
                    own_slack,
                    child.group.clone(),
                    new_children,
                ));
            }
        }

        // Option B: serve the next new stop now.
        if let Some(&new_stop) = remaining.first() {
            let leg = oracle.dist(walker.location, new_stop.node);
            if leg.is_finite() {
                let mut next_walker = walker.clone();
                let own_slack = next_walker
                    .stop_slack(new_stop, leg)
                    .unwrap_or(Cost::NEG_INFINITY);
                if next_walker.advance_with_distance(new_stop, leg).is_ok() {
                    *budget -= 1;
                    if *budget < 0 {
                        return Err(TreeInsertError::Overflow);
                    }
                    let new_children = self.extend(
                        old_children,
                        &next_walker,
                        detour + leg,
                        true,
                        &remaining[1..],
                        budget,
                        oracle,
                    )?;
                    let is_complete_leaf = old_children.is_empty() && remaining.len() == 1;
                    if !new_children.is_empty() || is_complete_leaf {
                        let group = if pinned {
                            // Joining a hotspot: the group is the union of
                            // the compatible child's group and this stop.
                            let mut g = old_children
                                .iter()
                                .find(|c| {
                                    c.group.iter().all(|&gn| {
                                        oracle.dist(gn, new_stop.node)
                                            <= self.config.hotspot_theta.unwrap_or(0.0)
                                    })
                                })
                                .map(|c| c.group.clone())
                                .unwrap_or_default();
                            g.push(new_stop.node);
                            g
                        } else {
                            vec![new_stop.node]
                        };
                        out.push(self.make_node(new_stop, leg, own_slack, group, new_children));
                    }
                }
            }
        }

        Ok(out)
    }

    /// Serialises the tree — configuration, problem and every node — in the
    /// `roadnet::io::bin` conventions used by simulation checkpoints.
    /// [`KineticTree::decode`] rebuilds it bit-identically, so a resumed
    /// simulation explores exactly the schedules the interrupted one would
    /// have.
    pub fn encode(&self, out: &mut Vec<u8>) {
        codec::put_bool(out, self.config.use_slack);
        codec::put_opt_f64(out, self.config.hotspot_theta);
        bin::put_u64(out, self.config.max_nodes as u64);
        codec::put_problem(out, &self.problem);
        encode_nodes(&self.children, out);
    }

    /// Reads a tree written by [`KineticTree::encode`]. Malformed input is
    /// reported as [`RoadNetError::Persist`], never a panic.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, RoadNetError> {
        let use_slack = codec::read_bool(r, "kinetic use_slack")?;
        let hotspot_theta = codec::read_opt_f64(r, "kinetic hotspot theta")?;
        let max_nodes = r.u64("kinetic max_nodes")? as usize;
        let problem = codec::read_problem(r)?;
        let children = decode_nodes(r, 0)?;
        let node_count = children.iter().map(TreeNode::count).sum();
        Ok(KineticTree {
            config: KineticConfig {
                use_slack,
                hotspot_theta,
                max_nodes,
            },
            problem,
            children,
            node_count,
        })
    }

    fn make_node(
        &self,
        stop: Stop,
        leg: Cost,
        own_slack: Cost,
        group: Vec<NodeId>,
        children: Vec<TreeNode>,
    ) -> TreeNode {
        // Δ over root-referenced constraints (Theorem 1). A drop-off of a
        // trip that is *not* already on board is referenced to its pickup,
        // which lies inside the tree, so a detour above the subtree does not
        // necessarily affect it; such nodes contribute +∞ to the bottleneck.
        let root_referenced = match stop.kind {
            StopKind::Pickup => true,
            StopKind::Dropoff => self.problem.onboard_trip(stop.trip).is_some(),
        };
        let own_root_slack = if root_referenced {
            own_slack
        } else {
            Cost::INFINITY
        };
        let child_best = children
            .iter()
            .map(|c| c.slack_root)
            .fold(Cost::NEG_INFINITY, f64::max);
        let slack_root = if children.is_empty() {
            own_root_slack
        } else {
            own_root_slack.min(child_best)
        };
        TreeNode {
            stop,
            leg,
            slack_root,
            group,
            children,
        }
    }
}

fn encode_nodes(nodes: &[TreeNode], out: &mut Vec<u8>) {
    bin::put_u64(out, nodes.len() as u64);
    for node in nodes {
        codec::put_stop(out, &node.stop);
        bin::put_f64(out, node.leg);
        bin::put_f64(out, node.slack_root);
        bin::put_u64(out, node.group.len() as u64);
        for &g in &node.group {
            bin::put_u32(out, g);
        }
        encode_nodes(&node.children, out);
    }
}

/// Tree depth equals the number of remaining stops (2 per active trip), so
/// a valid checkpoint never comes close to this bound; it only guards the
/// decoder's recursion against corrupt input.
const MAX_DECODE_DEPTH: usize = 4_096;

fn decode_nodes(r: &mut Reader<'_>, depth: usize) -> Result<Vec<TreeNode>, RoadNetError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(RoadNetError::Persist(format!(
            "kinetic tree nests deeper than {MAX_DECODE_DEPTH}; refusing to recurse"
        )));
    }
    let count = codec::read_len(r, 29, "kinetic node count")?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let stop = codec::read_stop(r)?;
        let leg = r.f64("kinetic node leg")?;
        let slack_root = r.f64("kinetic node slack")?;
        let group_len = codec::read_len(r, 4, "kinetic group size")?;
        let group = (0..group_len)
            .map(|_| r.u32("kinetic group node"))
            .collect::<Result<_, _>>()?;
        let children = decode_nodes(r, depth + 1)?;
        nodes.push(TreeNode {
            stop,
            leg,
            slack_root,
            group,
            children,
        });
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BruteForceSolver, ScheduleSolver, SolverOutcome};
    use roadnet::{GeneratorConfig, MatrixOracle, NetworkKind};

    fn grid_oracle(seed: u64) -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    fn make_trip(
        oracle: &MatrixOracle,
        id: TripId,
        pickup: NodeId,
        dropoff: NodeId,
        now: Cost,
        wait: Cost,
        eps: f64,
    ) -> WaitingTrip {
        WaitingTrip {
            trip: id,
            pickup,
            dropoff,
            pickup_deadline: now + wait,
            max_ride: oracle.dist(pickup, dropoff) * (1.0 + eps),
        }
    }

    #[test]
    fn empty_tree_has_zero_cost_route() {
        let tree = KineticTree::new(0, 0.0, 4, KineticConfig::basic());
        assert_eq!(tree.best_route(), Some((0.0, vec![])));
        assert_eq!(tree.stats(), TreeStats::default());
        assert_eq!(tree.active_trips(), 0);
    }

    #[test]
    fn single_insertion_builds_two_node_chain() {
        let oracle = grid_oracle(1);
        let tree = KineticTree::new(0, 0.0, 4, KineticConfig::basic());
        let trip = make_trip(&oracle, 1, 7, 18, 0.0, 8_400.0, 0.2);
        let (tree, cost) = tree.try_insert(trip, &oracle).unwrap();
        let expected = oracle.dist(0, 7) + oracle.dist(7, 18);
        assert!((cost - expected).abs() < 1e-6);
        let (_, route) = tree.best_route().unwrap();
        assert_eq!(route, vec![Stop::pickup(1, 7), Stop::dropoff(1, 18)]);
        assert_eq!(tree.stats().depth, 2);
        assert_eq!(tree.active_trips(), 1);
    }

    #[test]
    fn infeasible_request_is_rejected_and_tree_untouched() {
        let oracle = grid_oracle(2);
        let tree = KineticTree::new(0, 0.0, 4, KineticConfig::basic());
        let far = (oracle.node_count() - 1) as NodeId;
        let trip = WaitingTrip {
            trip: 1,
            pickup: far,
            dropoff: 0,
            pickup_deadline: 1.0,
            max_ride: 1e9,
        };
        assert!(matches!(
            tree.try_insert(trip, &oracle),
            Err(TreeInsertError::Infeasible)
        ));
        assert_eq!(tree.active_trips(), 0);
    }

    #[test]
    fn node_budget_overflow_reported() {
        let oracle = grid_oracle(3);
        let mut config = KineticConfig::basic();
        config.max_nodes = 3;
        let tree = KineticTree::new(0, 0.0, 8, config);
        let t1 = make_trip(&oracle, 1, 3, 20, 0.0, 50_000.0, 3.0);
        let (tree, _) = tree.try_insert(t1, &oracle).unwrap();
        let t2 = make_trip(&oracle, 2, 4, 21, 0.0, 50_000.0, 3.0);
        assert!(matches!(
            tree.try_insert(t2, &oracle),
            Err(TreeInsertError::Overflow)
        ));
    }

    /// Shared helper: build a tree by inserting trips one at a time and
    /// compare its best route with the brute-force optimum of the same
    /// problem.
    fn assert_matches_brute_force(config: KineticConfig, exact: bool, seeds: std::ops::Range<u64>) {
        let oracle = grid_oracle(7);
        let n = oracle.node_count() as u64;
        for seed in seeds {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut tree = KineticTree::new((next() % n) as NodeId, 0.0, 6, config);
            let trips = 2 + (seed % 3) as usize;
            let mut inserted = Vec::new();
            for id in 0..trips as u64 {
                let pickup = (next() % n) as NodeId;
                let mut dropoff = (next() % n) as NodeId;
                if dropoff == pickup {
                    dropoff = (dropoff + 1) % n as NodeId;
                }
                let trip = make_trip(&oracle, id, pickup, dropoff, 0.0, 8_400.0, 0.5);
                match tree.try_insert(trip, &oracle) {
                    Ok((t, _)) => {
                        tree = t;
                        inserted.push(trip);
                    }
                    Err(TreeInsertError::Infeasible) => {}
                    Err(e) => panic!("seed {seed}: unexpected {e:?}"),
                }
            }
            if inserted.is_empty() {
                continue;
            }
            let (tree_cost, route) = tree.best_route().unwrap();
            // The tree's own problem is the ground truth to validate against.
            let cost = tree
                .problem()
                .validate(&route, &oracle)
                .expect("kinetic route must be valid");
            assert!(
                (cost - tree_cost).abs() < 1e-6,
                "seed {seed}: route cost mismatch"
            );
            match BruteForceSolver::default().solve(tree.problem(), &oracle) {
                SolverOutcome::Feasible { cost: best, .. } => {
                    if exact {
                        assert!(
                            (tree_cost - best).abs() < 1e-6,
                            "seed {seed}: tree {tree_cost} vs brute force {best}"
                        );
                    } else {
                        assert!(
                            tree_cost >= best - 1e-6,
                            "seed {seed}: tree {tree_cost} beat the optimum {best}"
                        );
                    }
                }
                other => panic!("seed {seed}: brute force disagrees on feasibility: {other:?}"),
            }
        }
    }

    #[test]
    fn basic_tree_matches_brute_force() {
        assert_matches_brute_force(KineticConfig::basic(), true, 0..15);
    }

    #[test]
    fn slack_tree_matches_brute_force() {
        assert_matches_brute_force(KineticConfig::slack(), true, 0..15);
    }

    #[test]
    fn hotspot_tree_stays_valid_and_within_bound() {
        // Hotspot clustering is an approximation: routes must stay valid and
        // never beat the optimum.
        assert_matches_brute_force(KineticConfig::hotspot(300.0), false, 0..15);
    }

    #[test]
    fn advance_prunes_to_selected_subtree() {
        let oracle = grid_oracle(4);
        let tree = KineticTree::new(0, 0.0, 6, KineticConfig::basic());
        let t1 = make_trip(&oracle, 1, 5, 30, 0.0, 20_000.0, 1.0);
        let (tree, _) = tree.try_insert(t1, &oracle).unwrap();
        let t2 = make_trip(&oracle, 2, 6, 31, 0.0, 20_000.0, 1.0);
        let (mut tree, _) = tree.try_insert(t2, &oracle).unwrap();
        let before = tree.stats();
        let (_, route) = tree.best_route().unwrap();
        let first = route[0];
        let leg = tree.advance_to(first).unwrap();
        assert!(leg > 0.0);
        let after = tree.stats();
        assert!(after.nodes < before.nodes);
        assert!(after.depth == before.depth - 1);
        // Reaching a pickup moves the trip on board.
        if first.is_pickup() {
            assert!(tree.problem().onboard_trip(first.trip).is_some());
            assert!(tree.problem().waiting_trip(first.trip).is_none());
        }
        // The remaining route must still be valid for the updated problem.
        let (cost, rest) = tree.best_route().unwrap();
        let check = tree.problem().validate(&rest, &oracle).unwrap();
        assert!((check - cost).abs() < 1e-6);
    }

    #[test]
    fn advance_to_unknown_stop_fails() {
        let oracle = grid_oracle(5);
        let tree = KineticTree::new(0, 0.0, 4, KineticConfig::basic());
        let t1 = make_trip(&oracle, 1, 5, 10, 0.0, 20_000.0, 1.0);
        let (mut tree, _) = tree.try_insert(t1, &oracle).unwrap();
        assert_eq!(
            tree.advance_to(Stop::pickup(99, 3)),
            Err(TreeInsertError::Infeasible)
        );
    }

    #[test]
    fn reroot_updates_first_legs() {
        let oracle = grid_oracle(6);
        let tree = KineticTree::new(0, 0.0, 4, KineticConfig::basic());
        let t1 = make_trip(&oracle, 1, 10, 20, 0.0, 20_000.0, 1.0);
        let (mut tree, cost0) = tree.try_insert(t1, &oracle).unwrap();
        // Move the vehicle to an adjacent vertex.
        tree.reroot(1, 100.0, &oracle);
        let (cost1, route) = tree.best_route().unwrap();
        let expected = oracle.dist(1, 10) + oracle.dist(10, 20);
        assert!((cost1 - expected).abs() < 1e-6);
        assert_eq!(route.len(), 2);
        assert_ne!(cost0, cost1);
        assert_eq!(tree.problem().start, 1);
        assert_eq!(tree.problem().now, 100.0);
    }

    #[test]
    fn cancel_waiting_removes_the_trip_everywhere() {
        let oracle = grid_oracle(8);
        let tree = KineticTree::new(0, 0.0, 6, KineticConfig::basic());
        let t1 = make_trip(&oracle, 1, 5, 30, 0.0, 20_000.0, 1.0);
        let (tree, _) = tree.try_insert(t1, &oracle).unwrap();
        let t2 = make_trip(&oracle, 2, 6, 31, 0.0, 20_000.0, 1.0);
        let (mut tree, _) = tree.try_insert(t2, &oracle).unwrap();
        tree.cancel_waiting(1);
        tree.reroot(0, 0.0, &oracle);
        assert!(tree.problem().waiting_trip(1).is_none());
        let (_, route) = tree.best_route().unwrap();
        assert!(route.iter().all(|s| s.trip != 1));
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn slack_variant_produces_smaller_or_equal_trees_under_tight_constraints() {
        let oracle = grid_oracle(9);
        let n = oracle.node_count() as u64;
        let mut basic = KineticTree::new(0, 0.0, 6, KineticConfig::basic());
        let mut slack = KineticTree::new(0, 0.0, 6, KineticConfig::slack());
        let mut state = 77u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for id in 0..4u64 {
            let pickup = (next() % n) as NodeId;
            let mut dropoff = (next() % n) as NodeId;
            if dropoff == pickup {
                dropoff = (dropoff + 1) % n as NodeId;
            }
            let trip = make_trip(&oracle, id, pickup, dropoff, 0.0, 4_200.0, 0.1);
            if let Ok((t, _)) = basic.try_insert(trip, &oracle) {
                basic = t;
                // Whatever basic accepted, slack must accept with the same cost.
                let (t2, c2) = slack.try_insert(trip, &oracle).expect("slack must agree");
                assert!((c2 - basic.best_route().unwrap().0).abs() < 1e-6);
                slack = t2;
            }
        }
        assert!(slack.stats().leaves <= basic.stats().leaves);
        assert_eq!(KineticConfig::slack().variant_name(), "kinetic-slack");
        assert_eq!(KineticConfig::basic().variant_name(), "kinetic-basic");
        assert_eq!(
            KineticConfig::hotspot(1.0).variant_name(),
            "kinetic-hotspot"
        );
    }

    #[test]
    fn encode_decode_roundtrips_bit_identically() {
        let oracle = grid_oracle(12);
        let tree = KineticTree::new(3, 10.0, 4, KineticConfig::hotspot(300.0));
        let t1 = make_trip(&oracle, 1, 5, 30, 10.0, 20_000.0, 1.0);
        let (tree, _) = tree.try_insert(t1, &oracle).unwrap();
        let t2 = make_trip(&oracle, 2, 6, 31, 10.0, 20_000.0, 1.0);
        let (tree, _) = tree.try_insert(t2, &oracle).unwrap();

        let mut bytes = Vec::new();
        tree.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = KineticTree::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        // Structural identity via the byte image, behavioural identity via
        // the best route and stats.
        let mut bytes2 = Vec::new();
        back.encode(&mut bytes2);
        assert_eq!(bytes, bytes2);
        assert_eq!(back.best_route(), tree.best_route());
        assert_eq!(back.stats(), tree.stats());
        assert_eq!(back.problem(), tree.problem());
        assert_eq!(back.config(), tree.config());

        // Truncations error cleanly instead of panicking.
        for len in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..len]);
            assert!(
                KineticTree::decode(&mut r).is_err(),
                "truncation at {len} decoded"
            );
        }
    }

    #[test]
    fn hotspot_limits_tree_growth_at_a_shared_pickup_point() {
        let oracle = grid_oracle(10);
        // Six passengers all departing from the same vertex (an "airport"),
        // unlimited capacity: the basic tree explodes combinatorially, the
        // hotspot tree stays small.
        let build = |config: KineticConfig| -> Option<TreeStats> {
            let mut tree = KineticTree::new(0, 0.0, usize::MAX, config);
            for id in 0..6u64 {
                let dropoff = 6 + id as NodeId * 4;
                let trip = make_trip(&oracle, id, 14, dropoff, 0.0, 50_000.0, 2.0);
                match tree.try_insert(trip, &oracle) {
                    Ok((t, _)) => tree = t,
                    Err(_) => return None,
                }
            }
            Some(tree.stats())
        };
        let basic = build(KineticConfig::basic()).expect("basic finishes at this size");
        let hotspot = build(KineticConfig::hotspot(500.0)).expect("hotspot finishes");
        assert!(
            hotspot.leaves < basic.leaves,
            "hotspot {hotspot:?} should be smaller than basic {basic:?}"
        );
    }
}

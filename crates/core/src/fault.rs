//! Deterministic fault injection for the serving stack.
//!
//! Chaos testing a dispatcher is only useful when the chaos replays: a
//! fault that fires at a different tick on every run cannot participate in
//! the kill-and-recover equivalence proofs the serve layer makes
//! (`rideshare-serve`'s recovery property requires the *recovered* run to
//! observe exactly the faults the uninterrupted run would have). A
//! [`FaultPlan`] therefore carries no mutable RNG state at all: every
//! decision is a pure function of `(seed, fault domain, tick index)`, so
//! the schedule is identical no matter how often, in which order, or from
//! which resumed process the plan is consulted.
//!
//! The plan covers the four failure classes the serve path injects —
//! oracle latency spikes (charged to dispatch-tick compute), label-store
//! IO errors (forcing the rebuild/Dijkstra fallback), torn checkpoint
//! writes (a crash between temp-file write and rename) and metrics-sink
//! channel saturation (events dropped on the floor) — plus the process
//! kill itself (`kill_at_tick`), which the recoverable serve loop turns
//! into an abrupt return with no drain and no cleanup.

/// The independent decision streams of a [`FaultPlan`]. Each domain hashes
/// with a distinct constant so, e.g., an oracle spike at tick 17 says
/// nothing about sink saturation at tick 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Domain {
    OracleSpike = 1,
    SinkSaturation = 2,
    TornCheckpoint = 3,
}

/// A seeded, stateless schedule of injectable faults.
///
/// All probabilities are per-consultation (per dispatch tick for spikes and
/// saturation, per checkpoint write for torn writes) and decided by hashing
/// `(seed, domain, index)` — see the module docs for why statelessness
/// matters. The zero plan ([`FaultPlan::none`], also `Default`) injects
/// nothing and is what every non-chaos caller uses.
///
/// ```
/// use kinetic_core::fault::FaultPlan;
///
/// let plan = FaultPlan { oracle_spike_rate: 0.5, ..FaultPlan::none() }.with_seed(7);
/// // Decisions are a pure function of the tick: any replay agrees.
/// for tick in 0..100 {
///     assert_eq!(plan.oracle_spike(tick), plan.oracle_spike(tick));
/// }
/// let fired = (0..1000).filter(|&t| plan.oracle_spike(t).is_some()).count();
/// assert!(fired > 350 && fired < 650, "rate 0.5 must fire about half the time");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed separating this plan's schedule from every other plan's.
    pub seed: u64,
    /// Probability per dispatch tick of an oracle latency spike.
    pub oracle_spike_rate: f64,
    /// Extra compute seconds one spike charges to the tick.
    pub oracle_spike_seconds: f64,
    /// Probability per tick that the metrics-sink channel is saturated
    /// (every event the loop would record that tick is dropped and
    /// counted, never sent).
    pub sink_saturation_rate: f64,
    /// Probability per checkpoint write of a torn write: the temp file is
    /// written partially and never renamed, as if the process died mid-save.
    pub torn_checkpoint_rate: f64,
    /// Fail every label-store load, forcing the rebuild (and the plain
    /// Dijkstra fallback while labels are unavailable).
    pub store_io_errors: bool,
    /// Kill the serve process at this tick: the recoverable loop returns
    /// without draining, flushing or checkpointing, exactly like a crash.
    pub kill_at_tick: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Rejects a valueless clause for a key that requires `key=value`.
fn need<'a>(key: &str, v: Option<&'a str>) -> Result<&'a str, String> {
    v.ok_or_else(|| format!("fault clause {key:?} expects key=value"))
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of a 64-bit input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: nothing ever fires.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            oracle_spike_rate: 0.0,
            oracle_spike_seconds: 0.0,
            sink_saturation_rate: 0.0,
            torn_checkpoint_rate: 0.0,
            store_io_errors: false,
            kill_at_tick: None,
        }
    }

    /// True when no fault can ever fire under this plan.
    pub fn is_none(&self) -> bool {
        self.oracle_spike_rate <= 0.0
            && self.sink_saturation_rate <= 0.0
            && self.torn_checkpoint_rate <= 0.0
            && !self.store_io_errors
            && self.kill_at_tick.is_none()
    }

    /// Returns the plan with a different seed (builder-style convenience).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pure decision: does `domain` fire at `index` under `rate`?
    fn fires(&self, domain: Domain, index: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = mix(self.seed ^ mix(domain as u64) ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        // Map the hash to [0, 1) with 53 bits of precision.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Extra compute seconds the oracle charges at this dispatch tick, if a
    /// latency spike fires.
    pub fn oracle_spike(&self, tick: u64) -> Option<f64> {
        self.fires(Domain::OracleSpike, tick, self.oracle_spike_rate)
            .then_some(self.oracle_spike_seconds)
    }

    /// Whether the metrics-sink channel is saturated at this tick.
    pub fn sink_saturated(&self, tick: u64) -> bool {
        self.fires(Domain::SinkSaturation, tick, self.sink_saturation_rate)
    }

    /// Whether the `write_index`-th checkpoint write tears mid-save.
    pub fn torn_checkpoint(&self, write_index: u64) -> bool {
        self.fires(
            Domain::TornCheckpoint,
            write_index,
            self.torn_checkpoint_rate,
        )
    }

    /// Whether the process is killed at this tick.
    pub fn killed_at(&self, tick: u64) -> bool {
        self.kill_at_tick == Some(tick)
    }

    /// Parses the CLI spec: comma-separated `key=value` clauses, e.g.
    /// `seed=7,spike=0.1:2.5,sink=0.05,torn=0.5,store,kill=120`.
    ///
    /// * `seed=<n>` — plan seed;
    /// * `spike=<rate>[:<seconds>]` — oracle spikes (default 2.0 s each);
    /// * `sink=<rate>` — sink saturation;
    /// * `torn=<rate>` — torn checkpoint writes;
    /// * `store` — fail label-store loads;
    /// * `kill=<tick>` — kill the process at that tick.
    ///
    /// The empty string parses to [`FaultPlan::none`].
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (key, value) = match clause.split_once('=') {
                Some((k, v)) => (k, Some(v)),
                None => (clause, None),
            };
            let num = |v: &str| -> Result<f64, String> {
                v.parse()
                    .map_err(|_| format!("fault clause {key:?}: bad number {v:?}"))
            };
            match key {
                "seed" => {
                    plan.seed = need(key, value)?
                        .parse()
                        .map_err(|_| "bad seed".to_string())?
                }
                "spike" => {
                    let v = need(key, value)?;
                    let (rate, secs) = match v.split_once(':') {
                        Some((r, s)) => (num(r)?, num(s)?),
                        None => (num(v)?, 2.0),
                    };
                    plan.oracle_spike_rate = rate;
                    plan.oracle_spike_seconds = secs;
                }
                "sink" => plan.sink_saturation_rate = num(need(key, value)?)?,
                "torn" => plan.torn_checkpoint_rate = num(need(key, value)?)?,
                "store" => plan.store_io_errors = true,
                "kill" => {
                    plan.kill_at_tick = Some(
                        need(key, value)?
                            .parse()
                            .map_err(|_| "bad kill tick".to_string())?,
                    )
                }
                other => return Err(format!("unknown fault clause {other:?}")),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for t in 0..1000 {
            assert!(plan.oracle_spike(t).is_none());
            assert!(!plan.sink_saturated(t));
            assert!(!plan.torn_checkpoint(t));
            assert!(!plan.killed_at(t));
        }
    }

    #[test]
    fn decisions_are_stateless_and_seed_dependent() {
        let a = FaultPlan {
            oracle_spike_rate: 0.3,
            sink_saturation_rate: 0.3,
            torn_checkpoint_rate: 0.3,
            ..FaultPlan::none()
        }
        .with_seed(1);
        let b = a.with_seed(2);
        // Same plan, any consultation order: identical decisions.
        let forward: Vec<bool> = (0..500).map(|t| a.sink_saturated(t)).collect();
        let backward: Vec<bool> = (0..500).rev().map(|t| a.sink_saturated(t)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "order of consultation must not matter"
        );
        // Different seeds give different schedules.
        assert_ne!(
            (0..500).map(|t| a.sink_saturated(t)).collect::<Vec<_>>(),
            (0..500).map(|t| b.sink_saturated(t)).collect::<Vec<_>>()
        );
        // Domains are independent streams.
        assert_ne!(
            (0..500)
                .map(|t| a.oracle_spike(t).is_some())
                .collect::<Vec<_>>(),
            (0..500).map(|t| a.torn_checkpoint(t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rates_are_approximately_honoured_and_edges_are_exact() {
        let plan = FaultPlan {
            oracle_spike_rate: 0.1,
            oracle_spike_seconds: 1.5,
            ..FaultPlan::none()
        }
        .with_seed(99);
        let fired = (0..10_000)
            .filter(|&t| plan.oracle_spike(t) == Some(1.5))
            .count();
        assert!((700..1300).contains(&fired), "rate 0.1 fired {fired}/10000");
        let always = FaultPlan {
            torn_checkpoint_rate: 1.0,
            ..FaultPlan::none()
        };
        let never = FaultPlan {
            torn_checkpoint_rate: 0.0,
            ..FaultPlan::none()
        };
        for i in 0..100 {
            assert!(always.torn_checkpoint(i));
            assert!(!never.torn_checkpoint(i));
        }
    }

    #[test]
    fn parse_round_trips_the_documented_spec() {
        let plan = FaultPlan::parse("seed=7,spike=0.1:2.5,sink=0.05,torn=0.5,store,kill=120")
            .expect("valid spec");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.oracle_spike_rate, 0.1);
        assert_eq!(plan.oracle_spike_seconds, 2.5);
        assert_eq!(plan.sink_saturation_rate, 0.05);
        assert_eq!(plan.torn_checkpoint_rate, 0.5);
        assert!(plan.store_io_errors);
        assert_eq!(plan.kill_at_tick, Some(120));

        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(
            FaultPlan::parse("spike=0.2").unwrap().oracle_spike_seconds,
            2.0,
            "spike seconds default"
        );
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("spike=x").is_err());
        assert!(FaultPlan::parse("store=").is_err() || FaultPlan::parse("store").is_ok());
    }
}

//! Exact hub labeling (pruned landmark labeling) distance oracle.
//!
//! The paper implements "the state-of-art hub-labeling algorithm — a fast and
//! practical algorithm to heuristically construct the distance labeling on
//! large road networks, where each vertex records a set of intermediate
//! vertices (and their distance to them) for the shortest path computation".
//!
//! We implement pruned landmark labeling over a heuristic vertex ordering
//! (descending degree with a deterministic tie-break, optionally refined by a
//! coarse betweenness estimate). Construction runs one pruned Dijkstra per
//! vertex in order; pruning keeps labels small on road-like networks. The
//! resulting oracle is *exact*: `query(s, t)` equals the shortest-path
//! distance, which the tests verify against Dijkstra.

use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// Strategy used to order vertices before label construction. Higher-ranked
/// vertices become hubs for more of the network, so putting "important"
/// vertices first keeps labels small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubOrdering {
    /// Descending degree, ties broken by node id. Cheap and effective on
    /// grid-like road networks.
    Degree,
    /// Descending estimated betweenness computed from a sample of shortest
    /// path trees, falling back to degree for untouched vertices. More
    /// expensive to compute but yields smaller labels on ring-radial
    /// networks with strong arterials.
    SampledBetweenness {
        /// Number of sampled sources used for the estimate.
        samples: usize,
    },
}

/// One entry of a vertex label: a hub and the exact distance to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelEntry {
    /// Rank of the hub in the construction ordering (not the original node
    /// id); ranks are what queries intersect on.
    pub hub_rank: u32,
    /// Exact shortest-path distance from the labelled vertex to the hub.
    pub dist: Weight,
}

/// Exact two-hop labeling over a road network.
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// `labels[v]` sorted by `hub_rank` ascending.
    labels: Vec<Vec<LabelEntry>>,
    /// Maps construction rank back to the original node id.
    rank_to_node: Vec<NodeId>,
}

impl HubLabels {
    /// Builds labels with the default (degree) ordering.
    pub fn build(graph: &RoadNetwork) -> Self {
        Self::build_with(graph, HubOrdering::Degree)
    }

    /// Builds labels with an explicit ordering strategy.
    pub fn build_with(graph: &RoadNetwork, ordering: HubOrdering) -> Self {
        let order = vertex_order(graph, ordering);
        let n = graph.node_count();
        let mut rank_of = vec![0u32; n];
        for (rank, &v) in order.iter().enumerate() {
            rank_of[v as usize] = rank as u32;
        }
        let mut labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];

        // Scratch buffers reused across pruned Dijkstra runs.
        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<NodeId> = Vec::new();

        for (rank, &root) in order.iter().enumerate() {
            let rank = rank as u32;
            let mut heap = BinaryHeap::new();
            dist[root as usize] = 0.0;
            touched.push(root);
            heap.push(HeapEntry::new(0.0, root));
            while let Some(HeapEntry { cost, node }) = heap.pop() {
                let d = cost.0;
                if d > dist[node as usize] {
                    continue;
                }
                // Prune: if the existing labels already certify a distance
                // <= d between root and node, this node (and everything
                // reached through it at larger cost) gains nothing from a
                // new label.
                if query_labels(&labels[root as usize], &labels[node as usize]) <= d + 1e-9 {
                    continue;
                }
                labels[node as usize].push(LabelEntry {
                    hub_rank: rank,
                    dist: d,
                });
                for (v, w) in graph.neighbors(node) {
                    let nd = d + w;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        touched.push(v);
                        heap.push(HeapEntry::new(nd, v));
                    }
                }
            }
            for &t in &touched {
                dist[t as usize] = INFINITY;
            }
            touched.clear();
        }
        // Labels are appended in increasing rank order by construction, so
        // they are already sorted; assert in debug builds.
        debug_assert!(labels
            .iter()
            .all(|l| l.windows(2).all(|w| w[0].hub_rank < w[1].hub_rank)));
        HubLabels {
            labels,
            rank_to_node: order,
        }
    }

    /// Exact shortest-path distance between `s` and `t`, or `None` when they
    /// are disconnected.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        if s == t {
            return Some(0.0);
        }
        let d = query_labels(&self.labels[s as usize], &self.labels[t as usize]);
        if d == INFINITY {
            None
        } else {
            Some(d)
        }
    }

    /// Number of label entries over all vertices (an index-size measure).
    pub fn total_label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Mean label size per vertex.
    pub fn mean_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_label_entries() as f64 / self.labels.len() as f64
        }
    }

    /// The hub vertex (original node id) at a construction rank.
    pub fn hub_node(&self, rank: u32) -> NodeId {
        self.rank_to_node[rank as usize]
    }

    /// Label of a vertex, sorted by hub rank (exposed for diagnostics and
    /// tests).
    pub fn label(&self, v: NodeId) -> &[LabelEntry] {
        &self.labels[v as usize]
    }
}

/// Merge-intersects two rank-sorted labels and returns the minimum combined
/// distance.
fn query_labels(a: &[LabelEntry], b: &[LabelEntry]) -> Weight {
    let mut i = 0;
    let mut j = 0;
    let mut best = INFINITY;
    while i < a.len() && j < b.len() {
        match a[i].hub_rank.cmp(&b[j].hub_rank) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].dist + b[j].dist;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Computes the construction ordering for a given strategy.
fn vertex_order(graph: &RoadNetwork, ordering: HubOrdering) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut score = vec![0.0f64; n];
    match ordering {
        HubOrdering::Degree => {
            for (v, s) in score.iter_mut().enumerate() {
                *s = graph.degree(v as NodeId) as f64;
            }
        }
        HubOrdering::SampledBetweenness { samples } => {
            // Count how often each vertex appears on sampled shortest-path
            // trees; vertices on many shortest paths make good hubs.
            let crate_engine = crate::dijkstra::DijkstraEngine::new(graph);
            let samples = samples.max(1).min(n);
            let stride = (n / samples).max(1);
            for s in (0..n).step_by(stride) {
                let tree = crate_engine.search(s as NodeId);
                for v in 0..n {
                    let mut cur = v;
                    let mut hops = 0usize;
                    while tree.parent[cur] != u32::MAX && hops < n {
                        cur = tree.parent[cur] as usize;
                        score[cur] += 1.0;
                        hops += 1;
                    }
                }
            }
            for (v, s) in score.iter_mut().enumerate() {
                // Degree as a tie-break refinement.
                *s += graph.degree(v as NodeId) as f64 * 1e-3;
            }
        }
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by(|&a, &b| {
        score[b as usize]
            .partial_cmp(&score[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraEngine;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::oracle::ShortestPathEngine;
    use crate::types::{approx_eq, Point};

    #[test]
    fn single_edge() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(5.0, 0.0));
        b.add_edge(0, 1, 5.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 1), Some(5.0));
        assert_eq!(hl.distance(0, 0), Some(0.0));
    }

    #[test]
    fn disconnected_pair_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_edge(0, 1, 2.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 2), None);
        assert_eq!(hl.distance(2, 1), None);
    }

    #[test]
    fn exact_on_grid_all_pairs() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 7, cols: 6 },
            seed: 9,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        let dij = DijkstraEngine::new(&g);
        for s in 0..g.node_count() as NodeId {
            let tree = dij.search(s);
            for t in 0..g.node_count() as NodeId {
                let expect = tree.distance_to(t);
                let got = hl.distance(s, t);
                match (expect, got) {
                    (Some(a), Some(b)) => assert!(approx_eq(a, b), "{s}->{t}: {a} vs {b}"),
                    (None, None) => {}
                    _ => panic!("reachability mismatch {s}->{t}"),
                }
            }
        }
    }

    #[test]
    fn exact_with_betweenness_ordering() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::RingRadial {
                rings: 4,
                spokes: 9,
            },
            seed: 17,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build_with(&g, HubOrdering::SampledBetweenness { samples: 8 });
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as NodeId;
        for (s, t) in (0..40).map(|i| ((i * 7) % n, (i * 31 + 3) % n)) {
            let expect = dij.distance(s, t);
            let got = hl.distance(s, t);
            match (expect, got) {
                (Some(a), Some(b)) => assert!(approx_eq(a, b)),
                (None, None) => {}
                _ => panic!("reachability mismatch {s}->{t}"),
            }
        }
    }

    #[test]
    fn labels_are_rank_sorted_and_nonempty() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 5 },
            seed: 1,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        assert!(hl.total_label_entries() >= g.node_count());
        assert!(hl.mean_label_size() >= 1.0);
        for v in 0..g.node_count() as NodeId {
            let l = hl.label(v);
            assert!(!l.is_empty());
            assert!(l.windows(2).all(|w| w[0].hub_rank < w[1].hub_rank));
        }
        // The top-ranked hub labels itself at distance zero.
        let top = hl.hub_node(0);
        assert!(hl
            .label(top)
            .iter()
            .any(|e| e.hub_rank == 0 && e.dist == 0.0));
    }

    #[test]
    fn pruning_keeps_labels_smaller_than_full_landmarks() {
        // With pruning, total entries must be well below n^2 even on a dense
        // small grid.
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 2,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        let n = g.node_count();
        assert!(hl.total_label_entries() < n * n / 2);
    }
}

//! Exact hub labeling (pruned landmark labeling) distance oracle.
//!
//! The paper implements "the state-of-art hub-labeling algorithm — a fast and
//! practical algorithm to heuristically construct the distance labeling on
//! large road networks, where each vertex records a set of intermediate
//! vertices (and their distance to them) for the shortest path computation".
//!
//! We implement pruned landmark labeling over a configurable vertex
//! ordering. The default ordering is the contraction-hierarchy-style rank
//! from [`crate::contraction`], which finds small separators and keeps both
//! label sizes and build time near-linear on road-like networks; the older
//! degree and sampled-betweenness heuristics remain available as baselines.
//! Construction runs pruned Dijkstras over the ordering in *rank batches*:
//! each batch of consecutive roots is searched in parallel on a
//! [`workpool::WorkPool`] against the frozen labels of all earlier batches,
//! then merged sequentially in rank order with the exact sequential pruning
//! test re-applied — so the resulting labels are bit-identical to a
//! sequential build at any worker count (property-tested).
//!
//! Finished labels live in a CSR-style arena: one contiguous
//! [`LabelEntry`] slice plus per-vertex offsets. That removes per-vertex
//! allocation, keeps queries on one cache-friendly slice, and is the layout
//! the on-disk format in [`persist`] writes verbatim — a paper-scale build
//! is paid once and reloaded with [`HubLabels::load`].
//!
//! The resulting oracle is *exact*: `query(s, t)` equals the shortest-path
//! distance, which the tests verify against Dijkstra.

pub mod persist;

use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::Mutex;

use workpool::WorkPool;

use crate::contraction::ContractionOrder;
use crate::error::RoadNetError;
use crate::graph::RoadNetwork;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// Tolerance of the pruning test, absorbing floating-point summation error
/// accumulated along alternative shortest paths.
const PRUNE_EPS: f64 = 1e-9;

/// Strategy used to order vertices before label construction. Higher-ranked
/// vertices become hubs for more of the network, so putting "important"
/// vertices first keeps labels small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubOrdering {
    /// Descending degree, ties broken by node id. Cheap, but label sizes
    /// blow up past a few thousand vertices.
    Degree,
    /// Descending estimated betweenness computed from a sample of shortest
    /// path trees, falling back to degree for untouched vertices. The
    /// pre-contraction default, kept as the baseline the benchmarks
    /// compare against.
    SampledBetweenness {
        /// Number of sampled sources used for the estimate.
        samples: usize,
    },
    /// Contraction-hierarchy-style importance order (edge difference +
    /// deleted neighbours, lazy updates) from [`crate::contraction`]. The
    /// default: near-linear build cost and the smallest labels on
    /// road-like networks.
    Contraction,
}

/// One entry of a vertex label: a hub and the exact distance to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelEntry {
    /// Rank of the hub in the construction ordering (not the original node
    /// id); ranks are what queries intersect on.
    pub hub_rank: u32,
    /// Exact shortest-path distance from the labelled vertex to the hub.
    pub dist: Weight,
}

/// Exact two-hop labeling over a road network, stored as a CSR arena.
#[derive(Debug, Clone, PartialEq)]
pub struct HubLabels {
    /// `entries[label_offsets[v]..label_offsets[v + 1]]` is the label of
    /// vertex `v`, sorted by `hub_rank` ascending.
    label_offsets: Vec<usize>,
    /// All label entries, concatenated in vertex order.
    entries: Vec<LabelEntry>,
    /// Maps construction rank back to the original node id.
    rank_to_node: Vec<NodeId>,
}

impl HubLabels {
    /// Builds labels with the default ([`HubOrdering::Contraction`])
    /// ordering and a work pool sized to the machine.
    pub fn build(graph: &RoadNetwork) -> Self {
        Self::build_with(graph, HubOrdering::Contraction)
    }

    /// Builds labels with an explicit ordering strategy, fanning the
    /// construction out over a work pool sized to the machine.
    pub fn build_with(graph: &RoadNetwork, ordering: HubOrdering) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with_pool(graph, ordering, &WorkPool::new(workers))
    }

    /// Reference single-threaded build (batch size 1, no merge filter).
    /// [`HubLabels::build_with_pool`] at any worker count produces labels
    /// bit-identical to this; tests and the CI bench gate rely on that.
    pub fn build_sequential(graph: &RoadNetwork, ordering: HubOrdering) -> Self {
        Self::build_with_pool(graph, ordering, &WorkPool::new(1))
    }

    /// Builds labels with an explicit ordering strategy and work pool.
    ///
    /// Construction walks the ordering in batches of consecutive ranks
    /// (batch size scales with the pool's worker count; one worker means
    /// batch size 1, i.e. the plain sequential algorithm). Workers run
    /// pruned Dijkstras against the frozen labels of earlier batches;
    /// because in-batch roots cannot see each other's labels, workers may
    /// produce entries the sequential algorithm would have pruned, so the
    /// sequential merge step re-applies the exact pruning test in rank
    /// order before committing each entry. The committed label set is
    /// therefore identical to the sequential build's regardless of worker
    /// count or batch boundaries.
    pub fn build_with_pool(graph: &RoadNetwork, ordering: HubOrdering, pool: &WorkPool) -> Self {
        let order = vertex_order(graph, ordering);
        let n = graph.node_count();
        let batch_size = if pool.workers() == 1 {
            1
        } else {
            pool.workers() * 4
        };
        let mut labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        // Per-worker-slot scratch, reused across batches; slots are indexed
        // by chunk id, which map_chunks guarantees are unique per call, so
        // the mutexes are never contended.
        let scratch: Vec<Mutex<SearchScratch>> = (0..pool.workers())
            .map(|_| Mutex::new(SearchScratch::new(n)))
            .collect();

        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let roots = &order[start..end];
            // Parallel phase: one pruned Dijkstra per root against the
            // frozen labels (ranks < start).
            let chunk_results: Vec<Vec<Vec<(NodeId, Weight)>>> =
                pool.map_chunks(roots, |chunk_idx, _range, chunk| {
                    let mut scratch = scratch[chunk_idx]
                        .lock()
                        .expect("scratch slot never poisoned");
                    chunk
                        .iter()
                        .map(|&root| pruned_dijkstra(graph, &labels, root, &mut scratch))
                        .collect()
                });
            // Merge phase: commit candidates in rank order, re-applying the
            // pruning test against the labels committed so far. The first
            // root of the batch saw a complete prune set already, so its
            // candidates are committed unfiltered.
            for (rank, candidates) in (start..).zip(chunk_results.into_iter().flatten()) {
                let root = order[rank] as usize;
                let is_first_in_batch = rank == start;
                for (v, d) in candidates {
                    let keep = is_first_in_batch
                        || query_labels(&labels[root], &labels[v as usize]) > d + PRUNE_EPS;
                    if keep {
                        labels[v as usize].push(LabelEntry {
                            hub_rank: rank as u32,
                            dist: d,
                        });
                    }
                }
            }
            start = end;
        }

        // Labels are appended in increasing rank order by construction, so
        // they are already sorted; assert in debug builds.
        debug_assert!(labels
            .iter()
            .all(|l| l.windows(2).all(|w| w[0].hub_rank < w[1].hub_rank)));
        Self::from_per_vertex(labels, order)
    }

    /// Flattens per-vertex label vectors into the CSR arena.
    fn from_per_vertex(labels: Vec<Vec<LabelEntry>>, rank_to_node: Vec<NodeId>) -> Self {
        let mut label_offsets = Vec::with_capacity(labels.len() + 1);
        label_offsets.push(0usize);
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut entries = Vec::with_capacity(total);
        for label in &labels {
            entries.extend_from_slice(label);
            label_offsets.push(entries.len());
        }
        HubLabels {
            label_offsets,
            entries,
            rank_to_node,
        }
    }

    /// Exact shortest-path distance between `s` and `t`, or `None` when they
    /// are disconnected.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        if s == t {
            return Some(0.0);
        }
        let d = query_labels(self.label(s), self.label(t));
        if d == INFINITY {
            None
        } else {
            Some(d)
        }
    }

    /// Number of vertices the labeling covers.
    pub fn node_count(&self) -> usize {
        self.rank_to_node.len()
    }

    /// Number of label entries over all vertices (an index-size measure).
    pub fn total_label_entries(&self) -> usize {
        self.entries.len()
    }

    /// Mean label size per vertex.
    pub fn mean_label_size(&self) -> f64 {
        if self.rank_to_node.is_empty() {
            0.0
        } else {
            self.entries.len() as f64 / self.rank_to_node.len() as f64
        }
    }

    /// The hub vertex (original node id) at a construction rank.
    pub fn hub_node(&self, rank: u32) -> NodeId {
        self.rank_to_node[rank as usize]
    }

    /// Label of a vertex, sorted by hub rank (exposed for diagnostics and
    /// tests).
    pub fn label(&self, v: NodeId) -> &[LabelEntry] {
        let v = v as usize;
        &self.entries[self.label_offsets[v]..self.label_offsets[v + 1]]
    }

    /// Writes the labeling to `path` in the versioned, checksummed binary
    /// format of [`persist`], stamped with the fingerprint of the network
    /// the labels were built from so [`HubLabels::load`] can refuse to
    /// apply them to any other network.
    ///
    /// # Examples
    ///
    /// Build once, persist, and reload for later runs — the round-trip is
    /// bit-identical, which is what lets a paper-scale index (≈90 s to
    /// build) boot from disk in seconds instead:
    ///
    /// ```
    /// use roadnet::{GeneratorConfig, HubLabels, NetworkKind};
    ///
    /// let graph = GeneratorConfig {
    ///     kind: NetworkKind::Grid { rows: 6, cols: 6 },
    ///     ..GeneratorConfig::default()
    /// }
    /// .generate();
    /// let labels = HubLabels::build(&graph);
    /// let path = std::env::temp_dir().join("hub_labels_doctest.hlbl");
    /// labels.save(&graph, &path).unwrap();
    /// let reloaded = HubLabels::load(&path, &graph).unwrap();
    /// assert_eq!(reloaded, labels);
    /// std::fs::remove_file(&path).ok();
    /// ```
    pub fn save<P: AsRef<Path>>(&self, graph: &RoadNetwork, path: P) -> Result<(), RoadNetError> {
        persist::save(self, graph.fingerprint(), path.as_ref())
    }

    /// Reads a labeling previously written by [`HubLabels::save`],
    /// verifying that it was built for `graph`. Truncated or corrupted
    /// files, and files built for a *different* network (the embedded
    /// fingerprint disagrees), are reported as [`RoadNetError::Persist`],
    /// never a panic and never silently wrong distances.
    ///
    /// # Examples
    ///
    /// ```
    /// use roadnet::{GeneratorConfig, HubLabels, NetworkKind, RoadNetError};
    ///
    /// let graph = GeneratorConfig {
    ///     kind: NetworkKind::Grid { rows: 4, cols: 4 },
    ///     ..GeneratorConfig::default()
    /// }
    /// .generate();
    /// let path = std::env::temp_dir().join("hub_labels_doctest_corrupt.hlbl");
    /// std::fs::write(&path, b"not a label file").unwrap();
    /// assert!(matches!(
    ///     HubLabels::load(&path, &graph),
    ///     Err(RoadNetError::Persist(_))
    /// ));
    /// std::fs::remove_file(&path).ok();
    /// ```
    pub fn load<P: AsRef<Path>>(path: P, graph: &RoadNetwork) -> Result<Self, RoadNetError> {
        persist::load(path.as_ref(), graph.fingerprint())
    }
}

/// Reusable pruned-Dijkstra scratch: tentative distances plus a
/// processed-once mark, reset via the touched list in O(search size), and
/// the root's label spread into a dense by-rank array so the pruning test
/// is a linear scan of the visited vertex's label with O(1) lookups.
struct SearchScratch {
    dist: Vec<Weight>,
    done: Vec<bool>,
    touched: Vec<NodeId>,
    root_dist_by_rank: Vec<Weight>,
}

impl SearchScratch {
    fn new(n: usize) -> Self {
        SearchScratch {
            dist: vec![INFINITY; n],
            done: vec![false; n],
            touched: Vec::new(),
            root_dist_by_rank: vec![INFINITY; n],
        }
    }
}

/// True when the labels certify a root-to-vertex distance of at most
/// `d + PRUNE_EPS`, given the root's label spread into `root_dist_by_rank`.
#[inline]
fn certified(root_dist_by_rank: &[Weight], label_v: &[LabelEntry], d: Weight) -> bool {
    for e in label_v {
        if root_dist_by_rank[e.hub_rank as usize] + e.dist <= d + PRUNE_EPS {
            return true;
        }
    }
    false
}

/// One pruned Dijkstra from `root`, pruning against the frozen `labels`.
/// Returns the candidate label entries `(vertex, distance)` in visitation
/// order. Matches the sequential algorithm exactly when `labels` holds
/// every rank below the root's (the `done` mark reproduces the sequential
/// dedup of equal-distance duplicates, which there falls out of the
/// just-added label).
fn pruned_dijkstra(
    graph: &RoadNetwork,
    labels: &[Vec<LabelEntry>],
    root: NodeId,
    scratch: &mut SearchScratch,
) -> Vec<(NodeId, Weight)> {
    let SearchScratch {
        dist,
        done,
        touched,
        root_dist_by_rank,
    } = scratch;
    let root_label = &labels[root as usize];
    for e in root_label {
        root_dist_by_rank[e.hub_rank as usize] = e.dist;
    }
    let mut out = Vec::new();
    let mut heap = BinaryHeap::new();
    dist[root as usize] = 0.0;
    touched.push(root);
    heap.push(HeapEntry::new(0.0, root));
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        let d = cost.0;
        if d > dist[node as usize] || done[node as usize] {
            continue;
        }
        done[node as usize] = true;
        // Prune: if the frozen labels already certify a distance <= d
        // between root and node, this node (and everything reached through
        // it at larger cost) gains nothing from a new label.
        if certified(root_dist_by_rank, &labels[node as usize], d) {
            continue;
        }
        out.push((node, d));
        for (v, w) in graph.neighbors(node) {
            let nd = d + w;
            if nd < dist[v as usize] {
                if dist[v as usize] == INFINITY {
                    touched.push(v);
                }
                dist[v as usize] = nd;
                heap.push(HeapEntry::new(nd, v));
            }
        }
    }
    for &t in touched.iter() {
        dist[t as usize] = INFINITY;
        done[t as usize] = false;
    }
    touched.clear();
    for e in root_label {
        root_dist_by_rank[e.hub_rank as usize] = INFINITY;
    }
    out
}

/// Merge-intersects two rank-sorted labels and returns the minimum combined
/// distance.
fn query_labels(a: &[LabelEntry], b: &[LabelEntry]) -> Weight {
    let mut i = 0;
    let mut j = 0;
    let mut best = INFINITY;
    while i < a.len() && j < b.len() {
        match a[i].hub_rank.cmp(&b[j].hub_rank) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].dist + b[j].dist;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Computes the construction ordering for a given strategy.
fn vertex_order(graph: &RoadNetwork, ordering: HubOrdering) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut score = vec![0.0f64; n];
    match ordering {
        HubOrdering::Contraction => {
            return ContractionOrder::compute(graph).order().to_vec();
        }
        HubOrdering::Degree => {
            for (v, s) in score.iter_mut().enumerate() {
                *s = graph.degree(v as NodeId) as f64;
            }
        }
        HubOrdering::SampledBetweenness { samples } => {
            // Count how often each vertex appears on sampled shortest-path
            // trees; vertices on many shortest paths make good hubs.
            let crate_engine = crate::dijkstra::DijkstraEngine::new(graph);
            let samples = samples.max(1).min(n);
            let stride = (n / samples).max(1);
            for s in (0..n).step_by(stride) {
                let tree = crate_engine.search(s as NodeId);
                for v in 0..n {
                    let mut cur = v;
                    let mut hops = 0usize;
                    while tree.parent[cur] != u32::MAX && hops < n {
                        cur = tree.parent[cur] as usize;
                        score[cur] += 1.0;
                        hops += 1;
                    }
                }
            }
            for (v, s) in score.iter_mut().enumerate() {
                // Degree as a tie-break refinement.
                *s += graph.degree(v as NodeId) as f64 * 1e-3;
            }
        }
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by(|&a, &b| {
        score[b as usize]
            .partial_cmp(&score[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraEngine;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::oracle::ShortestPathEngine;
    use crate::types::{approx_eq, Point};

    #[test]
    fn single_edge() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(5.0, 0.0));
        b.add_edge(0, 1, 5.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 1), Some(5.0));
        assert_eq!(hl.distance(0, 0), Some(0.0));
    }

    #[test]
    fn disconnected_pair_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_edge(0, 1, 2.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 2), None);
        assert_eq!(hl.distance(2, 1), None);
    }

    #[test]
    fn exact_on_grid_all_pairs() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 7, cols: 6 },
            seed: 9,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        let dij = DijkstraEngine::new(&g);
        for s in 0..g.node_count() as NodeId {
            let tree = dij.search(s);
            for t in 0..g.node_count() as NodeId {
                let expect = tree.distance_to(t);
                let got = hl.distance(s, t);
                match (expect, got) {
                    (Some(a), Some(b)) => assert!(approx_eq(a, b), "{s}->{t}: {a} vs {b}"),
                    (None, None) => {}
                    _ => panic!("reachability mismatch {s}->{t}"),
                }
            }
        }
    }

    #[test]
    fn exact_with_legacy_orderings() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::RingRadial {
                rings: 4,
                spokes: 9,
            },
            seed: 17,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as NodeId;
        for ordering in [
            HubOrdering::Degree,
            HubOrdering::SampledBetweenness { samples: 8 },
        ] {
            let hl = HubLabels::build_with(&g, ordering);
            for (s, t) in (0..40).map(|i| ((i * 7) % n, (i * 31 + 3) % n)) {
                let expect = dij.distance(s, t);
                let got = hl.distance(s, t);
                match (expect, got) {
                    (Some(a), Some(b)) => assert!(approx_eq(a, b)),
                    (None, None) => {}
                    _ => panic!("reachability mismatch {s}->{t}"),
                }
            }
        }
    }

    #[test]
    fn labels_are_rank_sorted_and_nonempty() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 5 },
            seed: 1,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        assert!(hl.total_label_entries() >= g.node_count());
        assert!(hl.mean_label_size() >= 1.0);
        for v in 0..g.node_count() as NodeId {
            let l = hl.label(v);
            assert!(!l.is_empty());
            assert!(l.windows(2).all(|w| w[0].hub_rank < w[1].hub_rank));
        }
        // The top-ranked hub labels itself at distance zero.
        let top = hl.hub_node(0);
        assert!(hl
            .label(top)
            .iter()
            .any(|e| e.hub_rank == 0 && e.dist == 0.0));
    }

    #[test]
    fn pruning_keeps_labels_smaller_than_full_landmarks() {
        // With pruning, total entries must be well below n^2 even on a dense
        // small grid.
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 2,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        let n = g.node_count();
        assert!(hl.total_label_entries() < n * n / 2);
    }

    #[test]
    fn contraction_ordering_beats_betweenness_on_label_size() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 16, cols: 16 },
            seed: 4,
            edge_dropout: 0.05,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let ch = HubLabels::build_with(&g, HubOrdering::Contraction);
        let bt = HubLabels::build_with(&g, HubOrdering::SampledBetweenness { samples: 16 });
        assert!(
            ch.mean_label_size() <= bt.mean_label_size(),
            "contraction ordering should not lose on label size: {} vs {}",
            ch.mean_label_size(),
            bt.mean_label_size()
        );
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        for (kind, seed) in [
            (NetworkKind::Grid { rows: 9, cols: 11 }, 5u64),
            (
                NetworkKind::RingRadial {
                    rings: 5,
                    spokes: 11,
                },
                6,
            ),
        ] {
            let cfg = GeneratorConfig {
                kind,
                seed,
                edge_dropout: 0.07,
                ..GeneratorConfig::default()
            };
            let g = cfg.generate();
            for ordering in [HubOrdering::Contraction, HubOrdering::Degree] {
                let reference = HubLabels::build_sequential(&g, ordering);
                for workers in [2usize, 3, 8] {
                    let parallel =
                        HubLabels::build_with_pool(&g, ordering, &WorkPool::new(workers));
                    assert_eq!(
                        parallel, reference,
                        "labels diverged at {workers} workers ({kind:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn csr_layout_matches_labels() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 3,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.node_count(), g.node_count());
        let summed: usize = (0..g.node_count() as NodeId)
            .map(|v| hl.label(v).len())
            .sum();
        assert_eq!(summed, hl.total_label_entries());
    }
}

//! Nearest-vertex lookup for mapping raw coordinates onto the network.
//!
//! The paper pre-maps every trip's start/destination coordinates to the
//! closest vertex in the road graph. [`NodeLocator`] reproduces that step
//! with a uniform bucket grid over the network's bounding box so lookups are
//! `O(1)` expected instead of a linear scan over 120k vertices.

use crate::graph::RoadNetwork;
use crate::types::{NodeId, Point};

/// Uniform-grid nearest-vertex index over a road network's node positions.
#[derive(Debug, Clone)]
pub struct NodeLocator {
    min: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    /// `buckets[row * cols + col]` lists node ids whose position falls in the
    /// cell.
    buckets: Vec<Vec<NodeId>>,
    points: Vec<Point>,
}

impl NodeLocator {
    /// Builds a locator with a default cell size derived from node density
    /// (roughly one node per cell on average).
    pub fn new(graph: &RoadNetwork) -> Self {
        let (min, max) = graph.bounding_box();
        let area = ((max.x - min.x).max(1.0)) * ((max.y - min.y).max(1.0));
        let cell = (area / graph.node_count() as f64).sqrt().max(1.0);
        Self::with_cell_size(graph, cell)
    }

    /// Builds a locator with an explicit cell size in meters.
    pub fn with_cell_size(graph: &RoadNetwork, cell: f64) -> Self {
        let (min, max) = graph.bounding_box();
        let cell = cell.max(1e-6);
        let cols = (((max.x - min.x) / cell).floor() as usize + 1).max(1);
        let rows = (((max.y - min.y) / cell).floor() as usize + 1).max(1);
        let mut buckets = vec![Vec::new(); cols * rows];
        let points = graph.points().to_vec();
        for (i, p) in points.iter().enumerate() {
            let c = (((p.x - min.x) / cell).floor() as usize).min(cols - 1);
            let r = (((p.y - min.y) / cell).floor() as usize).min(rows - 1);
            buckets[r * cols + c].push(i as NodeId);
        }
        NodeLocator {
            min,
            cell,
            cols,
            rows,
            buckets,
            points,
        }
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = (((p.x - self.min.x) / self.cell).floor() as isize).clamp(0, self.cols as isize - 1)
            as usize;
        let r = (((p.y - self.min.y) / self.cell).floor() as isize).clamp(0, self.rows as isize - 1)
            as usize;
        (r, c)
    }

    /// The vertex whose position is closest (Euclidean) to `p`.
    ///
    /// Searches the containing cell and expanding rings of cells until a
    /// candidate is found whose distance is no larger than the nearest
    /// unexplored ring could offer; always returns a node because networks
    /// are non-empty.
    pub fn nearest(&self, p: Point) -> NodeId {
        let (r0, c0) = self.cell_of(p);
        let mut best: Option<(NodeId, f64)> = None;
        let max_ring = self.rows.max(self.cols);
        for ring in 0..=max_ring {
            // Once we have a candidate, stop as soon as the closest possible
            // point of the next ring cannot beat it.
            if let Some((_, d)) = best {
                let ring_floor = (ring as f64 - 1.0).max(0.0) * self.cell;
                if d <= ring_floor {
                    break;
                }
            }
            let r_lo = r0.saturating_sub(ring);
            let r_hi = (r0 + ring).min(self.rows - 1);
            let c_lo = c0.saturating_sub(ring);
            let c_hi = (c0 + ring).min(self.cols - 1);
            for r in r_lo..=r_hi {
                for c in c_lo..=c_hi {
                    // Only the boundary of the ring is new; an edge whose
                    // bound was clamped by the grid was already scanned in
                    // a previous ring.
                    let on_boundary = ring == 0
                        || r == r_lo && r0 >= ring
                        || r == r_hi && r0 + ring < self.rows
                        || c == c_lo && c0 >= ring
                        || c == c_hi && c0 + ring < self.cols;
                    if !on_boundary {
                        continue;
                    }
                    for &node in &self.buckets[r * self.cols + c] {
                        let d = self.points[node as usize].distance(&p);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((node, d));
                        }
                    }
                }
            }
        }
        best.expect("non-empty network always has a nearest node").0
    }

    /// Nearest vertex and its Euclidean distance from `p`.
    pub fn nearest_with_distance(&self, p: Point) -> (NodeId, f64) {
        let n = self.nearest(p);
        (n, self.points[n as usize].distance(&p))
    }

    /// All vertices within Euclidean radius `radius` of `p`.
    pub fn within_radius(&self, p: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        let r_cells = (radius / self.cell).ceil() as usize + 1;
        let (r0, c0) = self.cell_of(p);
        let r_lo = r0.saturating_sub(r_cells);
        let r_hi = (r0 + r_cells).min(self.rows - 1);
        let c_lo = c0.saturating_sub(r_cells);
        let c_hi = (c0 + r_cells).min(self.cols - 1);
        for r in r_lo..=r_hi {
            for c in c_lo..=c_hi {
                for &node in &self.buckets[r * self.cols + c] {
                    if self.points[node as usize].distance(&p) <= radius {
                        out.push(node);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};

    fn brute_nearest(g: &RoadNetwork, p: Point) -> NodeId {
        (0..g.node_count() as NodeId)
            .min_by(|&a, &b| {
                g.point(a)
                    .distance(&p)
                    .partial_cmp(&g.point(b).distance(&p))
                    .unwrap()
            })
            .unwrap()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 10, cols: 12 },
            seed: 5,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let loc = NodeLocator::new(&g);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(133.0, 977.0),
            Point::new(2600.0, 2100.0),
            Point::new(-500.0, -500.0),
            Point::new(10_000.0, 10_000.0),
            Point::new(612.5, 612.5),
        ];
        for p in probes {
            let got = loc.nearest(p);
            let want = brute_nearest(&g, p);
            assert_eq!(
                g.point(got).distance(&p),
                g.point(want).distance(&p),
                "probe {p}: got node {got}, brute force {want}"
            );
        }
    }

    #[test]
    fn nearest_with_distance_is_consistent() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::RingRadial {
                rings: 4,
                spokes: 12,
            },
            seed: 1,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let loc = NodeLocator::new(&g);
        let (n, d) = loc.nearest_with_distance(Point::new(10.0, 10.0));
        assert!((g.point(n).distance(&Point::new(10.0, 10.0)) - d).abs() < 1e-9);
    }

    #[test]
    fn within_radius_contains_exactly_in_range_nodes() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 2,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let loc = NodeLocator::new(&g);
        let p = Point::new(500.0, 500.0);
        let radius = 600.0;
        let got = loc.within_radius(p, radius);
        let want: Vec<NodeId> = (0..g.node_count() as NodeId)
            .filter(|&n| g.point(n).distance(&p) <= radius)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn custom_cell_size_still_correct() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 8,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        for cell in [10.0, 100.0, 5000.0] {
            let loc = NodeLocator::with_cell_size(&g, cell);
            let p = Point::new(777.0, 312.0);
            assert_eq!(
                g.point(loc.nearest(p)).distance(&p),
                g.point(brute_nearest(&g, p)).distance(&p)
            );
        }
    }
}

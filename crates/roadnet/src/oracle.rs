//! Distance/path oracle abstractions used by the scheduling algorithms.
//!
//! The matching algorithms (brute force, branch-and-bound, MIP and the
//! kinetic tree) only need two primitives from the road network: the exact
//! shortest distance between two vertices and, occasionally, the actual
//! shortest path (for driving the vehicle). [`DistanceOracle`] is that
//! interface. [`CachedOracle`] is the sequential production implementation:
//! hub labels (falling back to Dijkstra when labels are disabled) behind the
//! paper's two LRU caches. [`ShardedOracle`](crate::ShardedOracle) is its
//! thread-safe counterpart for the parallel dispatcher. [`MatrixOracle`]
//! pre-computes all pairs and is used by tests and tiny scheduling
//! instances.

use std::cell::RefCell;

use crate::cache::SharedPathCaches;
use crate::dijkstra::{floyd_warshall, DijkstraEngine};
use crate::graph::RoadNetwork;
use crate::hub_label::HubLabels;
use crate::types::{NodeId, Weight, INFINITY};

/// Point-to-point shortest path computation.
///
/// Implemented by every engine in this crate (Dijkstra, A*, bidirectional).
pub trait ShortestPathEngine {
    /// Exact shortest-path distance, or `None` when `t` is unreachable.
    fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight>;
    /// Exact shortest path (cost and vertex sequence), or `None` when
    /// unreachable.
    fn path(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)>;
}

/// The distance/path interface the scheduling layer consumes.
///
/// Implementations take `&self` so a single oracle can be shared by many
/// vehicles; caching implementations use interior mutability.
///
/// # Thread safety
///
/// The trait itself does not require [`Sync`]: [`CachedOracle`] deliberately
/// uses `RefCell` so the sequential dispatch loop pays no synchronisation
/// cost. The parallel dispatcher instead takes `&(dyn DistanceOracle +
/// Sync)`, and implementations meant for it must make `&self` calls safe
/// from concurrent threads — [`ShardedOracle`](crate::ShardedOracle) does so
/// by splitting the LRU caches into independently mutex-guarded shards, and
/// [`MatrixOracle`] is immutable after construction and therefore trivially
/// `Sync`. Every implementation, concurrent or not, must return identical
/// distances/paths for identical arguments regardless of cache state, so
/// swapping oracle implementations never changes matching decisions.
pub trait DistanceOracle {
    /// Shortest distance from `s` to `t`; `INFINITY` when unreachable.
    fn dist(&self, s: NodeId, t: NodeId) -> Weight;

    /// Shortest path from `s` to `t`, inclusive of both endpoints.
    fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>>;

    /// Number of vertices in the underlying network.
    fn node_count(&self) -> usize;

    /// All nodes within `radius` of `s` with their distances (used by the
    /// dispatcher to find candidate pickup vertices). The default
    /// implementation probes every vertex and is only acceptable for tiny
    /// networks; real oracles override it.
    fn nodes_within(&self, s: NodeId, radius: Weight) -> Vec<(NodeId, Weight)> {
        let mut out = Vec::new();
        for t in 0..self.node_count() as NodeId {
            let d = self.dist(s, t);
            if d <= radius {
                out.push((t, d));
            }
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        out
    }
}

/// Counters describing how a [`CachedOracle`] answered its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OracleStats {
    /// Distance queries answered from the LRU distance cache.
    pub distance_cache_hits: u64,
    /// Distance queries that had to consult the underlying engine.
    pub distance_cache_misses: u64,
    /// Path queries answered from the LRU path cache.
    pub path_cache_hits: u64,
    /// Path queries that had to consult the underlying engine.
    pub path_cache_misses: u64,
    /// Total distance queries issued.
    pub distance_queries: u64,
    /// Total path queries issued.
    pub path_queries: u64,
}

impl OracleStats {
    /// Distance-cache hit rate in `[0, 1]`.
    pub fn distance_hit_rate(&self) -> f64 {
        if self.distance_queries == 0 {
            0.0
        } else {
            self.distance_cache_hits as f64 / self.distance_queries as f64
        }
    }
}

/// Which engine a [`CachedOracle`] uses on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleBackend {
    /// Pruned-landmark hub labels for distances, Dijkstra for paths.
    HubLabels,
    /// Plain Dijkstra for everything (no preprocessing cost; slower queries).
    Dijkstra,
}

/// Production oracle: hub labels + Dijkstra behind the paper's LRU caches.
pub struct CachedOracle<'g> {
    graph: &'g RoadNetwork,
    labels: Option<HubLabels>,
    dijkstra: DijkstraEngine<'g>,
    caches: RefCell<SharedPathCaches>,
    stats: RefCell<OracleStats>,
}

impl<'g> CachedOracle<'g> {
    /// Builds an oracle with hub labels and default cache sizes.
    pub fn new(graph: &'g RoadNetwork) -> Self {
        Self::with_options(graph, OracleBackend::HubLabels, 1_000_000, 10_000)
    }

    /// Builds an oracle without hub labels (Dijkstra on every miss).
    pub fn without_labels(graph: &'g RoadNetwork) -> Self {
        Self::with_options(graph, OracleBackend::Dijkstra, 1_000_000, 10_000)
    }

    /// Builds an oracle with explicit backend and cache capacities.
    pub fn with_options(
        graph: &'g RoadNetwork,
        backend: OracleBackend,
        distance_cache: usize,
        path_cache: usize,
    ) -> Self {
        let labels = match backend {
            OracleBackend::HubLabels => Some(HubLabels::build(graph)),
            OracleBackend::Dijkstra => None,
        };
        Self::from_parts(graph, labels, distance_cache, path_cache)
    }

    /// Builds an oracle around pre-built hub labels — typically loaded from
    /// disk with [`HubLabels::load`] so a paper-scale construction is paid
    /// once, not on every process start.
    ///
    /// # Panics
    /// Panics when the labels cover a different number of vertices than
    /// `graph` has (a mismatched file would silently corrupt distances).
    pub fn with_labels(
        graph: &'g RoadNetwork,
        labels: HubLabels,
        distance_cache: usize,
        path_cache: usize,
    ) -> Self {
        assert_eq!(
            labels.node_count(),
            graph.node_count(),
            "hub labels cover {} vertices but the network has {}",
            labels.node_count(),
            graph.node_count()
        );
        Self::from_parts(graph, Some(labels), distance_cache, path_cache)
    }

    fn from_parts(
        graph: &'g RoadNetwork,
        labels: Option<HubLabels>,
        distance_cache: usize,
        path_cache: usize,
    ) -> Self {
        CachedOracle {
            graph,
            labels,
            dijkstra: DijkstraEngine::new(graph),
            caches: RefCell::new(SharedPathCaches::with_capacity(
                graph.node_count(),
                distance_cache,
                path_cache,
            )),
            stats: RefCell::new(OracleStats::default()),
        }
    }

    /// The hub labels backing this oracle, when the backend uses them
    /// (e.g. to persist them with [`HubLabels::save`]).
    pub fn labels(&self) -> Option<&HubLabels> {
        self.labels.as_ref()
    }

    /// The underlying road network.
    pub fn graph(&self) -> &RoadNetwork {
        self.graph
    }

    /// Snapshot of the query counters.
    pub fn stats(&self) -> OracleStats {
        *self.stats.borrow()
    }

    /// Resets the query counters (cache contents are kept).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = OracleStats::default();
    }

    /// Empties both LRU caches (hub labels are kept). Benchmark harnesses
    /// call this between measurement points so that every algorithm starts
    /// from the same cold-cache state.
    pub fn clear_caches(&self) {
        self.caches.borrow_mut().clear();
    }

    /// Computes the exact distance for the unordered pair `{s, t}`, always
    /// in the low-id → high-id direction. The network is undirected, so the
    /// distance is direction-independent mathematically — but a Dijkstra
    /// run from `t` accumulates the same edge weights in a different order
    /// than one from `s` and can differ in the last ULP. Canonicalising
    /// makes the value a pure function of the pair, which is what lets both
    /// cache directions be primed with it and keeps `dist` independent of
    /// cache state (the contract checkpointed replays rely on: a resumed
    /// run's cold caches must reproduce the warm-cache run bit for bit).
    fn compute_distance(&self, s: NodeId, t: NodeId) -> Weight {
        let (a, b) = if s <= t { (s, t) } else { (t, s) };
        match &self.labels {
            Some(hl) => hl.distance(a, b).unwrap_or(INFINITY),
            None => self.dijkstra.distance(a, b).unwrap_or(INFINITY),
        }
    }
}

impl DistanceOracle for CachedOracle<'_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0.0;
        }
        let mut stats = self.stats.borrow_mut();
        stats.distance_queries += 1;
        let mut caches = self.caches.borrow_mut();
        if let Some(d) = caches.get_distance(s, t) {
            stats.distance_cache_hits += 1;
            return d;
        }
        stats.distance_cache_misses += 1;
        drop(caches);
        let d = self.compute_distance(s, t);
        self.caches.borrow_mut().put_distance(s, t, d);
        // The computation is canonicalised per unordered pair, so the
        // reverse distance is bit-identical; prime the cache for it too
        // (halves misses for symmetric call patterns like detour
        // evaluation).
        self.caches.borrow_mut().put_distance(t, s, d);
        d
    }

    fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        if s == t {
            return Some(vec![s]);
        }
        let mut stats = self.stats.borrow_mut();
        stats.path_queries += 1;
        let mut caches = self.caches.borrow_mut();
        if let Some(p) = caches.get_path(s, t) {
            stats.path_cache_hits += 1;
            return Some(p);
        }
        stats.path_cache_misses += 1;
        drop(caches);
        drop(stats);
        let (_, p) = self.dijkstra.path(s, t)?;
        // Deliberately NOT primed into the distance cache: the path
        // engine's cost is accumulated along the query direction and can
        // disagree with the canonical distance in the last ULP, which
        // would make `dist` depend on which queries ran before it.
        self.caches.borrow_mut().put_path(s, t, p.clone());
        Some(p)
    }

    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn nodes_within(&self, s: NodeId, radius: Weight) -> Vec<(NodeId, Weight)> {
        self.dijkstra.nodes_within(s, radius)
    }
}

/// All-pairs oracle backed by a dense matrix (Floyd–Warshall).
///
/// Memory is `O(V^2)`; only use for networks of at most a few thousand
/// vertices (tests, examples and micro-benchmarks of the matchers).
#[derive(Debug, Clone)]
pub struct MatrixOracle {
    dist: Vec<Vec<Weight>>,
    graph: RoadNetwork,
}

impl MatrixOracle {
    /// Precomputes all pairwise distances of `graph`.
    pub fn new(graph: &RoadNetwork) -> Self {
        MatrixOracle {
            dist: floyd_warshall(graph),
            graph: graph.clone(),
        }
    }

    /// The underlying road network (cloned at construction).
    pub fn graph(&self) -> &RoadNetwork {
        &self.graph
    }
}

impl DistanceOracle for MatrixOracle {
    fn dist(&self, s: NodeId, t: NodeId) -> Weight {
        self.dist[s as usize][t as usize]
    }

    fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        DijkstraEngine::new(&self.graph).path(s, t).map(|(_, p)| p)
    }

    fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::sharded::ShardedOracle;
    use crate::types::approx_eq;

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    #[test]
    fn cached_oracle_matches_dijkstra() {
        let g = grid(6, 6, 3);
        let oracle = CachedOracle::new(&g);
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as NodeId;
        for (s, t) in (0..25).map(|i| ((i * 3) % n, (i * 11 + 1) % n)) {
            let expect = dij.distance(s, t).unwrap_or(INFINITY);
            assert!(approx_eq(oracle.dist(s, t), expect));
        }
    }

    #[test]
    fn cached_oracle_counts_hits() {
        let g = grid(5, 5, 1);
        let oracle = CachedOracle::new(&g);
        let _ = oracle.dist(0, 10);
        let _ = oracle.dist(0, 10);
        let _ = oracle.dist(10, 0); // symmetric priming should make this a hit
        let stats = oracle.stats();
        assert_eq!(stats.distance_queries, 3);
        assert_eq!(stats.distance_cache_misses, 1);
        assert_eq!(stats.distance_cache_hits, 2);
        assert!(stats.distance_hit_rate() > 0.5);
        oracle.reset_stats();
        assert_eq!(oracle.stats().distance_queries, 0);
    }

    #[test]
    fn cached_oracle_paths_are_valid() {
        let g = grid(5, 7, 2);
        let oracle = CachedOracle::without_labels(&g);
        let t = (g.node_count() - 1) as NodeId;
        let p = oracle.shortest_path(0, t).unwrap();
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), t);
        let mut acc = 0.0;
        for w in p.windows(2) {
            acc += g.edge_weight(w[0], w[1]).unwrap();
        }
        assert!(approx_eq(acc, oracle.dist(0, t)));
        // Second call comes from the path cache and must be identical.
        assert_eq!(oracle.shortest_path(0, t).unwrap(), p);
        assert_eq!(oracle.stats().path_cache_hits, 1);
    }

    #[test]
    fn dist_is_independent_of_cache_state_and_direction() {
        // Regression test for the replay-divergence bug: priming the
        // reverse direction with a forward-computed value, and priming
        // distances from path-query costs, made `dist` depend on which
        // queries ran before it (Dijkstra sums differ in the last ULP per
        // direction). Canonicalised computation makes every ordering of
        // warm-up queries produce bit-identical answers.
        let g = grid(7, 7, 5);
        let n = g.node_count() as NodeId;
        let pairs: Vec<(NodeId, NodeId)> =
            (0..60).map(|i| ((i * 5) % n, (i * 17 + 3) % n)).collect();
        let reference = CachedOracle::without_labels(&g);
        for &(s, t) in &pairs {
            // Symmetry must hold bitwise on a cold oracle.
            assert_eq!(
                reference.dist(s, t).to_bits(),
                reference.dist(t, s).to_bits()
            );
        }
        // A differently warmed oracle (paths first, reverse direction
        // first) must agree bit for bit.
        let warmed = CachedOracle::without_labels(&g);
        for &(s, t) in &pairs {
            let _ = warmed.shortest_path(s, t);
            let _ = warmed.dist(t, s);
        }
        let sharded = ShardedOracle::without_labels(&g);
        for &(s, t) in &pairs {
            let _ = sharded.shortest_path(t, s);
        }
        for &(s, t) in &pairs {
            let expect = reference.dist(s, t).to_bits();
            assert_eq!(warmed.dist(s, t).to_bits(), expect, "({s}, {t})");
            assert_eq!(sharded.dist(s, t).to_bits(), expect, "({s}, {t})");
        }
    }

    #[test]
    fn self_distance_and_path() {
        let g = grid(3, 3, 0);
        let oracle = CachedOracle::new(&g);
        assert_eq!(oracle.dist(4, 4), 0.0);
        assert_eq!(oracle.shortest_path(4, 4), Some(vec![4]));
    }

    #[test]
    fn matrix_oracle_matches_cached() {
        let g = grid(4, 5, 9);
        let m = MatrixOracle::new(&g);
        let c = CachedOracle::new(&g);
        let n = g.node_count() as NodeId;
        for s in 0..n {
            for t in 0..n {
                assert!(approx_eq(m.dist(s, t), c.dist(s, t)));
            }
        }
        assert_eq!(m.node_count(), g.node_count());
    }

    #[test]
    fn nodes_within_uses_radius() {
        let g = grid(6, 6, 4);
        let oracle = CachedOracle::new(&g);
        let all = oracle.nodes_within(0, f64::INFINITY);
        assert_eq!(all.len(), g.node_count());
        let some = oracle.nodes_within(0, 500.0);
        assert!(some.len() < all.len());
        for (node, d) in &some {
            assert!(*d <= 500.0, "node {node} at distance {d} beyond radius");
        }
    }
}

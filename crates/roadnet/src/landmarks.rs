//! ALT (A*, Landmarks, Triangle inequality) point-to-point engine.
//!
//! The paper's discussion of shortest-path acceleration lists goal-directed
//! techniques (A*, arc flags) alongside hub labeling. ALT is the classic
//! goal-directed method that needs no geometry: a handful of *landmark*
//! vertices are chosen, exact distances from every vertex to each landmark
//! are precomputed, and the triangle inequality turns them into an
//! admissible, consistent lower bound
//! `h(v) = max_L |d(v, L) − d(t, L)|` used by A*. Queries are exact; the
//! preprocessing is a few full Dijkstra runs — far cheaper than hub labels
//! to build, slower to query, which is exactly the trade-off a deployment
//! can pick between (the cached oracle accepts either).

use std::collections::BinaryHeap;

use crate::dijkstra::DijkstraEngine;
use crate::graph::RoadNetwork;
use crate::oracle::ShortestPathEngine;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// How landmark vertices are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// Vertices spread evenly over the node-id range. Cheapest to compute;
    /// fine for grid-like generated networks whose ids follow the layout.
    Stride,
    /// Farthest-point selection: start from an arbitrary vertex and
    /// repeatedly add the vertex farthest (in road distance) from the
    /// landmarks chosen so far. The standard choice for road networks.
    Farthest,
}

/// Exact ALT engine over a road network.
#[derive(Debug, Clone)]
pub struct AltEngine<'g> {
    graph: &'g RoadNetwork,
    /// `dist_to[l][v]` = exact distance between landmark `l` and vertex `v`
    /// (undirected network, so "to" and "from" coincide).
    dist_to: Vec<Vec<Weight>>,
    landmarks: Vec<NodeId>,
}

impl<'g> AltEngine<'g> {
    /// Builds an engine with `count` landmarks chosen by the farthest-point
    /// strategy.
    pub fn new(graph: &'g RoadNetwork, count: usize) -> Self {
        Self::with_strategy(graph, count, LandmarkStrategy::Farthest)
    }

    /// Builds an engine with an explicit landmark-selection strategy.
    pub fn with_strategy(graph: &'g RoadNetwork, count: usize, strategy: LandmarkStrategy) -> Self {
        let n = graph.node_count();
        let count = count.clamp(1, n.max(1));
        let dijkstra = DijkstraEngine::new(graph);
        let mut landmarks: Vec<NodeId> = Vec::with_capacity(count);
        let mut dist_to: Vec<Vec<Weight>> = Vec::with_capacity(count);
        match strategy {
            LandmarkStrategy::Stride => {
                let stride = (n / count).max(1);
                for i in 0..count {
                    let l = ((i * stride) % n) as NodeId;
                    landmarks.push(l);
                    dist_to.push(dijkstra.search(l).dist);
                }
            }
            LandmarkStrategy::Farthest => {
                // Seed with vertex 0, then repeatedly take the vertex whose
                // minimum distance to the current landmark set is largest
                // (ignoring unreachable vertices).
                let mut current = 0 as NodeId;
                for _ in 0..count {
                    landmarks.push(current);
                    dist_to.push(dijkstra.search(current).dist);
                    // Pick the next landmark.
                    let mut best: Option<(NodeId, Weight)> = None;
                    for v in 0..n as NodeId {
                        if landmarks.contains(&v) {
                            continue;
                        }
                        let d = dist_to
                            .iter()
                            .map(|row| row[v as usize])
                            .fold(INFINITY, f64::min);
                        if d.is_finite() && best.is_none_or(|(_, bd)| d > bd) {
                            best = Some((v, d));
                        }
                    }
                    match best {
                        Some((v, _)) => current = v,
                        None => break,
                    }
                }
            }
        }
        AltEngine {
            graph,
            dist_to,
            landmarks,
        }
    }

    /// The selected landmark vertices.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Admissible lower bound on `d(v, t)` from the triangle inequality over
    /// all landmarks.
    pub fn lower_bound(&self, v: NodeId, t: NodeId) -> Weight {
        let mut best: Weight = 0.0;
        for row in &self.dist_to {
            let dv = row[v as usize];
            let dt = row[t as usize];
            if dv.is_finite() && dt.is_finite() {
                let bound = (dv - dt).abs();
                if bound > best {
                    best = bound;
                }
            }
        }
        best
    }

    fn point_to_point(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        if s == t {
            return Some((0.0, vec![s]));
        }
        let n = self.graph.node_count();
        let mut g_score = vec![INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        let mut closed = vec![false; n];
        let mut heap = BinaryHeap::new();
        g_score[s as usize] = 0.0;
        heap.push(HeapEntry::new(self.lower_bound(s, t), s));
        while let Some(HeapEntry { node, .. }) = heap.pop() {
            if closed[node as usize] {
                continue;
            }
            closed[node as usize] = true;
            if node == t {
                let mut path = vec![t];
                let mut cur = t;
                while cur != s {
                    cur = parent[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some((g_score[t as usize], path));
            }
            let gd = g_score[node as usize];
            for (v, w) in self.graph.neighbors(node) {
                if closed[v as usize] {
                    continue;
                }
                let nd = gd + w;
                if nd < g_score[v as usize] {
                    g_score[v as usize] = nd;
                    parent[v as usize] = node;
                    heap.push(HeapEntry::new(nd + self.lower_bound(v, t), v));
                }
            }
        }
        None
    }
}

impl ShortestPathEngine for AltEngine<'_> {
    fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        self.point_to_point(s, t).map(|(d, _)| d)
    }

    fn path(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        self.point_to_point(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::types::{approx_eq, Point};

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            edge_dropout: 0.05,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    #[test]
    fn trivial_cases() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(2.0, 0.0));
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let alt = AltEngine::new(&g, 2);
        assert_eq!(alt.distance(0, 0), Some(0.0));
        assert_eq!(alt.distance(0, 1), Some(1.0));
        assert_eq!(alt.distance(0, 2), None, "disconnected vertex");
    }

    #[test]
    fn matches_dijkstra_for_both_strategies() {
        let g = grid(9, 8, 13);
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as NodeId;
        for strategy in [LandmarkStrategy::Stride, LandmarkStrategy::Farthest] {
            let alt = AltEngine::with_strategy(&g, 6, strategy);
            for (s, t) in (0..40).map(|i| ((i * 13) % n, (i * 31 + 5) % n)) {
                let a = dij.distance(s, t);
                let b = alt.distance(s, t);
                match (a, b) {
                    (Some(x), Some(y)) => {
                        assert!(approx_eq(x, y), "{strategy:?} {s}->{t}: {x} vs {y}")
                    }
                    (None, None) => {}
                    other => panic!("{strategy:?} reachability mismatch {s}->{t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_admissible_and_zero_at_target() {
        let g = grid(7, 7, 3);
        let alt = AltEngine::new(&g, 4);
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as NodeId;
        for (v, t) in (0..25).map(|i| ((i * 7) % n, (i * 11 + 2) % n)) {
            let lb = alt.lower_bound(v, t);
            assert!(lb >= 0.0);
            assert!(approx_eq(alt.lower_bound(t, t), 0.0));
            if let Some(d) = dij.distance(v, t) {
                assert!(
                    lb <= d + 1e-6,
                    "lower bound {lb} exceeds true distance {d} for {v}->{t}"
                );
            }
        }
    }

    #[test]
    fn farthest_landmarks_are_distinct_and_spread_out() {
        let g = grid(10, 10, 1);
        let alt = AltEngine::new(&g, 5);
        let lms = alt.landmarks();
        assert_eq!(lms.len(), 5);
        let mut unique = lms.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5, "landmarks must be distinct");
        // Spread: the pairwise Euclidean spacing of farthest-point landmarks
        // should comfortably exceed one block.
        let mut min_spacing = f64::INFINITY;
        for (i, &a) in lms.iter().enumerate() {
            for &b in &lms[i + 1..] {
                min_spacing = min_spacing.min(g.euclidean(a, b));
            }
        }
        assert!(min_spacing > 250.0, "landmarks too close: {min_spacing}");
    }

    #[test]
    fn landmark_count_is_clamped() {
        let g = grid(3, 3, 2);
        let alt = AltEngine::new(&g, 100);
        assert!(alt.landmarks().len() <= g.node_count());
        assert!(!alt.landmarks().is_empty());
        // Still exact.
        let dij = DijkstraEngine::new(&g);
        assert_eq!(alt.distance(0, 8), dij.distance(0, 8));
    }

    #[test]
    fn path_is_a_valid_walk() {
        let g = grid(8, 6, 9);
        let alt = AltEngine::new(&g, 4);
        let t = (g.node_count() - 1) as NodeId;
        let (d, p) = alt.path(0, t).unwrap();
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), t);
        let mut acc = 0.0;
        for w in p.windows(2) {
            acc += g.edge_weight(w[0], w[1]).expect("edge exists");
        }
        assert!(approx_eq(acc, d));
    }
}

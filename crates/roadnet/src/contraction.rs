//! Contraction-hierarchy-style vertex ordering for hub labeling.
//!
//! Pruned landmark labeling (see [`crate::hub_label`]) is exact for *any*
//! vertex ordering, but its cost is exquisitely sensitive to ordering
//! quality: every label entry is one pruned-Dijkstra visit, and a good
//! ordering lets early hubs prune almost everything. The degree and
//! sampled-betweenness heuristics the oracle shipped with stop working past
//! a few thousand vertices — on grid-like networks they pick hubs that
//! cover overlapping regions and label sizes (and therefore build time)
//! grow superlinearly.
//!
//! This module computes the ordering the CH literature uses instead: nodes
//! are "contracted" one at a time, cheapest first, where the cost of
//! contracting a node combines the *edge difference* (shortcuts that would
//! have to be added to preserve distances, minus edges removed) with the
//! number of already-contracted neighbours (spreading contraction evenly
//! across the network). The node contracted *last* is the most important
//! and becomes hub rank 0. Priorities are maintained lazily: a node popped
//! from the queue is re-evaluated and re-queued unless its priority is
//! still minimal, which avoids the O(V log V) cascade of exact updates.
//!
//! Only the *ordering* leaves this module. The shortcut edges built along
//! the way exist to keep the overlay graph's distances faithful while
//! later witness searches run; they are dropped when ordering finishes,
//! and the hub-label build then runs plain pruned Dijkstras over the
//! original graph in the computed order. That keeps the labeling exact
//! even though witness searches are capped heuristics: a mis-judged
//! shortcut can only degrade ordering quality, never correctness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// Tuning knobs for the lazy contraction ordering.
///
/// The defaults are chosen for road-like planar networks and trade a
/// little ordering quality for near-linear construction; all three caps
/// bound the witness searches that decide whether a shortcut is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContractionConfig {
    /// Maximum nodes one witness search may settle before giving up;
    /// unreached targets are conservatively assumed to need a shortcut.
    /// One search runs per *source* neighbour (not per pair), covering all
    /// of that source's targets at once. This cap applies when a node is
    /// actually contracted (shortcuts are committed).
    pub witness_settle_limit: usize,
    /// Maximum hops a witness path may take (road-network witnesses are
    /// short; deep searches are almost never worth their cost).
    pub witness_hop_limit: usize,
}

impl Default for ContractionConfig {
    fn default() -> Self {
        ContractionConfig {
            witness_settle_limit: 256,
            witness_hop_limit: 16,
        }
    }
}

/// The result of contracting a road network: a total order over its
/// vertices by increasing importance of contraction, exposed both ways.
#[derive(Debug, Clone)]
pub struct ContractionOrder {
    /// `order[rank] = node`: rank 0 is the most important vertex (the last
    /// one contracted), matching what [`crate::hub_label`] expects.
    order: Vec<NodeId>,
    /// Inverse permutation: `rank_of[node] = rank`.
    rank_of: Vec<u32>,
    /// Shortcut edges added while contracting (diagnostic; the hub-label
    /// build does not use them).
    shortcuts: usize,
}

impl ContractionOrder {
    /// Computes the ordering with default tuning.
    pub fn compute(graph: &RoadNetwork) -> Self {
        Self::compute_with(graph, ContractionConfig::default())
    }

    /// Computes the ordering with explicit tuning knobs.
    pub fn compute_with(graph: &RoadNetwork, config: ContractionConfig) -> Self {
        Contractor::new(graph, config).run()
    }

    /// Vertices from most to least important (`order[0]` = top hub).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Rank of a vertex (0 = most important).
    pub fn rank(&self, node: NodeId) -> u32 {
        self.rank_of[node as usize]
    }

    /// Number of shortcut edges the contraction added (a quality
    /// diagnostic: fewer shortcuts per node means the ordering found
    /// small separators).
    pub fn shortcut_count(&self) -> usize {
        self.shortcuts
    }
}

/// Live overlay-graph state during contraction.
struct Contractor<'g> {
    graph: &'g RoadNetwork,
    config: ContractionConfig,
    /// Overlay adjacency between *live* (not yet contracted) nodes; parallel
    /// edges are collapsed to their minimum weight on insertion.
    adj: Vec<Vec<(NodeId, Weight)>>,
    /// True once a node has been contracted.
    contracted: Vec<bool>,
    /// Number of contracted neighbours (the "deleted neighbours" term).
    deleted_neighbors: Vec<u32>,
    /// Scratch for witness searches: tentative distances, with a touched
    /// list for O(search) reset, and a reusable heap buffer.
    dist: Vec<Weight>,
    hops: Vec<u32>,
    touched: Vec<NodeId>,
    is_target: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    shortcuts: usize,
}

/// Priority-queue key: lower contracts earlier; ties break on node id so
/// the ordering is deterministic across runs and platforms.
type QueueKey = (i64, NodeId);

impl<'g> Contractor<'g> {
    fn new(graph: &'g RoadNetwork, config: ContractionConfig) -> Self {
        let n = graph.node_count();
        let mut adj: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); n];
        for u in 0..n as NodeId {
            for (v, w) in graph.neighbors(u) {
                upsert_min(&mut adj[u as usize], v, w);
            }
        }
        Contractor {
            graph,
            config,
            adj,
            contracted: vec![false; n],
            deleted_neighbors: vec![0; n],
            dist: vec![INFINITY; n],
            hops: vec![0; n],
            touched: Vec::new(),
            is_target: vec![false; n],
            heap: BinaryHeap::new(),
            shortcuts: 0,
        }
    }

    fn run(mut self) -> ContractionOrder {
        let n = self.graph.node_count();
        let mut queue: BinaryHeap<Reverse<QueueKey>> = BinaryHeap::with_capacity(n);
        // `cached[v]` is the most recent priority pushed for `v`; queue
        // entries with a different key are stale and skipped without any
        // recomputation.
        let mut cached: Vec<i64> = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            let p = self.priority(v);
            cached.push(p);
            queue.push(Reverse((p, v)));
        }
        // Contraction order, least important first.
        let mut contraction_order: Vec<NodeId> = Vec::with_capacity(n);
        while let Some(Reverse((key, v))) = queue.pop() {
            if self.contracted[v as usize] || key != cached[v as usize] {
                continue; // stale duplicate entry
            }
            // Lazy update: re-evaluate; if the node no longer beats the
            // next-best candidate, push it back with its fresh priority.
            let fresh = self.priority(v);
            if fresh > key {
                cached[v as usize] = fresh;
                if let Some(&Reverse((next_key, next_v))) = queue.peek() {
                    if (fresh, v) > (next_key, next_v) {
                        queue.push(Reverse((fresh, v)));
                        continue;
                    }
                }
            }
            self.contract(v);
            contraction_order.push(v);
        }
        debug_assert_eq!(contraction_order.len(), n);
        // Hub rank 0 = most important = contracted last.
        contraction_order.reverse();
        let order = contraction_order;
        let mut rank_of = vec![0u32; n];
        for (rank, &node) in order.iter().enumerate() {
            rank_of[node as usize] = rank as u32;
        }
        ContractionOrder {
            order,
            rank_of,
            shortcuts: self.shortcuts,
        }
    }

    /// Live neighbours of `v` (skipping contracted ones).
    fn live_neighbors(&self, v: NodeId) -> Vec<(NodeId, Weight)> {
        self.adj[v as usize]
            .iter()
            .copied()
            .filter(|&(u, _)| !self.contracted[u as usize])
            .collect()
    }

    /// Contraction priority of `v`: `edge_difference + deleted_neighbors`,
    /// both scaled to integers so the queue order is exact. Lower is
    /// contracted earlier.
    ///
    /// The shortcut count here is an *estimate* from 1-hop witnesses only
    /// (a direct live edge `(a, b)` no longer than the path through `v`).
    /// Estimation runs on every priority (re-)evaluation — orders of
    /// magnitude more often than contraction — so it must not search;
    /// committed shortcuts always run the real bounded witness search.
    fn priority(&mut self, v: NodeId) -> i64 {
        let neighbors = self.live_neighbors(v);
        let shortcuts = self.estimate_shortcuts(&neighbors);
        let edge_diff = shortcuts as i64 - neighbors.len() as i64;
        // Weights follow the classic CH recipe: edge difference dominates,
        // deleted neighbours keep contraction spatially uniform.
        4 * edge_diff + self.deleted_neighbors[v as usize] as i64
    }

    /// 1-hop witness estimate of the shortcuts needed to contract a node
    /// with the given live neighbourhood: a pair `(a, b)` counts unless a
    /// direct live edge already covers the path through the node. One scan
    /// of each source's adjacency list covers all of its targets, so the
    /// estimate is `O(degree^2)` even when adjacency lists are long.
    fn estimate_shortcuts(&mut self, neighbors: &[(NodeId, Weight)]) -> usize {
        if neighbors.len() < 2 {
            return 0;
        }
        let mut added = 0;
        for (i, &(a, wa)) in neighbors.iter().enumerate() {
            let targets = &neighbors[i + 1..];
            if targets.is_empty() {
                break;
            }
            for &(b, _) in targets {
                self.is_target[b as usize] = true;
            }
            for &(t, w) in &self.adj[a as usize] {
                if self.is_target[t as usize] && w < self.dist[t as usize] {
                    self.dist[t as usize] = w;
                }
            }
            for &(b, wb) in targets {
                self.is_target[b as usize] = false;
                if self.dist[b as usize] > wa + wb + 1e-9 {
                    added += 1;
                }
                self.dist[b as usize] = INFINITY;
            }
        }
        added
    }

    /// Inserts the shortcuts required to contract `v` given its live
    /// neighbourhood.
    ///
    /// One bounded witness search runs per *source* neighbour `a`,
    /// covering every pair `(a, b)` with `b` after `a` in the list; a
    /// shortcut `(a, b)` is added only when the search found no path of
    /// length at most `w(a,v) + w(v,b)` that avoids `v`. The search stops
    /// as soon as every target of the source has been settled, which in
    /// the dense quasi-clique at the top of the hierarchy happens after a
    /// single expansion: earlier shortcuts connect the neighbours
    /// directly.
    fn commit_shortcuts(&mut self, v: NodeId, neighbors: &[(NodeId, Weight)]) {
        if neighbors.len() < 2 {
            return;
        }
        let mut hard: Vec<(NodeId, Weight)> = Vec::new();
        for (i, &(a, wa)) in neighbors.iter().enumerate() {
            let targets = &neighbors[i + 1..];
            if targets.is_empty() {
                break;
            }
            // Heapless 1+2-hop witness pass: one scan of `a`'s adjacency
            // (and its neighbours' lists) covers the overwhelming majority
            // of pairs on road-like overlays — witnesses usually just go
            // around the block. Only targets it leaves unwitnessed pay for
            // a real bounded Dijkstra below.
            for &(b, _) in targets {
                self.is_target[b as usize] = true;
            }
            // The 2-hop part is budgeted: in the dense quasi-clique at the
            // top of the hierarchy neighbour lists are long and the 1-hop
            // pass (direct clique edges) already witnesses nearly every
            // pair, so spending O(adj^2) there buys nothing.
            let mut two_hop_budget = 256usize;
            {
                let adj = &self.adj;
                let dist = &mut self.dist;
                let is_target = &self.is_target;
                let contracted = &self.contracted;
                for &(x, wx) in &adj[a as usize] {
                    if x == v || contracted[x as usize] {
                        continue;
                    }
                    if is_target[x as usize] && wx < dist[x as usize] {
                        dist[x as usize] = wx;
                    }
                    let list = &adj[x as usize];
                    if two_hop_budget == 0 {
                        continue;
                    }
                    two_hop_budget = two_hop_budget.saturating_sub(list.len());
                    for &(t, wt) in list {
                        let d2 = wx + wt;
                        if is_target[t as usize]
                            && t != v
                            && !contracted[t as usize]
                            && d2 < dist[t as usize]
                        {
                            dist[t as usize] = d2;
                        }
                    }
                }
            }
            hard.clear();
            for &(b, wb) in targets {
                if self.dist[b as usize] > wa + wb + 1e-9 {
                    hard.push((b, wb));
                } else {
                    self.is_target[b as usize] = false;
                }
                self.dist[b as usize] = INFINITY;
            }
            if !hard.is_empty() && self.config.witness_settle_limit > 0 {
                // `is_target` is still set exactly for the hard targets.
                let limit = wa
                    + hard
                        .iter()
                        .map(|&(_, wb)| wb)
                        .fold(0.0f64, |acc, w| acc.max(w));
                self.witness_search(a, v, limit, hard.len());
                for &(b, wb) in &hard {
                    self.is_target[b as usize] = false;
                    let via = wa + wb;
                    if self.dist[b as usize] > via + 1e-9 {
                        upsert_min(&mut self.adj[a as usize], b, via);
                        upsert_min(&mut self.adj[b as usize], a, via);
                        self.shortcuts += 1;
                    }
                }
                self.reset_scratch();
            } else {
                for &(b, wb) in &hard {
                    self.is_target[b as usize] = false;
                    let via = wa + wb;
                    upsert_min(&mut self.adj[a as usize], b, via);
                    upsert_min(&mut self.adj[b as usize], a, via);
                    self.shortcuts += 1;
                }
            }
            // Committed shortcuts from earlier sources must be visible to
            // later sources' searches (they are: upsert_min writes into
            // the live adjacency the next pass walks).
        }
    }

    /// Bounded Dijkstra from `a` in the live overlay graph with `skip`
    /// removed, leaving tentative distances in `self.dist` for the caller
    /// to inspect (call [`Contractor::reset_scratch`] afterwards). Stops
    /// early once all `remaining_targets` nodes flagged in
    /// `self.is_target` have been settled.
    fn witness_search(&mut self, a: NodeId, skip: NodeId, limit: Weight, remaining_targets: usize) {
        self.heap.clear();
        self.dist[a as usize] = 0.0;
        self.hops[a as usize] = 0;
        self.touched.push(a);
        self.heap.push(HeapEntry::new(0.0, a));
        let mut remaining = remaining_targets;
        let mut settled = 0usize;
        while let Some(HeapEntry { cost, node: u }) = self.heap.pop() {
            let d = cost.0;
            if d > self.dist[u as usize] {
                continue;
            }
            if self.is_target[u as usize] {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            settled += 1;
            if settled > self.config.witness_settle_limit {
                break;
            }
            let hop = self.hops[u as usize];
            if hop as usize >= self.config.witness_hop_limit {
                continue;
            }
            let adj = &self.adj;
            let dist = &mut self.dist;
            let hops = &mut self.hops;
            let touched = &mut self.touched;
            let heap = &mut self.heap;
            let contracted = &self.contracted;
            for &(w, weight) in &adj[u as usize] {
                if w == skip || contracted[w as usize] {
                    continue;
                }
                let nd = d + weight;
                if nd <= limit + 1e-9 && nd < dist[w as usize] {
                    if dist[w as usize] == INFINITY {
                        touched.push(w);
                    }
                    dist[w as usize] = nd;
                    hops[w as usize] = hop + 1;
                    heap.push(HeapEntry::new(nd, w));
                }
            }
        }
    }

    /// Clears the tentative-distance scratch after a witness search.
    fn reset_scratch(&mut self) {
        for i in 0..self.touched.len() {
            let t = self.touched[i];
            self.dist[t as usize] = INFINITY;
            self.hops[t as usize] = 0;
        }
        self.touched.clear();
    }

    /// Contracts `v`: adds the required shortcuts between its live
    /// neighbours and marks it gone.
    fn contract(&mut self, v: NodeId) {
        let neighbors = self.live_neighbors(v);
        self.commit_shortcuts(v, &neighbors);
        self.contracted[v as usize] = true;
        for &(u, _) in &neighbors {
            self.deleted_neighbors[u as usize] += 1;
            // Keep the overlay lists from accumulating dead entries: drop
            // edges into contracted nodes opportunistically once they make
            // up most of the list.
            let live = &self.contracted;
            let list = &mut self.adj[u as usize];
            if list.len() >= 8
                && list.iter().filter(|&&(w, _)| live[w as usize]).count() * 2 >= list.len()
            {
                list.retain(|&(w, _)| !live[w as usize]);
            }
        }
    }
}

/// Inserts `(to, weight)` into an adjacency list, keeping the minimum
/// weight if the edge already exists.
fn upsert_min(list: &mut Vec<(NodeId, Weight)>, to: NodeId, weight: Weight) {
    for entry in list.iter_mut() {
        if entry.0 == to {
            if weight < entry.1 {
                entry.1 = weight;
            }
            return;
        }
    }
    list.push((to, weight));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::types::Point;

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    #[test]
    fn order_is_a_permutation() {
        let g = grid(9, 7, 3);
        let o = ContractionOrder::compute(&g);
        let n = g.node_count();
        assert_eq!(o.order().len(), n);
        let mut seen = vec![false; n];
        for &v in o.order() {
            assert!(!seen[v as usize], "node {v} ranked twice");
            seen[v as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        for (rank, &v) in o.order().iter().enumerate() {
            assert_eq!(o.rank(v), rank as u32);
        }
    }

    #[test]
    fn ordering_is_deterministic() {
        let g = grid(12, 12, 9);
        let a = ContractionOrder::compute(&g);
        let b = ContractionOrder::compute(&g);
        assert_eq!(a.order(), b.order());
        assert_eq!(a.shortcut_count(), b.shortcut_count());
    }

    #[test]
    fn path_interior_outranks_endpoints() {
        // On a path a-b-c, the middle vertex separates the other two and
        // must be the most important (contracted last).
        let mut builder = GraphBuilder::new();
        let a = builder.add_node(Point::new(0.0, 0.0));
        let b = builder.add_node(Point::new(1.0, 0.0));
        let c = builder.add_node(Point::new(2.0, 0.0));
        builder.add_edge(a, b, 1.0);
        builder.add_edge(b, c, 1.0);
        let g = builder.build();
        let o = ContractionOrder::compute(&g);
        assert_eq!(o.rank(b), 0, "separator vertex must rank first");
    }

    #[test]
    fn shortcut_count_stays_near_linear_on_grids() {
        // Nested-dissection-like orderings add O(n log n) shortcuts on
        // planar graphs; a broken heuristic degrades towards O(n^2).
        let g = grid(20, 20, 1);
        let o = ContractionOrder::compute(&g);
        let n = g.node_count();
        assert!(
            o.shortcut_count() < 12 * n,
            "too many shortcuts: {} for {} nodes",
            o.shortcut_count(),
            n
        );
    }

    #[test]
    fn single_node_network() {
        let mut builder = GraphBuilder::new();
        builder.add_node(Point::default());
        let g = builder.build();
        let o = ContractionOrder::compute(&g);
        assert_eq!(o.order(), &[0]);
        assert_eq!(o.rank(0), 0);
    }
}

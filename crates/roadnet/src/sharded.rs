//! Thread-safe sharded distance oracle for the parallel dispatcher.
//!
//! [`CachedOracle`](crate::CachedOracle) puts the paper's two LRU caches
//! behind `RefCell`, which is the right call for the sequential simulation
//! loop (zero synchronisation cost) but makes the oracle `!Sync`: worker
//! threads evaluating candidate vehicles concurrently cannot share it.
//! [`ShardedOracle`] is the concurrent counterpart. The immutable query
//! machinery (hub labels, Dijkstra over the frozen graph) is shared freely
//! across threads; only the caches need writes, and those are split into
//! `2^k` independent shards, each holding its own
//! [`SharedPathCaches`] behind its own `Mutex`.
//! A query locks exactly one shard (chosen by mixing the paper's pair key
//! `id(s)·|V| + id(e)`), so lookups for different vertex pairs almost never
//! contend, and a hot pair serialises only with itself.
//!
//! Sharding changes *which* entries survive eviction (each shard runs LRU
//! over its slice of the key space) but never the values returned —
//! distances are exact regardless of cache state — so sequential and
//! parallel dispatch over this oracle agree bit-for-bit.

use std::sync::Mutex;

use crate::cache::SharedPathCaches;
use crate::dijkstra::DijkstraEngine;
use crate::graph::RoadNetwork;
use crate::hub_label::HubLabels;
use crate::oracle::{DistanceOracle, OracleBackend, OracleStats, ShortestPathEngine};
use crate::types::{NodeId, Weight, INFINITY};

/// Default number of cache shards (`16`): enough that a handful of worker
/// threads rarely collide, small enough that per-shard LRU capacity stays
/// meaningful.
pub const DEFAULT_SHARDS: usize = 16;

/// One cache shard: a slice of the LRU caches plus its query counters, all
/// guarded by a single mutex so one lock acquisition serves a whole lookup.
#[derive(Debug)]
struct Shard {
    caches: SharedPathCaches,
    stats: OracleStats,
}

/// Concurrent distance/path oracle: hub labels + Dijkstra behind sharded,
/// mutex-guarded LRU caches. See the module docs for the design.
///
/// This type is `Sync`; share it by reference (`&ShardedOracle` implements
/// [`DistanceOracle`] through `&self` methods) across the dispatcher's
/// worker threads.
///
/// # Examples
///
/// ```
/// use roadnet::{DistanceOracle, GeneratorConfig, NetworkKind, ShardedOracle};
///
/// let graph = GeneratorConfig {
///     kind: NetworkKind::Grid { rows: 6, cols: 6 },
///     ..GeneratorConfig::default()
/// }
/// .generate();
/// let oracle = ShardedOracle::new(&graph);
/// // Concurrent queries from scoped threads; distances are exact and
/// // identical no matter which thread (or cache shard) serves them.
/// let d = oracle.dist(0, 35);
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         scope.spawn(|| assert_eq!(oracle.dist(0, 35), d));
///     }
/// });
/// ```
pub struct ShardedOracle<'g> {
    graph: &'g RoadNetwork,
    labels: Option<HubLabels>,
    dijkstra: DijkstraEngine<'g>,
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
}

impl<'g> ShardedOracle<'g> {
    /// Builds an oracle with hub labels, [`DEFAULT_SHARDS`] shards and the
    /// same total cache budget as [`CachedOracle::new`](crate::CachedOracle::new).
    pub fn new(graph: &'g RoadNetwork) -> Self {
        Self::with_options(
            graph,
            OracleBackend::HubLabels,
            DEFAULT_SHARDS,
            1_000_000,
            10_000,
        )
    }

    /// Builds an oracle without hub labels (Dijkstra on every miss).
    pub fn without_labels(graph: &'g RoadNetwork) -> Self {
        Self::with_options(
            graph,
            OracleBackend::Dijkstra,
            DEFAULT_SHARDS,
            1_000_000,
            10_000,
        )
    }

    /// Builds an oracle with an explicit backend, shard count and *total*
    /// cache capacities (divided evenly across shards). The shard count is
    /// rounded up to a power of two and clamped to at least 1.
    pub fn with_options(
        graph: &'g RoadNetwork,
        backend: OracleBackend,
        shards: usize,
        distance_cache: usize,
        path_cache: usize,
    ) -> Self {
        let labels = match backend {
            OracleBackend::HubLabels => Some(HubLabels::build(graph)),
            OracleBackend::Dijkstra => None,
        };
        Self::from_parts(graph, labels, shards, distance_cache, path_cache)
    }

    /// Builds an oracle around pre-built hub labels — typically loaded from
    /// disk with [`HubLabels::load`] so a paper-scale construction is paid
    /// once, not on every process start.
    ///
    /// # Panics
    /// Panics when the labels cover a different number of vertices than
    /// `graph` has (a mismatched file would silently corrupt distances).
    pub fn with_labels(
        graph: &'g RoadNetwork,
        labels: HubLabels,
        shards: usize,
        distance_cache: usize,
        path_cache: usize,
    ) -> Self {
        assert_eq!(
            labels.node_count(),
            graph.node_count(),
            "hub labels cover {} vertices but the network has {}",
            labels.node_count(),
            graph.node_count()
        );
        Self::from_parts(graph, Some(labels), shards, distance_cache, path_cache)
    }

    fn from_parts(
        graph: &'g RoadNetwork,
        labels: Option<HubLabels>,
        shards: usize,
        distance_cache: usize,
        path_cache: usize,
    ) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard_dist = distance_cache.div_ceil(shard_count);
        let per_shard_path = path_cache.div_ceil(shard_count);
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    caches: SharedPathCaches::with_capacity(
                        graph.node_count(),
                        per_shard_dist,
                        per_shard_path,
                    ),
                    stats: OracleStats::default(),
                })
            })
            .collect();
        ShardedOracle {
            graph,
            labels,
            dijkstra: DijkstraEngine::new(graph),
            shards,
            shard_mask: (shard_count - 1) as u64,
        }
    }

    /// The underlying road network.
    pub fn graph(&self) -> &RoadNetwork {
        self.graph
    }

    /// Number of cache shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated query counters summed over all shards.
    pub fn stats(&self) -> OracleStats {
        let mut total = OracleStats::default();
        for shard in &self.shards {
            let s = shard.lock().expect("oracle shard poisoned").stats;
            total.distance_cache_hits += s.distance_cache_hits;
            total.distance_cache_misses += s.distance_cache_misses;
            total.path_cache_hits += s.path_cache_hits;
            total.path_cache_misses += s.path_cache_misses;
            total.distance_queries += s.distance_queries;
            total.path_queries += s.path_queries;
        }
        total
    }

    /// Resets every shard's query counters (cache contents are kept).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().expect("oracle shard poisoned").stats = OracleStats::default();
        }
    }

    /// Empties every shard's LRU caches (hub labels are kept).
    pub fn clear_caches(&self) {
        for shard in &self.shards {
            shard.lock().expect("oracle shard poisoned").caches.clear();
        }
    }

    /// Shard index for the vertex pair `(s, t)`.
    ///
    /// The paper's pair key `id(s)·|V| + id(e)` is mixed through the
    /// SplitMix64 finaliser before masking: neighbouring pairs (the common
    /// access pattern when evaluating one vehicle's schedule) would
    /// otherwise land in the same shard and serialise.
    fn shard_for(&self, s: NodeId, t: NodeId) -> usize {
        let key = s as u64 * self.graph.node_count() as u64 + t as u64;
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & self.shard_mask) as usize
    }

    /// Computes the exact distance for the unordered pair `{s, t}`, always
    /// in the low-id → high-id direction — identical to
    /// [`CachedOracle`](crate::CachedOracle)'s canonicalisation, so the two
    /// oracles return bit-identical values regardless of cache state (see
    /// the rationale there).
    fn compute_distance(&self, s: NodeId, t: NodeId) -> Weight {
        let (a, b) = if s <= t { (s, t) } else { (t, s) };
        match &self.labels {
            Some(hl) => hl.distance(a, b).unwrap_or(INFINITY),
            None => self.dijkstra.distance(a, b).unwrap_or(INFINITY),
        }
    }

    /// Stores `d` for `(s, t)` in the shard owning that pair. Used for the
    /// symmetric priming write, which may target a different shard than the
    /// original query; shards are locked one at a time, never nested.
    fn prime_distance(&self, s: NodeId, t: NodeId, d: Weight) {
        let mut shard = self.shards[self.shard_for(s, t)]
            .lock()
            .expect("oracle shard poisoned");
        shard.caches.put_distance(s, t, d);
    }
}

impl DistanceOracle for ShardedOracle<'_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0.0;
        }
        {
            let mut shard = self.shards[self.shard_for(s, t)]
                .lock()
                .expect("oracle shard poisoned");
            shard.stats.distance_queries += 1;
            if let Some(d) = shard.caches.get_distance(s, t) {
                shard.stats.distance_cache_hits += 1;
                return d;
            }
            shard.stats.distance_cache_misses += 1;
        }
        // Compute outside any lock: misses cost microseconds to milliseconds
        // and must not serialise other shards' lookups.
        let d = self.compute_distance(s, t);
        self.prime_distance(s, t, d);
        // The computation is canonicalised per unordered pair, so the
        // reverse value is bit-identical; prime it too (same rationale as
        // CachedOracle — halves misses for symmetric call patterns like
        // detour evaluation).
        self.prime_distance(t, s, d);
        d
    }

    fn shortest_path(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        if s == t {
            return Some(vec![s]);
        }
        {
            let mut shard = self.shards[self.shard_for(s, t)]
                .lock()
                .expect("oracle shard poisoned");
            shard.stats.path_queries += 1;
            if let Some(p) = shard.caches.get_path(s, t) {
                shard.stats.path_cache_hits += 1;
                return Some(p);
            }
            shard.stats.path_cache_misses += 1;
        }
        let (_, p) = self.dijkstra.path(s, t)?;
        {
            let mut shard = self.shards[self.shard_for(s, t)]
                .lock()
                .expect("oracle shard poisoned");
            // Deliberately NOT primed into the distance cache: the path
            // engine's cost is accumulated along the query direction and
            // can disagree with the canonical distance in the last ULP
            // (see CachedOracle::shortest_path).
            shard.caches.put_path(s, t, p.clone());
        }
        Some(p)
    }

    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn nodes_within(&self, s: NodeId, radius: Weight) -> Vec<(NodeId, Weight)> {
        self.dijkstra.nodes_within(s, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::oracle::CachedOracle;
    use crate::types::approx_eq;

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    #[test]
    fn sharded_oracle_is_sync() {
        fn assert_sync<T: Sync>(_: &T) {}
        let g = grid(3, 3, 0);
        let o = ShardedOracle::without_labels(&g);
        assert_sync(&o);
        // And usable as the trait object the parallel dispatcher takes.
        let _dyn_oracle: &(dyn DistanceOracle + Sync) = &o;
    }

    #[test]
    fn matches_cached_oracle_exactly() {
        let g = grid(6, 6, 3);
        let sharded = ShardedOracle::new(&g);
        let cached = CachedOracle::new(&g);
        let n = g.node_count() as NodeId;
        for s in 0..n {
            for t in 0..n {
                assert!(
                    approx_eq(sharded.dist(s, t), cached.dist(s, t)),
                    "distance mismatch at ({s}, {t})"
                );
            }
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let g = grid(3, 3, 1);
        let o = ShardedOracle::with_options(&g, OracleBackend::Dijkstra, 5, 100, 10);
        assert_eq!(o.shard_count(), 8);
        let o = ShardedOracle::with_options(&g, OracleBackend::Dijkstra, 0, 100, 10);
        assert_eq!(o.shard_count(), 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let g = grid(5, 5, 2);
        let o = ShardedOracle::without_labels(&g);
        let n = g.node_count() as NodeId;
        for t in 1..n {
            let _ = o.dist(0, t);
        }
        for t in 1..n {
            let _ = o.dist(0, t); // cache hits (plus symmetric priming)
        }
        let stats = o.stats();
        assert_eq!(stats.distance_queries, 2 * (n as u64 - 1));
        assert_eq!(stats.distance_cache_misses, n as u64 - 1);
        assert_eq!(stats.distance_cache_hits, n as u64 - 1);
        assert!(stats.distance_hit_rate() > 0.4);
        o.reset_stats();
        assert_eq!(o.stats().distance_queries, 0);
    }

    #[test]
    fn symmetric_priming_spans_shards() {
        let g = grid(5, 5, 4);
        let o = ShardedOracle::without_labels(&g);
        let _ = o.dist(3, 19);
        let _ = o.dist(19, 3);
        let stats = o.stats();
        assert_eq!(stats.distance_cache_hits, 1, "reverse lookup must hit");
    }

    #[test]
    fn paths_and_clear_work() {
        let g = grid(4, 6, 5);
        let o = ShardedOracle::without_labels(&g);
        let t = (g.node_count() - 1) as NodeId;
        let p = o.shortest_path(0, t).unwrap();
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), t);
        assert_eq!(o.shortest_path(0, t).unwrap(), p);
        assert_eq!(o.stats().path_cache_hits, 1);
        o.clear_caches();
        let _ = o.dist(0, t);
        assert_eq!(o.stats().distance_cache_misses, 1);
        assert_eq!(o.dist(4, 4), 0.0);
        assert_eq!(o.shortest_path(4, 4), Some(vec![4]));
    }

    #[test]
    fn concurrent_queries_agree_with_sequential() {
        let g = grid(8, 8, 7);
        let o = ShardedOracle::without_labels(&g);
        let n = g.node_count() as NodeId;
        let reference: Vec<Weight> = (0..n).map(|t| CachedOracle::new(&g).dist(0, t)).collect();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|w| {
                    let o = &o;
                    scope.spawn(move || {
                        (0..n)
                            .map(|t| o.dist((w * 7) % n, t))
                            .collect::<Vec<Weight>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        // Worker 0 queried from source 0: must match the sequential oracle.
        for (t, (&got, &want)) in results[0].iter().zip(reference.iter()).enumerate() {
            assert!(approx_eq(got, want), "node {t}: {got} vs {want}");
        }
    }
}

//! Fundamental value types shared across the road-network engine.

use std::cmp::Ordering;
use std::fmt;

/// Identifier of a vertex (road intersection) in a [`crate::RoadNetwork`].
///
/// Node ids are dense: a network with `n` nodes uses ids `0..n`.
pub type NodeId = u32;

/// Identifier of an undirected edge (road segment).
pub type EdgeId = u32;

/// Travel cost along an edge or path.
///
/// Costs are expressed in meters throughout the workspace. With the paper's
/// constant driving speed of 14 m/s, a distance in meters divides by 14 to
/// give seconds, so distance and time are interchangeable (Sec. VI of the
/// paper makes the same simplification).
pub type Weight = f64;

/// Sentinel cost representing "unreachable".
pub const INFINITY: Weight = f64::INFINITY;

/// Planar coordinates of a vertex, in meters from an arbitrary origin.
///
/// The synthetic generators place vertices on a plane; real datasets should
/// be projected before loading (the paper pre-maps trip coordinates to the
/// nearest vertex, which [`crate::NodeLocator`] reproduces).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East-west offset in meters.
    pub x: f64,
    /// North-south offset in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates in meters.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in meters.
    ///
    /// Used as the admissible heuristic for A* (straight-line distance never
    /// exceeds road distance when edge weights are at least the Euclidean
    /// length of the segment, which all generators in this workspace
    /// guarantee).
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A totally ordered wrapper around a non-NaN `f64` cost, used as the key of
/// binary heaps in the shortest-path engines.
///
/// Constructing an [`OrderedCost`] from NaN panics in debug builds and is
/// treated as positive infinity in release builds; the engines never produce
/// NaN costs from finite, non-negative edge weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedCost(pub f64);

impl OrderedCost {
    /// Wraps a cost, normalising NaN to infinity.
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "cost must not be NaN");
        if v.is_nan() {
            OrderedCost(f64::INFINITY)
        } else {
            OrderedCost(v)
        }
    }
}

impl Eq for OrderedCost {}

impl PartialOrd for OrderedCost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedCost {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// Entry of a min-heap keyed by cost: `(cost, node)` ordered so that the
/// smallest cost pops first when used inside [`std::collections::BinaryHeap`]
/// (which is a max-heap), i.e. the ordering is reversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapEntry {
    /// Accumulated cost from the search source.
    pub cost: OrderedCost,
    /// Node the cost refers to.
    pub node: NodeId,
}

impl HeapEntry {
    /// Creates a heap entry.
    pub fn new(cost: f64, node: NodeId) -> Self {
        HeapEntry {
            cost: OrderedCost::new(cost),
            node,
        }
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (max-heap) yields the minimum cost first.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Compares two costs with a small absolute tolerance, used by tests and by
/// validation code that re-derives costs along different code paths.
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(approx_eq(a.distance(&b), 5.0));
        assert!(approx_eq(a.distance_sq(&b), 25.0));
    }

    #[test]
    fn point_distance_is_symmetric() {
        let a = Point::new(-10.0, 2.5);
        let b = Point::new(7.0, 40.0);
        assert!(approx_eq(a.distance(&b), b.distance(&a)));
    }

    #[test]
    fn ordered_cost_total_order() {
        let mut v = vec![
            OrderedCost::new(3.0),
            OrderedCost::new(1.0),
            OrderedCost::new(2.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![OrderedCost(1.0), OrderedCost(2.0), OrderedCost(3.0)]
        );
    }

    #[test]
    fn heap_entry_pops_minimum_first() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry::new(5.0, 1));
        heap.push(HeapEntry::new(1.0, 2));
        heap.push(HeapEntry::new(3.0, 3));
        assert_eq!(heap.pop().unwrap().node, 2);
        assert_eq!(heap.pop().unwrap().node, 3);
        assert_eq!(heap.pop().unwrap().node, 1);
    }

    #[test]
    fn heap_entry_ties_break_on_node() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry::new(1.0, 7));
        heap.push(HeapEntry::new(1.0, 3));
        assert_eq!(heap.pop().unwrap().node, 3);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        assert!(approx_eq(1.0, 1.0 + 1e-9));
        assert!(!approx_eq(1.0, 1.01));
    }

    #[test]
    fn display_point() {
        let p = Point::new(1.25, -3.5);
        assert_eq!(format!("{p}"), "(1.2, -3.5)");
    }
}

//! Plain-text serialisation of road networks.
//!
//! The format is a line-oriented text file, easy to produce from OSM
//! extracts or other datasets:
//!
//! ```text
//! # comment lines start with '#'
//! v <x> <y>          # one per node, in node-id order
//! e <u> <v> <weight> # one per undirected edge
//! ```
//!
//! Coordinates and weights are in meters. [`parse_network`] reads the format
//! from any string; [`read_network_file`]/[`write_network_file`] wrap file
//! I/O around it.

use std::fmt::Write as _;
use std::path::Path;

use crate::error::RoadNetError;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::types::Point;

/// Parses the text format into a road network.
pub fn parse_network(text: &str) -> Result<RoadNetwork, RoadNetError> {
    let mut builder = GraphBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        match tag {
            "v" => {
                let x = parse_f64(parts.next(), line_no, "x coordinate")?;
                let y = parse_f64(parts.next(), line_no, "y coordinate")?;
                builder.add_node(Point::new(x, y));
            }
            "e" => {
                let u = parse_u32(parts.next(), line_no, "source node")?;
                let v = parse_u32(parts.next(), line_no, "target node")?;
                let w = parse_f64(parts.next(), line_no, "weight")?;
                builder.add_edge(u, v, w);
            }
            other => {
                return Err(RoadNetError::Parse {
                    line: line_no,
                    message: format!("unknown record tag '{other}'"),
                })
            }
        }
        if parts.next().is_some() {
            return Err(RoadNetError::Parse {
                line: line_no,
                message: "trailing fields on line".to_string(),
            });
        }
    }
    builder.try_build()
}

/// Serialises a network into the text format.
pub fn write_network(graph: &RoadNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# road network: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    for p in graph.points() {
        let _ = writeln!(out, "v {} {}", p.x, p.y);
    }
    for (u, v, w) in graph.edges() {
        let _ = writeln!(out, "e {u} {v} {w}");
    }
    out
}

/// Reads a network from a file in the text format.
pub fn read_network_file<P: AsRef<Path>>(path: P) -> Result<RoadNetwork, RoadNetError> {
    let text = std::fs::read_to_string(path)?;
    parse_network(&text)
}

/// Writes a network to a file in the text format.
pub fn write_network_file<P: AsRef<Path>>(
    graph: &RoadNetwork,
    path: P,
) -> Result<(), RoadNetError> {
    std::fs::write(path, write_network(graph))?;
    Ok(())
}

/// Little-endian binary primitives shared by the on-disk index formats
/// (currently the hub-label arena in [`crate::hub_label::persist`]).
///
/// Writers append to a `Vec<u8>`; [`bin::Reader`] is a bounds-checked
/// cursor whose every read returns [`RoadNetError::Persist`] on truncation
/// instead of panicking, so corrupted files surface as errors.
pub mod bin {
    use crate::error::RoadNetError;

    /// Appends a `u32` in little-endian byte order.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian byte order.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// 64-bit FNV-1a over `bytes`; the checksum the binary formats embed.
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Bounds-checked little-endian reader over a byte buffer.
    #[derive(Debug, Clone)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Starts reading at the beginning of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Consumes `n` raw bytes, erring with a message naming `what` when
        /// the buffer is too short.
        pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], RoadNetError> {
            if self.remaining() < n {
                return Err(RoadNetError::Persist(format!(
                    "truncated file: need {n} bytes for {what} at offset {}, {} left",
                    self.pos,
                    self.remaining()
                )));
            }
            let slice = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(slice)
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self, what: &str) -> Result<u32, RoadNetError> {
            let b = self.bytes(4, what)?;
            Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self, what: &str) -> Result<u64, RoadNetError> {
            let b = self.bytes(8, what)?;
            Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
        }

        /// Reads a little-endian IEEE-754 `f64`.
        pub fn f64(&mut self, what: &str) -> Result<f64, RoadNetError> {
            let b = self.bytes(8, what)?;
            Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
        }
    }
}

fn parse_f64(field: Option<&str>, line: usize, what: &str) -> Result<f64, RoadNetError> {
    field
        .ok_or_else(|| RoadNetError::Parse {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| RoadNetError::Parse {
            line,
            message: format!("invalid {what}"),
        })
}

fn parse_u32(field: Option<&str>, line: usize, what: &str) -> Result<u32, RoadNetError> {
    field
        .ok_or_else(|| RoadNetError::Parse {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| RoadNetError::Parse {
            line,
            message: format!("invalid {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::types::approx_eq;

    #[test]
    fn parse_minimal_network() {
        let text = "# demo\nv 0 0\nv 100 0\nv 100 100\ne 0 1 100\ne 1 2 100.5\n";
        let g = parse_network(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(100.5));
        assert!(approx_eq(g.point(1).x, 100.0));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 4 },
            seed: 6,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let text = write_network(&g);
        let back = parse_network(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (a, b) in g.edges().zip(back.edges()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert!(approx_eq(a.2, b.2));
        }
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let bad_tag = "v 0 0\nx 1 2\n";
        match parse_network(bad_tag) {
            Err(RoadNetError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let missing_field = "v 0\n";
        assert!(matches!(
            parse_network(missing_field),
            Err(RoadNetError::Parse { line: 1, .. })
        ));
        let bad_number = "v 0 zero\n";
        assert!(matches!(
            parse_network(bad_number),
            Err(RoadNetError::Parse { line: 1, .. })
        ));
        let trailing = "v 0 0 9\n";
        assert!(matches!(
            parse_network(trailing),
            Err(RoadNetError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_topology_is_rejected_after_parse() {
        let self_loop = "v 0 0\nv 1 1\ne 0 0 1\n";
        assert!(matches!(
            parse_network(self_loop),
            Err(RoadNetError::SelfLoop(0))
        ));
        let unknown = "v 0 0\ne 0 7 1\n";
        assert!(matches!(
            parse_network(unknown),
            Err(RoadNetError::UnknownNode(7))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 3, cols: 3 },
            seed: 1,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let dir = std::env::temp_dir().join("roadnet_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.txt");
        write_network_file(&g, &path).unwrap();
        let back = read_network_file(&path).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        std::fs::remove_file(path).ok();
    }
}

//! Bidirectional Dijkstra point-to-point engine.
//!
//! Searches simultaneously from the source and (on the reverse graph, which
//! equals the forward graph because the network is undirected) from the
//! target, meeting roughly half way. On urban networks this settles roughly
//! half as many nodes as unidirectional Dijkstra per query, which matters
//! because the matching algorithms issue millions of distance queries.

use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::oracle::ShortestPathEngine;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// Bidirectional Dijkstra engine borrowing a frozen road network.
#[derive(Debug, Clone)]
pub struct BidirectionalEngine<'g> {
    graph: &'g RoadNetwork,
}

impl<'g> BidirectionalEngine<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g RoadNetwork) -> Self {
        BidirectionalEngine { graph }
    }

    fn run(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        if s == t {
            return Some((0.0, vec![s]));
        }
        let n = self.graph.node_count();
        let mut dist_f = vec![INFINITY; n];
        let mut dist_b = vec![INFINITY; n];
        let mut par_f = vec![u32::MAX; n];
        let mut par_b = vec![u32::MAX; n];
        let mut settled_f = vec![false; n];
        let mut settled_b = vec![false; n];
        let mut heap_f = BinaryHeap::new();
        let mut heap_b = BinaryHeap::new();
        dist_f[s as usize] = 0.0;
        dist_b[t as usize] = 0.0;
        heap_f.push(HeapEntry::new(0.0, s));
        heap_b.push(HeapEntry::new(0.0, t));

        let mut best = INFINITY;
        let mut meet: Option<NodeId> = None;

        loop {
            let top_f = heap_f.peek().map(|e| e.cost.0).unwrap_or(INFINITY);
            let top_b = heap_b.peek().map(|e| e.cost.0).unwrap_or(INFINITY);
            if top_f + top_b >= best {
                break;
            }
            if top_f == INFINITY && top_b == INFINITY {
                break;
            }
            // Expand the side with the smaller frontier cost.
            let forward = top_f <= top_b;
            let (heap, dist, parent, settled, other_dist, other_settled) = if forward {
                (
                    &mut heap_f,
                    &mut dist_f,
                    &mut par_f,
                    &mut settled_f,
                    &dist_b,
                    &settled_b,
                )
            } else {
                (
                    &mut heap_b,
                    &mut dist_b,
                    &mut par_b,
                    &mut settled_b,
                    &dist_f,
                    &settled_f,
                )
            };
            let Some(HeapEntry { cost, node }) = heap.pop() else {
                break;
            };
            let d = cost.0;
            if settled[node as usize] || d > dist[node as usize] {
                continue;
            }
            settled[node as usize] = true;
            if other_settled[node as usize] || other_dist[node as usize] < INFINITY {
                let candidate = d + other_dist[node as usize];
                if candidate < best {
                    best = candidate;
                    meet = Some(node);
                }
            }
            for (v, w) in self.graph.neighbors(node) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    parent[v as usize] = node;
                    heap.push(HeapEntry::new(nd, v));
                }
                // A relaxed-but-unsettled node on the other side can also be
                // the meeting point.
                if other_dist[v as usize] < INFINITY {
                    let candidate = nd + other_dist[v as usize];
                    if candidate < best {
                        best = candidate;
                        meet = Some(v);
                    }
                }
            }
        }

        let meet = meet?;
        // Forward half: s .. meet
        let mut fwd = vec![meet];
        let mut cur = meet;
        while cur != s {
            cur = par_f[cur as usize];
            if cur == u32::MAX {
                return None;
            }
            fwd.push(cur);
        }
        fwd.reverse();
        // Backward half: meet .. t (parents lead towards t)
        let mut cur = meet;
        while cur != t {
            cur = par_b[cur as usize];
            if cur == u32::MAX {
                return None;
            }
            fwd.push(cur);
        }
        Some((best, fwd))
    }
}

impl ShortestPathEngine for BidirectionalEngine<'_> {
    fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        self.run(s, t).map(|(d, _)| d)
    }

    fn path(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        self.run(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraEngine;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::types::{approx_eq, Point};

    #[test]
    fn trivial_and_unreachable() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(2.0, 0.0));
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let e = BidirectionalEngine::new(&g);
        assert_eq!(e.distance(0, 0), Some(0.0));
        assert_eq!(e.distance(0, 1), Some(1.0));
        assert_eq!(e.distance(0, 2), None);
    }

    #[test]
    fn matches_dijkstra_on_many_pairs() {
        for (kind, seed) in [
            (NetworkKind::Grid { rows: 9, cols: 7 }, 21u64),
            (
                NetworkKind::RingRadial {
                    rings: 6,
                    spokes: 10,
                },
                22,
            ),
        ] {
            let cfg = GeneratorConfig {
                kind,
                seed,
                ..GeneratorConfig::default()
            };
            let g = cfg.generate();
            let dij = DijkstraEngine::new(&g);
            let bi = BidirectionalEngine::new(&g);
            let n = g.node_count() as NodeId;
            let pairs: Vec<(NodeId, NodeId)> =
                (0..30).map(|i| ((i * 13) % n, (i * 29 + 7) % n)).collect();
            for (s, t) in pairs {
                let a = dij.distance(s, t);
                let b = bi.distance(s, t);
                match (a, b) {
                    (Some(x), Some(y)) => assert!(approx_eq(x, y), "{s}->{t}: {x} vs {y}"),
                    (None, None) => {}
                    _ => panic!("reachability mismatch {s}->{t}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn path_is_valid_walk() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 4,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let e = BidirectionalEngine::new(&g);
        let t = (g.node_count() - 1) as NodeId;
        let (d, p) = e.path(0, t).unwrap();
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), t);
        let mut acc = 0.0;
        for w in p.windows(2) {
            acc += g
                .edge_weight(w[0], w[1])
                .unwrap_or_else(|| panic!("missing edge {}-{}", w[0], w[1]));
        }
        assert!(approx_eq(acc, d), "path cost {acc} vs reported {d}");
    }
}

//! Road-network graph engine.
//!
//! This crate provides the substrate that every other crate in the workspace
//! builds on: a compact in-memory representation of a weighted, undirected
//! road network together with several exact shortest-path engines, an exact
//! hub-labeling distance oracle, the two LRU caches described in the paper
//! (a large distance cache and a small path cache sharing one key scheme),
//! synthetic network generators, and a small text format for loading and
//! saving networks.
//!
//! The paper ("Large Scale Real-time Ridesharing with Service Guarantee on
//! Road Networks", Huang et al., VLDB 2014) evaluates on the Shanghai road
//! network with 122,319 vertices and 188,426 edges and implements a
//! hub-labeling distance oracle plus two LRU caches keyed by
//! `id(s) * |V| + id(e)`. This crate reproduces those components.
//!
//! # Quick example
//!
//! ```
//! use roadnet::{GraphBuilder, Point, ShortestPathEngine, DijkstraEngine};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(100.0, 0.0));
//! let d = b.add_node(Point::new(100.0, 100.0));
//! b.add_edge(a, c, 100.0);
//! b.add_edge(c, d, 100.0);
//! b.add_edge(a, d, 250.0);
//! let g = b.build();
//!
//! let engine = DijkstraEngine::new(&g);
//! assert_eq!(engine.distance(a, d), Some(200.0));
//! ```

pub mod astar;
pub mod bidirectional;
pub mod cache;
pub mod contraction;
pub mod dijkstra;
pub mod error;
pub mod generators;
pub mod graph;
pub mod hub_label;
pub mod io;
pub mod landmarks;
pub mod locator;
pub mod oracle;
pub mod partition;
pub mod sharded;
pub mod types;

pub use astar::AStarEngine;
pub use bidirectional::BidirectionalEngine;
pub use cache::{LruCache, SharedPathCaches};
pub use contraction::{ContractionConfig, ContractionOrder};
pub use dijkstra::DijkstraEngine;
pub use error::RoadNetError;
pub use generators::{GeneratorConfig, NetworkKind};
pub use graph::{GraphBuilder, RoadNetwork};
pub use hub_label::{HubLabels, HubOrdering, LabelEntry};
pub use io::{parse_network, write_network};
pub use landmarks::{AltEngine, LandmarkStrategy};
pub use locator::NodeLocator;
pub use oracle::{
    CachedOracle, DistanceOracle, MatrixOracle, OracleBackend, OracleStats, ShortestPathEngine,
};
pub use partition::PartitionSpec;
pub use sharded::ShardedOracle;
pub use types::{EdgeId, NodeId, Point, Weight, INFINITY};

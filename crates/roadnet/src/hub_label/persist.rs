//! On-disk persistence of hub labels.
//!
//! A paper-scale label build takes orders of magnitude longer than loading
//! the finished arena from disk, so the build is paid once and the labels
//! reloaded on every subsequent run. The format is a direct little-endian
//! dump of the CSR arena, versioned and checksummed:
//!
//! ```text
//! offset  size        field
//! 0       4           magic  b"HLBL"
//! 4       4           format version (u32, currently 2)
//! 8       8           network fingerprint (u64, RoadNetwork::fingerprint)
//! 16      8           node count (u64)
//! 24      8           entry count (u64)
//! 32      4·n         rank_to_node (u32 per rank)
//! …       8·(n+1)     label_offsets (u64 per vertex, plus the end offset)
//! …       12·e        entries (u32 hub rank + f64 distance bits each)
//! end-8   8           FNV-1a checksum over every preceding byte
//! ```
//!
//! [`load`] validates everything it cannot afford to trust: the magic and
//! version, that the embedded network fingerprint matches the network the
//! labels are being loaded *for* (a labeling is only exact for the network
//! it was built from — version 2 made the binding explicit; version-1
//! files are rejected and must be rebuilt), the exact file length implied
//! by the header, the checksum, and the structural invariants queries rely
//! on (offsets monotone and bounded, ranks in range and strictly
//! increasing within each label, distances finite and non-negative,
//! `rank_to_node` a permutation). Corrupt or truncated input always
//! yields [`RoadNetError::Persist`] — never a panic and never a
//! structurally unsound `HubLabels`.

use std::path::Path;

use crate::error::RoadNetError;
use crate::io::bin::{self, Reader};

use super::{HubLabels, LabelEntry};

/// File magic: "HLBL" (hub labels).
const MAGIC: &[u8; 4] = b"HLBL";
/// Current format version. Bump on any layout change; [`load`] rejects
/// versions it does not understand. Version 2 added the network
/// fingerprint that binds a label file to the network it was built from.
const VERSION: u32 = 2;

/// Serialises a labeling into the versioned binary format, stamped with the
/// fingerprint of the network the labels were built from.
pub fn to_bytes(labels: &HubLabels, fingerprint: u64) -> Vec<u8> {
    let n = labels.rank_to_node.len();
    let e = labels.entries.len();
    let mut out = Vec::with_capacity(32 + 4 * n + 8 * (n + 1) + 12 * e + 8);
    out.extend_from_slice(MAGIC);
    bin::put_u32(&mut out, VERSION);
    bin::put_u64(&mut out, fingerprint);
    bin::put_u64(&mut out, n as u64);
    bin::put_u64(&mut out, e as u64);
    for &node in &labels.rank_to_node {
        bin::put_u32(&mut out, node);
    }
    for &off in &labels.label_offsets {
        bin::put_u64(&mut out, off as u64);
    }
    for entry in &labels.entries {
        bin::put_u32(&mut out, entry.hub_rank);
        bin::put_f64(&mut out, entry.dist);
    }
    let checksum = bin::fnv1a(&out);
    bin::put_u64(&mut out, checksum);
    out
}

/// Deserialises and validates a labeling from the binary format,
/// refusing files whose embedded network fingerprint differs from
/// `expected_fingerprint` — a labeling is only exact for the network it
/// was built from, so loading it against any other network would silently
/// corrupt every distance.
pub fn from_bytes(buf: &[u8], expected_fingerprint: u64) -> Result<HubLabels, RoadNetError> {
    let mut r = Reader::new(buf);
    let magic = r.bytes(4, "magic")?;
    if magic != MAGIC {
        return Err(RoadNetError::Persist(format!(
            "bad magic {magic:?} (expected {MAGIC:?}); not a hub-label file"
        )));
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(RoadNetError::Persist(format!(
            "unsupported format version {version} (this build reads {VERSION}; \
             version-1 files predate the network fingerprint and must be rebuilt)"
        )));
    }
    let fingerprint = r.u64("network fingerprint")?;
    if fingerprint != expected_fingerprint {
        return Err(RoadNetError::Persist(format!(
            "label file was built for a different network: file fingerprint \
             {fingerprint:#018x}, this network is {expected_fingerprint:#018x} \
             (rebuild the labels for this network)"
        )));
    }
    let n = r.u64("node count")? as usize;
    let e = r.u64("entry count")? as usize;
    // The header fixes the exact file size; check it before allocating
    // anything so a corrupt header cannot trigger a huge allocation or a
    // misaligned parse.
    let expected = 32usize
        .checked_add(4usize.checked_mul(n).ok_or_else(|| too_big(n, e))?)
        // `n + 1` cannot overflow here: `4 * n` just succeeded.
        .and_then(|s| s.checked_add(8usize.checked_mul(n + 1)?))
        .and_then(|s| s.checked_add(12usize.checked_mul(e)?))
        .and_then(|s| s.checked_add(8))
        .ok_or_else(|| too_big(n, e))?;
    if buf.len() != expected {
        return Err(RoadNetError::Persist(format!(
            "file is {} bytes but the header ({n} nodes, {e} entries) implies {expected}",
            buf.len()
        )));
    }
    let body = &buf[..buf.len() - 8];
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
    let computed = bin::fnv1a(body);
    if stored != computed {
        return Err(RoadNetError::Persist(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }

    let mut rank_to_node = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for rank in 0..n {
        let node = r.u32("rank_to_node")?;
        if node as usize >= n || seen[node as usize] {
            return Err(RoadNetError::Persist(format!(
                "rank_to_node is not a permutation: rank {rank} maps to node {node}"
            )));
        }
        seen[node as usize] = true;
        rank_to_node.push(node);
    }
    let mut label_offsets = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let off = r.u64("label_offsets")? as usize;
        if off > e || label_offsets.last().is_some_and(|&prev| off < prev) {
            return Err(RoadNetError::Persist(format!(
                "label offset {i} is {off}: offsets must be non-decreasing and at most {e}"
            )));
        }
        label_offsets.push(off);
    }
    if label_offsets.first() != Some(&0) || label_offsets.last() != Some(&e) {
        return Err(RoadNetError::Persist(
            "label offsets must start at 0 and end at the entry count".to_string(),
        ));
    }
    let mut entries = Vec::with_capacity(e);
    for i in 0..e {
        let hub_rank = r.u32("entry hub rank")?;
        let dist = r.f64("entry distance")?;
        if hub_rank as usize >= n {
            return Err(RoadNetError::Persist(format!(
                "entry {i} references hub rank {hub_rank} but there are only {n} nodes"
            )));
        }
        if !dist.is_finite() || dist < 0.0 {
            return Err(RoadNetError::Persist(format!(
                "entry {i} has invalid distance {dist}"
            )));
        }
        entries.push(LabelEntry { hub_rank, dist });
    }
    debug_assert_eq!(r.remaining(), 8, "only the checksum should remain");
    // Per-vertex labels must be strictly increasing in rank for the merge
    // intersection in queries to be correct.
    for v in 0..n {
        let label = &entries[label_offsets[v]..label_offsets[v + 1]];
        if label.windows(2).any(|w| w[0].hub_rank >= w[1].hub_rank) {
            return Err(RoadNetError::Persist(format!(
                "label of vertex {v} is not strictly rank-sorted"
            )));
        }
    }
    Ok(HubLabels {
        label_offsets,
        entries,
        rank_to_node,
    })
}

fn too_big(n: usize, e: usize) -> RoadNetError {
    RoadNetError::Persist(format!(
        "header claims {n} nodes and {e} entries, which overflows the address space"
    ))
}

/// Writes `labels` to `path` stamped with `fingerprint`, replacing any
/// existing file.
pub fn save(labels: &HubLabels, fingerprint: u64, path: &Path) -> Result<(), RoadNetError> {
    std::fs::write(path, to_bytes(labels, fingerprint))?;
    Ok(())
}

/// Reads a labeling written by [`save`], verifying it was built for the
/// network with the given fingerprint.
pub fn load(path: &Path, expected_fingerprint: u64) -> Result<HubLabels, RoadNetError> {
    let buf = std::fs::read(path)?;
    from_bytes(&buf, expected_fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::RoadNetwork;

    fn sample_grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            edge_dropout: 0.05,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    fn sample() -> (RoadNetwork, HubLabels) {
        let g = sample_grid(6, 7, 11);
        let labels = HubLabels::build(&g);
        (g, labels)
    }

    #[test]
    fn roundtrip_is_identical() {
        let (g, labels) = sample();
        let bytes = to_bytes(&labels, g.fingerprint());
        let back = from_bytes(&bytes, g.fingerprint()).unwrap();
        assert_eq!(back, labels);
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let (g, labels) = sample();
        let bytes = to_bytes(&labels, g.fingerprint());
        // Cutting the file at any prefix length must produce a Persist
        // error (never a panic, never a silently wrong labeling).
        for len in 0..bytes.len() {
            match from_bytes(&bytes[..len], g.fingerprint()) {
                Err(RoadNetError::Persist(_)) => {}
                other => panic!("truncation at {len} produced {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bytes_fail_the_checksum() {
        let (g, labels) = sample();
        let bytes = to_bytes(&labels, g.fingerprint());
        // Flip one byte in several positions across the payload; headers
        // may fail their own validation first, but nothing may pass.
        for pos in [8usize, 30, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                matches!(
                    from_bytes(&corrupt, g.fingerprint()),
                    Err(RoadNetError::Persist(_))
                ),
                "corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let (g, labels) = sample();
        let mut bytes = to_bytes(&labels, g.fingerprint());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes, g.fingerprint()),
            Err(RoadNetError::Persist(msg)) if msg.contains("magic")
        ));
        let mut bytes = to_bytes(&labels, g.fingerprint());
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes, g.fingerprint()),
            Err(RoadNetError::Persist(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn labels_for_a_different_network_are_refused() {
        // The original bug: a labels file built on one grid loaded cleanly
        // against another network of any size and silently corrupted every
        // distance. The v2 fingerprint makes the mismatch a hard error.
        let (g, labels) = sample();
        let other = sample_grid(6, 7, 12); // same shape, different jitter
        let smaller = sample_grid(4, 4, 11);
        let dir = std::env::temp_dir().join("roadnet_hublabel_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.hlbl");
        labels.save(&g, &path).unwrap();
        for wrong in [&other, &smaller] {
            match HubLabels::load(&path, wrong) {
                Err(RoadNetError::Persist(msg)) => {
                    assert!(
                        msg.contains("different network"),
                        "unhelpful mismatch message: {msg}"
                    );
                }
                other => panic!("mismatched network load produced {other:?}"),
            }
        }
        // The right network still loads.
        assert_eq!(HubLabels::load(&path, &g).unwrap(), labels);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_load_file_roundtrip() {
        let (g, labels) = sample();
        let dir = std::env::temp_dir().join("roadnet_hublabel_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.hlbl");
        labels.save(&g, &path).unwrap();
        let back = HubLabels::load(&path, &g).unwrap();
        assert_eq!(back, labels);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let (g, _) = sample();
        let err = HubLabels::load("/nonexistent/labels.hlbl", &g).unwrap_err();
        assert!(matches!(err, RoadNetError::Io(_)));
    }
}

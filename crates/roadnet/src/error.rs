//! Error type for road-network construction and I/O.

use std::fmt;

/// Errors produced while building, loading or querying a road network.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadNetError {
    /// An edge endpoint refers to a node id that was never added.
    UnknownNode(u32),
    /// An edge has a non-finite or negative weight.
    InvalidWeight(f64),
    /// A self-loop (u, u) was added; road networks never need them and the
    /// shortest-path engines assume their absence.
    SelfLoop(u32),
    /// The network has no nodes at all.
    EmptyNetwork,
    /// A text-format line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O error while reading or writing a network file.
    Io(String),
    /// A binary index file (e.g. persisted hub labels) is truncated,
    /// corrupted, or from an incompatible format version.
    Persist(String),
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            RoadNetError::InvalidWeight(w) => write!(f, "invalid edge weight {w}"),
            RoadNetError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            RoadNetError::EmptyNetwork => write!(f, "road network has no nodes"),
            RoadNetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RoadNetError::Io(msg) => write!(f, "i/o error: {msg}"),
            RoadNetError::Persist(msg) => write!(f, "persisted index error: {msg}"),
        }
    }
}

impl std::error::Error for RoadNetError {}

impl From<std::io::Error> for RoadNetError {
    fn from(e: std::io::Error) -> Self {
        RoadNetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            RoadNetError::UnknownNode(42).to_string(),
            "unknown node id 42"
        );
        assert_eq!(RoadNetError::SelfLoop(7).to_string(), "self-loop at node 7");
        assert!(RoadNetError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RoadNetError = io.into();
        assert!(matches!(e, RoadNetError::Io(_)));
    }
}

//! Synthetic road-network generators.
//!
//! The paper evaluates on the (proprietary) Shanghai road network. In its
//! place this module produces urban-looking synthetic networks with the same
//! structural features the matching algorithms care about: planar layout,
//! bounded vertex degree, weights no smaller than the Euclidean segment
//! length, and (optionally) faster arterial roads. Two base topologies are
//! provided — a Manhattan-style grid and a ring-radial layout — plus weight
//! jitter, random edge dropout and diagonal arterials. All generation is
//! deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{GraphBuilder, RoadNetwork};
use crate::types::Point;

/// Base topology of a generated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// A `rows x cols` Manhattan grid of intersections.
    Grid {
        /// Number of intersection rows (>= 2).
        rows: usize,
        /// Number of intersection columns (>= 2).
        cols: usize,
    },
    /// Concentric rings connected by radial spokes — a coarse model of a
    /// European-style city centre with orbital roads.
    RingRadial {
        /// Number of concentric rings (>= 1).
        rings: usize,
        /// Number of spokes (>= 3).
        spokes: usize,
    },
}

/// Parameters controlling synthetic network generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Base topology.
    pub kind: NetworkKind,
    /// RNG seed; the same configuration and seed always produce the same
    /// network.
    pub seed: u64,
    /// Distance in meters between adjacent grid intersections / consecutive
    /// rings.
    pub block_meters: f64,
    /// Multiplicative jitter applied to each edge weight, drawn uniformly
    /// from `[1, 1 + weight_jitter]`. Zero keeps weights at exactly the
    /// Euclidean segment length.
    pub weight_jitter: f64,
    /// Probability of dropping each non-critical edge, creating dead ends
    /// and detours like a real street network. The generator always returns
    /// the largest connected component.
    pub edge_dropout: f64,
    /// Whether to add diagonal arterial "expressways" across a grid (no
    /// effect on ring-radial networks, which already have radial arterials).
    pub arterials: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows: 20, cols: 20 },
            seed: 0,
            block_meters: 250.0,
            weight_jitter: 0.15,
            edge_dropout: 0.0,
            arterials: false,
        }
    }
}

impl GeneratorConfig {
    /// Generates the network described by this configuration.
    ///
    /// The result is always connected (the largest component is returned if
    /// dropout disconnects the raw network) and always non-empty.
    pub fn generate(&self) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let raw = match self.kind {
            NetworkKind::Grid { rows, cols } => {
                self.generate_grid(rows.max(2), cols.max(2), &mut rng)
            }
            NetworkKind::RingRadial { rings, spokes } => {
                self.generate_ring_radial(rings.max(1), spokes.max(3), &mut rng)
            }
        };
        if raw.is_connected() {
            raw
        } else {
            raw.largest_component().0
        }
    }

    fn jittered(&self, base: f64, rng: &mut StdRng) -> f64 {
        if self.weight_jitter <= 0.0 {
            base
        } else {
            base * (1.0 + rng.gen::<f64>() * self.weight_jitter)
        }
    }

    fn keep_edge(&self, rng: &mut StdRng) -> bool {
        self.edge_dropout <= 0.0 || rng.gen::<f64>() >= self.edge_dropout
    }

    fn generate_grid(&self, rows: usize, cols: usize, rng: &mut StdRng) -> RoadNetwork {
        let mut b = GraphBuilder::with_capacity(rows * cols, 2 * rows * cols);
        let block = self.block_meters;
        for r in 0..rows {
            for c in 0..cols {
                b.add_node(Point::new(c as f64 * block, r as f64 * block));
            }
        }
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols && self.keep_edge(rng) {
                    b.add_edge(id(r, c), id(r, c + 1), self.jittered(block, rng));
                }
                if r + 1 < rows && self.keep_edge(rng) {
                    b.add_edge(id(r, c), id(r + 1, c), self.jittered(block, rng));
                }
            }
        }
        if self.arterials {
            // Diagonal expressways across every 5th block; weight is the
            // Euclidean diagonal (shorter than the two-block Manhattan
            // detour), modelling faster through-routes.
            let diag = block * std::f64::consts::SQRT_2;
            for r in (0..rows.saturating_sub(1)).step_by(5) {
                for c in (0..cols.saturating_sub(1)).step_by(5) {
                    b.add_edge(id(r, c), id(r + 1, c + 1), self.jittered(diag, rng));
                }
            }
        }
        b.build()
    }

    fn generate_ring_radial(&self, rings: usize, spokes: usize, rng: &mut StdRng) -> RoadNetwork {
        // Node 0 is the city centre; ring k (1-based) has `spokes` nodes at
        // radius k * block_meters.
        let mut b = GraphBuilder::with_capacity(1 + rings * spokes, 3 * rings * spokes);
        b.add_node(Point::new(0.0, 0.0));
        for k in 1..=rings {
            let radius = k as f64 * self.block_meters;
            for s in 0..spokes {
                let theta = 2.0 * std::f64::consts::PI * s as f64 / spokes as f64;
                b.add_node(Point::new(radius * theta.cos(), radius * theta.sin()));
            }
        }
        let id = |ring: usize, spoke: usize| -> u32 {
            // ring >= 1
            (1 + (ring - 1) * spokes + spoke) as u32
        };
        // Radial edges (spokes).
        for s in 0..spokes {
            // Centre to first ring.
            if self.keep_edge(rng) {
                b.add_edge(0, id(1, s), self.jittered(self.block_meters, rng));
            }
            for k in 1..rings {
                if self.keep_edge(rng) {
                    b.add_edge(
                        id(k, s),
                        id(k + 1, s),
                        self.jittered(self.block_meters, rng),
                    );
                }
            }
        }
        // Ring edges.
        for k in 1..=rings {
            let radius = k as f64 * self.block_meters;
            let arc = 2.0 * radius * (std::f64::consts::PI / spokes as f64).sin();
            for s in 0..spokes {
                if self.keep_edge(rng) {
                    b.add_edge(id(k, s), id(k, (s + 1) % spokes), self.jittered(arc, rng));
                }
            }
        }
        b.build()
    }

    /// Expected number of nodes for this configuration before dropout
    /// trimming (exact for grid and ring-radial).
    pub fn expected_nodes(&self) -> usize {
        match self.kind {
            NetworkKind::Grid { rows, cols } => rows.max(2) * cols.max(2),
            NetworkKind::RingRadial { rings, spokes } => 1 + rings.max(1) * spokes.max(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraEngine;
    use crate::oracle::ShortestPathEngine;

    #[test]
    fn grid_has_expected_shape() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 4, cols: 5 },
            weight_jitter: 0.0,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        assert_eq!(g.node_count(), 20);
        // 4*4 horizontal + 3*5 vertical = 16 + 15
        assert_eq!(g.edge_count(), 31);
        assert!(g.is_connected());
        assert_eq!(g.edge_weight(0, 1), Some(cfg.block_meters));
    }

    #[test]
    fn ring_radial_has_expected_shape() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::RingRadial {
                rings: 3,
                spokes: 6,
            },
            weight_jitter: 0.0,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        assert_eq!(g.node_count(), 1 + 3 * 6);
        assert!(g.is_connected());
        // Each spoke contributes `rings` radial edges; each ring `spokes`.
        assert_eq!(g.edge_count(), 6 * 3 + 3 * 6);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 8, cols: 8 },
            seed: 42,
            edge_dropout: 0.1,
            ..GeneratorConfig::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);

        let c = GeneratorConfig { seed: 43, ..cfg }.generate();
        let ec: Vec<_> = c.edges().collect();
        assert_ne!(ea, ec, "different seeds should differ");
    }

    #[test]
    fn dropout_yields_connected_network() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 12, cols: 12 },
            seed: 5,
            edge_dropout: 0.25,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        assert!(g.is_connected());
        assert!(g.node_count() <= 144);
        assert!(g.node_count() > 50, "dropout should not shatter the grid");
    }

    #[test]
    fn weights_dominate_euclidean_distance() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 3,
            weight_jitter: 0.3,
            arterials: true,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        for (u, v, w) in g.edges() {
            assert!(
                w + 1e-9 >= g.euclidean(u, v),
                "edge {u}-{v} weight {w} below euclidean {}",
                g.euclidean(u, v)
            );
        }
    }

    #[test]
    fn arterials_shorten_diagonal_trips() {
        let base = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 11, cols: 11 },
            seed: 7,
            weight_jitter: 0.0,
            arterials: false,
            ..GeneratorConfig::default()
        };
        let with = GeneratorConfig {
            arterials: true,
            ..base
        };
        let g0 = base.generate();
        let g1 = with.generate();
        let target = (g0.node_count() - 1) as u32;
        let d0 = DijkstraEngine::new(&g0).distance(0, target).unwrap();
        let d1 = DijkstraEngine::new(&g1).distance(0, target).unwrap();
        assert!(
            d1 < d0,
            "arterials should shorten the corner-to-corner trip"
        );
    }

    #[test]
    fn expected_nodes_matches() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::RingRadial {
                rings: 2,
                spokes: 8,
            },
            ..GeneratorConfig::default()
        };
        assert_eq!(cfg.expected_nodes(), 17);
        assert_eq!(cfg.generate().node_count(), 17);
    }
}

//! Classic Dijkstra shortest-path engine.
//!
//! This is the reference implementation every other engine in the crate is
//! validated against. It supports point-to-point queries with early exit,
//! full single-source searches, and radius-bounded searches (used by the
//! dispatcher to enumerate nodes reachable within the waiting-time budget).

use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::oracle::ShortestPathEngine;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// Dijkstra engine borrowing a frozen road network.
#[derive(Debug, Clone)]
pub struct DijkstraEngine<'g> {
    graph: &'g RoadNetwork,
}

/// Result of a full or bounded single-source search.
#[derive(Debug, Clone)]
pub struct SearchTree {
    /// Distance from the source to each node (`INFINITY` when unreached).
    pub dist: Vec<Weight>,
    /// Predecessor of each node on the shortest-path tree (`u32::MAX` for the
    /// source and unreached nodes).
    pub parent: Vec<NodeId>,
    /// The search source.
    pub source: NodeId,
}

impl SearchTree {
    /// Reconstructs the path from the source to `t`, inclusive of both ends.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[t as usize] == INFINITY {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Distance from the source to `t`.
    pub fn distance_to(&self, t: NodeId) -> Option<Weight> {
        let d = self.dist[t as usize];
        if d == INFINITY {
            None
        } else {
            Some(d)
        }
    }
}

impl<'g> DijkstraEngine<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g RoadNetwork) -> Self {
        DijkstraEngine { graph }
    }

    /// The underlying network.
    pub fn graph(&self) -> &RoadNetwork {
        self.graph
    }

    /// Full single-source shortest-path tree from `s`.
    pub fn search(&self, s: NodeId) -> SearchTree {
        self.bounded_search(s, INFINITY)
    }

    /// Single-source search that stops expanding nodes farther than `radius`
    /// from `s`. Nodes beyond the radius keep distance `INFINITY`.
    pub fn bounded_search(&self, s: NodeId, radius: Weight) -> SearchTree {
        let n = self.graph.node_count();
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[s as usize] = 0.0;
        heap.push(HeapEntry::new(0.0, s));
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            let d = cost.0;
            if d > dist[node as usize] {
                continue;
            }
            if d > radius {
                // Everything left in the heap is at least as far.
                break;
            }
            for (v, w) in self.graph.neighbors(node) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    parent[v as usize] = node;
                    heap.push(HeapEntry::new(nd, v));
                }
            }
        }
        // Erase entries beyond the radius so the result is consistent with
        // "never expanded": a node relaxed but not settled within the radius
        // may have a non-final distance.
        if radius != INFINITY {
            for d in dist.iter_mut() {
                if *d > radius {
                    *d = INFINITY;
                }
            }
        }
        SearchTree {
            dist,
            parent,
            source: s,
        }
    }

    /// All nodes within `radius` of `s`, with their distances, sorted by
    /// distance.
    pub fn nodes_within(&self, s: NodeId, radius: Weight) -> Vec<(NodeId, Weight)> {
        let tree = self.bounded_search(s, radius);
        let mut out: Vec<(NodeId, Weight)> = tree
            .dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != INFINITY)
            .map(|(i, &d)| (i as NodeId, d))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        out
    }

    /// Point-to-point query with early exit once `t` is settled.
    fn point_to_point(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        if s == t {
            return Some((0.0, vec![s]));
        }
        let n = self.graph.node_count();
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[s as usize] = 0.0;
        heap.push(HeapEntry::new(0.0, s));
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            let d = cost.0;
            if d > dist[node as usize] {
                continue;
            }
            if node == t {
                let mut path = vec![t];
                let mut cur = t;
                while cur != s {
                    cur = parent[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some((d, path));
            }
            for (v, w) in self.graph.neighbors(node) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    parent[v as usize] = node;
                    heap.push(HeapEntry::new(nd, v));
                }
            }
        }
        None
    }
}

impl ShortestPathEngine for DijkstraEngine<'_> {
    fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        self.point_to_point(s, t).map(|(d, _)| d)
    }

    fn path(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        self.point_to_point(s, t)
    }
}

/// Floyd–Warshall all-pairs shortest distances, `O(V^3)`.
///
/// Only suitable for tiny graphs; used as a brute-force oracle in tests and
/// by the matrix distance oracle for unit-scale scheduling problems.
pub fn floyd_warshall(graph: &RoadNetwork) -> Vec<Vec<Weight>> {
    let n = graph.node_count();
    let mut d = vec![vec![INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (u, v, w) in graph.edges() {
        let (u, v) = (u as usize, v as usize);
        if w < d[u][v] {
            d[u][v] = w;
            d[v][u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if d[i][k] == INFINITY {
                continue;
            }
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::types::{approx_eq, Point};

    fn diamond() -> RoadNetwork {
        // 0 -1- 1 -1- 3,   0 -3- 2 -1- 3, plus 1-2 weight 10
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(0, 2, 3.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(1, 2, 10.0);
        b.build()
    }

    #[test]
    fn distance_basic() {
        let g = diamond();
        let e = DijkstraEngine::new(&g);
        assert_eq!(e.distance(0, 3), Some(2.0));
        assert_eq!(e.distance(0, 0), Some(0.0));
        assert_eq!(e.distance(2, 1), Some(2.0));
    }

    #[test]
    fn path_matches_distance() {
        let g = diamond();
        let e = DijkstraEngine::new(&g);
        let (d, p) = e.path(0, 3).unwrap();
        assert!(approx_eq(d, 2.0));
        assert_eq!(p, vec![0, 1, 3]);
        let (d, p) = e.path(3, 0).unwrap();
        assert!(approx_eq(d, 2.0));
        assert_eq!(p, vec![3, 1, 0]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let e = DijkstraEngine::new(&g);
        assert_eq!(e.distance(0, 2), None);
        assert!(e.path(0, 2).is_none());
    }

    #[test]
    fn search_tree_paths() {
        let g = diamond();
        let e = DijkstraEngine::new(&g);
        let tree = e.search(0);
        assert_eq!(tree.path_to(3).unwrap(), vec![0, 1, 3]);
        assert_eq!(tree.distance_to(2), Some(3.0));
        assert_eq!(tree.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    fn bounded_search_respects_radius() {
        let g = diamond();
        let e = DijkstraEngine::new(&g);
        let within = e.nodes_within(0, 1.5);
        let ids: Vec<NodeId> = within.iter().map(|&(n, _)| n).collect();
        assert_eq!(ids, vec![0, 1]);
        let tree = e.bounded_search(0, 1.5);
        assert_eq!(tree.distance_to(3), None);
    }

    #[test]
    fn matches_floyd_warshall_on_random_network() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 7,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let fw = floyd_warshall(&g);
        let e = DijkstraEngine::new(&g);
        for s in 0..g.node_count() as NodeId {
            let tree = e.search(s);
            for t in 0..g.node_count() as NodeId {
                let a = tree.dist[t as usize];
                let b = fw[s as usize][t as usize];
                assert!(
                    approx_eq(a, b) || (a == INFINITY && b == INFINITY),
                    "mismatch {s}->{t}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn path_is_a_real_walk_with_correct_cost() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 7 },
            seed: 3,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let e = DijkstraEngine::new(&g);
        let (d, p) = e.path(0, (g.node_count() - 1) as NodeId).unwrap();
        let mut acc = 0.0;
        for w in p.windows(2) {
            acc += g.edge_weight(w[0], w[1]).expect("edge on path must exist");
        }
        assert!(approx_eq(acc, d));
    }
}

//! A* point-to-point engine with a Euclidean admissible heuristic.
//!
//! The generators in this crate never create an edge whose weight is smaller
//! than the straight-line distance between its endpoints, so the Euclidean
//! distance to the target is an admissible and consistent heuristic and A*
//! returns exact shortest paths while settling fewer nodes than Dijkstra.

use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::oracle::ShortestPathEngine;
use crate::types::{HeapEntry, NodeId, Weight, INFINITY};

/// A* engine borrowing a frozen road network.
#[derive(Debug, Clone)]
pub struct AStarEngine<'g> {
    graph: &'g RoadNetwork,
    /// Scale applied to the Euclidean heuristic. Must be `<= 1.0` to keep the
    /// heuristic admissible when edge weights equal segment lengths; lower
    /// values trade speed for robustness on networks whose weights undercut
    /// the Euclidean length (e.g. weights in travel time with varying speed).
    heuristic_scale: f64,
}

impl<'g> AStarEngine<'g> {
    /// Creates an engine with the default (full-strength) heuristic.
    pub fn new(graph: &'g RoadNetwork) -> Self {
        AStarEngine {
            graph,
            heuristic_scale: 1.0,
        }
    }

    /// Creates an engine whose heuristic is scaled by `scale` (clamped to
    /// `[0, 1]`). A scale of 0 degenerates to Dijkstra.
    pub fn with_heuristic_scale(graph: &'g RoadNetwork, scale: f64) -> Self {
        AStarEngine {
            graph,
            heuristic_scale: scale.clamp(0.0, 1.0),
        }
    }

    fn heuristic(&self, u: NodeId, t: NodeId) -> f64 {
        self.graph.euclidean(u, t) * self.heuristic_scale
    }

    fn point_to_point(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        if s == t {
            return Some((0.0, vec![s]));
        }
        let n = self.graph.node_count();
        let mut g_score = vec![INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        let mut closed = vec![false; n];
        let mut heap = BinaryHeap::new();
        g_score[s as usize] = 0.0;
        heap.push(HeapEntry::new(self.heuristic(s, t), s));
        while let Some(HeapEntry { node, .. }) = heap.pop() {
            if closed[node as usize] {
                continue;
            }
            closed[node as usize] = true;
            if node == t {
                let mut path = vec![t];
                let mut cur = t;
                while cur != s {
                    cur = parent[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some((g_score[t as usize], path));
            }
            let gd = g_score[node as usize];
            for (v, w) in self.graph.neighbors(node) {
                if closed[v as usize] {
                    continue;
                }
                let nd = gd + w;
                if nd < g_score[v as usize] {
                    g_score[v as usize] = nd;
                    parent[v as usize] = node;
                    heap.push(HeapEntry::new(nd + self.heuristic(v, t), v));
                }
            }
        }
        None
    }
}

impl ShortestPathEngine for AStarEngine<'_> {
    fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        self.point_to_point(s, t).map(|(d, _)| d)
    }

    fn path(&self, s: NodeId, t: NodeId) -> Option<(Weight, Vec<NodeId>)> {
        self.point_to_point(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraEngine;
    use crate::generators::{GeneratorConfig, NetworkKind};
    use crate::graph::GraphBuilder;
    use crate::types::{approx_eq, Point};

    #[test]
    fn trivial_cases() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        b.add_edge(a, c, 10.0);
        let g = b.build();
        let e = AStarEngine::new(&g);
        assert_eq!(e.distance(a, a), Some(0.0));
        assert_eq!(e.distance(a, c), Some(10.0));
        assert_eq!(e.path(a, c).unwrap().1, vec![a, c]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(2.0, 0.0));
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let e = AStarEngine::new(&g);
        assert_eq!(e.distance(0, 2), None);
    }

    #[test]
    fn matches_dijkstra_on_generated_networks() {
        for (kind, seed) in [
            (NetworkKind::Grid { rows: 8, cols: 9 }, 1u64),
            (
                NetworkKind::RingRadial {
                    rings: 5,
                    spokes: 8,
                },
                2,
            ),
        ] {
            let cfg = GeneratorConfig {
                kind,
                seed,
                ..GeneratorConfig::default()
            };
            let g = cfg.generate();
            let dij = DijkstraEngine::new(&g);
            let ast = AStarEngine::new(&g);
            let n = g.node_count() as NodeId;
            for (s, t) in [(0, n - 1), (1, n / 2), (n / 3, n - 2), (n - 1, 0)] {
                let a = dij.distance(s, t);
                let b = ast.distance(s, t);
                match (a, b) {
                    (Some(x), Some(y)) => assert!(approx_eq(x, y), "{s}->{t}: {x} vs {y}"),
                    (None, None) => {}
                    _ => panic!("reachability mismatch for {s}->{t}"),
                }
            }
        }
    }

    #[test]
    fn scaled_heuristic_still_exact() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 11,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let dij = DijkstraEngine::new(&g);
        let half = AStarEngine::with_heuristic_scale(&g, 0.5);
        let zero = AStarEngine::with_heuristic_scale(&g, 0.0);
        let n = g.node_count() as NodeId;
        for (s, t) in [(0, n - 1), (2, n / 2)] {
            let d = dij.distance(s, t).unwrap();
            assert!(approx_eq(half.distance(s, t).unwrap(), d));
            assert!(approx_eq(zero.distance(s, t).unwrap(), d));
        }
    }

    #[test]
    fn path_cost_consistent_with_distance() {
        let cfg = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 7, cols: 5 },
            seed: 5,
            ..GeneratorConfig::default()
        };
        let g = cfg.generate();
        let e = AStarEngine::new(&g);
        let (d, p) = e.path(0, (g.node_count() - 1) as NodeId).unwrap();
        let mut acc = 0.0;
        for w in p.windows(2) {
            acc += g.edge_weight(w[0], w[1]).unwrap();
        }
        assert!(approx_eq(acc, d));
    }
}

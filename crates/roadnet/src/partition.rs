//! Deterministic k-way partitioning of a road network into contiguous
//! regions.
//!
//! The sharded simulation engine (`rideshare-sim`) runs each region of the
//! city as a near-independent simulation and exchanges boundary traffic
//! through a message broker. Everything downstream of a partition —
//! which shard owns which vehicle, which requests cross regions, which
//! messages flow at a tick barrier — must be a pure function of the
//! `(network, k)` pair, so this module is deterministic by construction:
//!
//! 1. **Seed selection** recursively splits the node set kd-tree style
//!    (median cut along the wider bounding-box axis, ties broken by node
//!    id) into `k` cells and picks the node nearest each cell's centroid
//!    (ties again by node id).
//! 2. **Region growing** runs a multi-source Dijkstra from the `k` seeds
//!    over road distance; the frontier is ordered by `(distance, region,
//!    node)` under `f64::total_cmp`, so every node is claimed by exactly
//!    one region in an order no hash map or thread schedule can perturb.
//! 3. Nodes unreachable from every seed (disconnected fragments) are
//!    assigned to the euclidean-nearest seed, lowest region first.
//!
//! The resulting [`PartitionSpec`] classifies **boundary edges** (edges
//! whose endpoints lie in different regions — the road segments on which
//! vehicles migrate between shards) and carries a stable fingerprint
//! binding it to the network, so engines can verify they agree on the
//! partition before exchanging state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::RoadNetwork;
use crate::io::bin;
use crate::types::NodeId;

/// A total-ordered f64 wrapper so Dijkstra's frontier has a deterministic
/// pop order (`total_cmp` — the graph has no NaN weights, but the order
/// must be total for `BinaryHeap`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A deterministic assignment of every road-network node to one of `k`
/// contiguous regions, with the cross-region edges classified.
///
/// Build one with [`PartitionSpec::grow`]; `k = 1` yields the trivial
/// partition under which a sharded engine degenerates to the single-shard
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    k: u16,
    region_of: Vec<u16>,
    sizes: Vec<usize>,
    boundary_edges: Vec<(NodeId, NodeId)>,
    total_edges: usize,
    fingerprint: u64,
}

impl PartitionSpec {
    /// Partitions `network` into `k` regions (clamped to `1..=node_count`
    /// and at most `u16::MAX`). Deterministic: the same `(network, k)`
    /// always produces the same assignment, byte for byte.
    pub fn grow(network: &RoadNetwork, k: usize) -> Self {
        let n = network.node_count();
        let k = k.clamp(1, n.max(1)).min(u16::MAX as usize) as u16;
        let seeds = select_seeds(network, k);
        let region_of = grow_regions(network, &seeds);
        let mut sizes = vec![0usize; k as usize];
        for &r in &region_of {
            sizes[r as usize] += 1;
        }
        let mut boundary_edges = Vec::new();
        let mut total_edges = 0usize;
        for (u, v, _w) in network.edges() {
            total_edges += 1;
            if region_of[u as usize] != region_of[v as usize] {
                boundary_edges.push((u, v));
            }
        }
        let fingerprint = fingerprint_of(network, k, &region_of);
        PartitionSpec {
            k,
            region_of,
            sizes,
            boundary_edges,
            total_edges,
            fingerprint,
        }
    }

    /// The trivial one-region partition (every node in region 0).
    pub fn single(network: &RoadNetwork) -> Self {
        Self::grow(network, 1)
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.k as usize
    }

    /// Region owning `node`.
    pub fn region_of(&self, node: NodeId) -> u16 {
        self.region_of[node as usize]
    }

    /// Node count of each region, indexed by region id.
    pub fn region_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Edges whose endpoints lie in different regions, in the network's
    /// canonical edge order — the road segments over which vehicles
    /// migrate between shards.
    pub fn boundary_edges(&self) -> &[(NodeId, NodeId)] {
        &self.boundary_edges
    }

    /// Fraction of the network's edges that cross a region boundary
    /// (0.0 for `k = 1`). A quality signal: lower means less cross-shard
    /// traffic.
    pub fn boundary_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.boundary_edges.len() as f64 / self.total_edges as f64
        }
    }

    /// Whether the directed pair `(u, v)` crosses a region boundary.
    pub fn is_cross_region(&self, u: NodeId, v: NodeId) -> bool {
        self.region_of[u as usize] != self.region_of[v as usize]
    }

    /// Stable identity of this partition: an FNV-1a digest over the
    /// network fingerprint, `k` and the full node-to-region assignment.
    /// Two engines agreeing on the fingerprint agree on every ownership
    /// decision the partition implies.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

fn fingerprint_of(network: &RoadNetwork, k: u16, region_of: &[u16]) -> u64 {
    let mut buf = Vec::with_capacity(16 + 2 * region_of.len());
    bin::put_u64(&mut buf, network.fingerprint());
    bin::put_u64(&mut buf, k as u64);
    for &r in region_of {
        buf.extend_from_slice(&r.to_le_bytes());
    }
    bin::fnv1a(&buf)
}

/// Recursive kd-style median split of the node set into `k` cells, then
/// one seed per cell: the node nearest the cell centroid (ties by id).
fn select_seeds(network: &RoadNetwork, k: u16) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = (0..network.node_count() as NodeId).collect();
    let mut seeds = Vec::with_capacity(k as usize);
    split(network, &mut nodes, k as usize, &mut seeds);
    seeds
}

fn split(network: &RoadNetwork, nodes: &mut [NodeId], k: usize, seeds: &mut Vec<NodeId>) {
    if nodes.is_empty() {
        return;
    }
    if k <= 1 || nodes.len() == 1 {
        seeds.push(centroid_node(network, nodes));
        return;
    }
    // Wider axis of this cell's bounding box decides the cut direction.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &u in nodes.iter() {
        let p = network.point(u);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let use_x = (max_x - min_x) >= (max_y - min_y);
    nodes.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (network.point(a), network.point(b));
        let (ca, cb) = if use_x { (pa.x, pb.x) } else { (pa.y, pb.y) };
        ca.total_cmp(&cb).then(a.cmp(&b))
    });
    // Split node and region counts proportionally so any k (not just
    // powers of two) yields balanced cells.
    let k_left = k / 2;
    let cut = (nodes.len() * k_left)
        .div_euclid(k)
        .clamp(1, nodes.len() - 1);
    let (left, right) = nodes.split_at_mut(cut);
    split(network, left, k_left, seeds);
    split(network, right, k - k_left, seeds);
}

fn centroid_node(network: &RoadNetwork, nodes: &[NodeId]) -> NodeId {
    let (mut cx, mut cy) = (0.0, 0.0);
    for &u in nodes {
        let p = network.point(u);
        cx += p.x;
        cy += p.y;
    }
    cx /= nodes.len() as f64;
    cy /= nodes.len() as f64;
    let mut best = nodes[0];
    let mut best_d = f64::INFINITY;
    for &u in nodes {
        let p = network.point(u);
        let d = (p.x - cx).powi(2) + (p.y - cy).powi(2);
        if d < best_d || (d == best_d && u < best) {
            best = u;
            best_d = d;
        }
    }
    best
}

/// Multi-source Dijkstra with a `(distance, region, node)` total order:
/// every node joins the region that reaches it first, lowest region id
/// winning exact ties.
fn grow_regions(network: &RoadNetwork, seeds: &[NodeId]) -> Vec<u16> {
    const UNASSIGNED: u16 = u16::MAX;
    let n = network.node_count();
    let mut region_of = vec![UNASSIGNED; n];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u16, NodeId)>> = BinaryHeap::new();
    for (r, &s) in seeds.iter().enumerate() {
        heap.push(Reverse((OrdF64(0.0), r as u16, s)));
    }
    while let Some(Reverse((OrdF64(d), r, u))) = heap.pop() {
        if region_of[u as usize] != UNASSIGNED {
            continue;
        }
        region_of[u as usize] = r;
        for (v, w) in network.neighbors(u) {
            if region_of[v as usize] == UNASSIGNED {
                heap.push(Reverse((OrdF64(d + w), r, v)));
            }
        }
    }
    // Disconnected fragments: claim by euclidean-nearest seed (ties by
    // lowest region id) so every node is owned.
    for u in 0..n as NodeId {
        if region_of[u as usize] == UNASSIGNED {
            let p = network.point(u);
            let mut best = 0u16;
            let mut best_d = f64::INFINITY;
            for (r, &s) in seeds.iter().enumerate() {
                let q = network.point(s);
                let d = (p.x - q.x).powi(2) + (p.y - q.y).powi(2);
                if d < best_d {
                    best = r as u16;
                    best_d = d;
                }
            }
            region_of[u as usize] = best;
        }
    }
    region_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, NetworkKind};

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    #[test]
    fn every_node_is_assigned_exactly_once() {
        let g = grid(12, 12, 3);
        for k in [1usize, 2, 3, 4, 8] {
            let p = PartitionSpec::grow(&g, k);
            assert_eq!(p.regions(), k);
            assert_eq!(p.region_sizes().iter().sum::<usize>(), g.node_count());
            assert!(p.region_sizes().iter().all(|&s| s > 0), "k = {k}");
            for u in 0..g.node_count() as NodeId {
                assert!((p.region_of(u) as usize) < k);
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let g = grid(10, 14, 7);
        for k in [2usize, 4, 8] {
            let a = PartitionSpec::grow(&g, k);
            let b = PartitionSpec::grow(&g, k);
            assert_eq!(a, b);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn fingerprint_separates_k_and_network() {
        let g = grid(9, 9, 1);
        let h = grid(9, 9, 2);
        let g2 = PartitionSpec::grow(&g, 2);
        let g4 = PartitionSpec::grow(&g, 4);
        let h2 = PartitionSpec::grow(&h, 2);
        assert_ne!(g2.fingerprint(), g4.fingerprint());
        assert_ne!(g2.fingerprint(), h2.fingerprint());
    }

    #[test]
    fn boundary_edges_are_exactly_the_cross_region_ones() {
        let g = grid(11, 11, 5);
        let p = PartitionSpec::grow(&g, 4);
        let expected: Vec<(NodeId, NodeId)> = g
            .edges()
            .filter(|&(u, v, _)| p.region_of(u) != p.region_of(v))
            .map(|(u, v, _)| (u, v))
            .collect();
        assert_eq!(p.boundary_edges(), expected.as_slice());
        assert!(!p.boundary_edges().is_empty(), "4 regions must touch");
        assert!(p.boundary_fraction() > 0.0 && p.boundary_fraction() < 0.5);
        for &(u, v) in p.boundary_edges() {
            assert!(p.is_cross_region(u, v));
        }
    }

    #[test]
    fn single_region_has_no_boundary() {
        let g = grid(6, 6, 2);
        let p = PartitionSpec::single(&g);
        assert_eq!(p.regions(), 1);
        assert!(p.boundary_edges().is_empty());
        assert_eq!(p.boundary_fraction(), 0.0);
    }

    #[test]
    fn regions_are_contiguous_on_a_connected_grid() {
        // Every region of a connected network must itself be connected:
        // region growing claims nodes along shortest paths from the seed,
        // so a region is a union of shortest-path trees.
        let g = grid(10, 10, 9);
        for k in [2usize, 4, 8] {
            let p = PartitionSpec::grow(&g, k);
            for r in 0..k as u16 {
                let members: Vec<NodeId> = (0..g.node_count() as NodeId)
                    .filter(|&u| p.region_of(u) == r)
                    .collect();
                // BFS inside the region from its first member.
                let mut seen = vec![false; g.node_count()];
                let mut queue = std::collections::VecDeque::new();
                seen[members[0] as usize] = true;
                queue.push_back(members[0]);
                let mut reached = 1;
                while let Some(u) = queue.pop_front() {
                    for (v, _) in g.neighbors(u) {
                        if p.region_of(v) == r && !seen[v as usize] {
                            seen[v as usize] = true;
                            reached += 1;
                            queue.push_back(v);
                        }
                    }
                }
                assert_eq!(reached, members.len(), "region {r} of k={k} split");
            }
        }
    }

    #[test]
    fn k_is_clamped_to_node_count() {
        let g = grid(2, 2, 1);
        let p = PartitionSpec::grow(&g, 50);
        assert_eq!(p.regions(), 4);
        assert_eq!(p.region_sizes().iter().sum::<usize>(), 4);
    }
}

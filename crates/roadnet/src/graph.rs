//! Compact storage of a weighted, undirected road network.
//!
//! Networks are built once with [`GraphBuilder`] and then frozen into a
//! [`RoadNetwork`], a compressed-sparse-row (CSR) adjacency structure that
//! every shortest-path engine iterates over. The paper keeps two copies of
//! the Shanghai network in memory: the hub-label structure for distance
//! queries and a plain weighted adjacency list for tracking taxi movement.
//! [`RoadNetwork`] is that adjacency-list copy; [`crate::HubLabels`] is the
//! other.

use crate::error::RoadNetError;
use crate::types::{EdgeId, NodeId, Point, Weight};

/// Incrementally assembles a road network before freezing it into CSR form.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    points: Vec<Point>,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity for `nodes` nodes and
    /// `edges` undirected edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            points: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node at `point` and returns its id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = self.points.len() as NodeId;
        self.points.push(point);
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of undirected edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge between `u` and `v` with travel cost `weight`
    /// (meters).
    ///
    /// Duplicate edges are allowed; the shortest-path engines simply relax
    /// both and keep the cheaper one.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) {
        self.edges.push((u, v, weight));
    }

    /// Validates all pending nodes/edges and freezes the network.
    pub fn try_build(self) -> Result<RoadNetwork, RoadNetError> {
        if self.points.is_empty() {
            return Err(RoadNetError::EmptyNetwork);
        }
        let n = self.points.len() as u32;
        for &(u, v, w) in &self.edges {
            if u >= n {
                return Err(RoadNetError::UnknownNode(u));
            }
            if v >= n {
                return Err(RoadNetError::UnknownNode(v));
            }
            if u == v {
                return Err(RoadNetError::SelfLoop(u));
            }
            if !w.is_finite() || w < 0.0 {
                return Err(RoadNetError::InvalidWeight(w));
            }
        }
        Ok(RoadNetwork::from_parts(self.points, self.edges))
    }

    /// Validates and freezes the network, panicking on malformed input.
    ///
    /// Convenient for generators and tests where the input is known-good;
    /// loaders should prefer [`GraphBuilder::try_build`].
    pub fn build(self) -> RoadNetwork {
        self.try_build().expect("invalid road network")
    }
}

/// A frozen, undirected, weighted road network in CSR form.
///
/// Each undirected edge is stored twice (once per direction) in the CSR
/// arrays so that neighbour iteration is a contiguous slice scan.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    points: Vec<Point>,
    /// CSR row offsets: neighbours of `u` live in `targets[offsets[u]..offsets[u + 1]]`.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
    /// Undirected edge list as added, used by iteration and serialisation.
    edge_list: Vec<(NodeId, NodeId, Weight)>,
}

impl RoadNetwork {
    pub(crate) fn from_parts(points: Vec<Point>, edges: Vec<(NodeId, NodeId, Weight)>) -> Self {
        let n = points.len();
        let mut degree = vec![0u32; n];
        for &(u, v, _) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n] as usize;
        let mut targets = vec![0 as NodeId; total];
        let mut weights = vec![0.0; total];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &edges {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        RoadNetwork {
            points,
            offsets,
            targets,
            weights,
            edge_list: edges,
        }
    }

    /// Number of nodes (road intersections).
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of undirected edges (road segments).
    pub fn edge_count(&self) -> usize {
        self.edge_list.len()
    }

    /// Planar position of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn point(&self, u: NodeId) -> Point {
        self.points[u as usize]
    }

    /// All node positions, indexed by node id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterates over the neighbours of `u` as `(neighbour, edge weight)` pairs.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Degree of node `u` (number of incident directed arcs, i.e. incident
    /// undirected edges counting duplicates).
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Weight of the edge `(u, v)` if one exists (the minimum over parallel
    /// edges).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let mut best: Option<Weight> = None;
        for (t, w) in self.neighbors(u) {
            if t == v {
                best = Some(best.map_or(w, |b: Weight| b.min(w)));
            }
        }
        best
    }

    /// Iterates over all undirected edges as `(u, v, weight)` in insertion
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.edge_list.iter().copied()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.points.len() as NodeId
    }

    /// Returns the id of a specific edge occurrence in the undirected edge
    /// list, if `(u, v)` (in either orientation) was ever added.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.edge_list
            .iter()
            .position(|&(a, b, _)| (a == u && b == v) || (a == v && b == u))
            .map(|i| i as EdgeId)
    }

    /// Euclidean distance between two nodes' positions (a lower bound on the
    /// network distance for generator-produced networks).
    pub fn euclidean(&self, u: NodeId, v: NodeId) -> f64 {
        self.point(u).distance(&self.point(v))
    }

    /// Sum of all edge weights, useful as an upper bound on any simple path
    /// cost.
    pub fn total_weight(&self) -> Weight {
        self.edge_list.iter().map(|&(_, _, w)| w).sum()
    }

    /// True if every node can reach every other node.
    ///
    /// Runs a breadth-first search from node 0; `O(V + E)`.
    pub fn is_connected(&self) -> bool {
        if self.points.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.node_count()
    }

    /// Returns the largest connected component as a new network, together
    /// with the mapping from new node ids to original ids.
    ///
    /// Generators occasionally produce disconnected artefacts when edges are
    /// randomly dropped; the simulator requires a connected network so that
    /// every trip is feasible.
    pub fn largest_component(&self) -> (RoadNetwork, Vec<NodeId>) {
        let n = self.node_count();
        let mut comp = vec![u32::MAX; n];
        let mut sizes: Vec<usize> = Vec::new();
        for start in 0..n as NodeId {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            let id = sizes.len() as u32;
            let mut size = 0usize;
            let mut stack = vec![start];
            comp[start as usize] = id;
            while let Some(u) = stack.pop() {
                size += 1;
                for (v, _) in self.neighbors(u) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = id;
                        stack.push(v);
                    }
                }
            }
            sizes.push(size);
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        let mut new_id = vec![u32::MAX; n];
        let mut old_of_new: Vec<NodeId> = Vec::new();
        let mut builder = GraphBuilder::new();
        for u in 0..n {
            if comp[u] == best {
                new_id[u] = builder.add_node(self.points[u]);
                old_of_new.push(u as NodeId);
            }
        }
        for &(u, v, w) in &self.edge_list {
            if comp[u as usize] == best && comp[v as usize] == best {
                builder.add_edge(new_id[u as usize], new_id[v as usize], w);
            }
        }
        (builder.build(), old_of_new)
    }

    /// A 64-bit fingerprint of this network's full structure: node and edge
    /// counts, every node position, and every edge `(u, v, weight)` in
    /// insertion order (FNV-1a over their little-endian byte images).
    ///
    /// Two networks share a fingerprint exactly when they are
    /// indistinguishable to every engine in this crate, so the fingerprint
    /// is what on-disk artefacts derived from a network (persisted hub
    /// labels, simulation checkpoints) embed to refuse being applied to a
    /// different network.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(&(self.points.len() as u64).to_le_bytes());
        mix(&(self.edge_list.len() as u64).to_le_bytes());
        for p in &self.points {
            mix(&p.x.to_le_bytes());
            mix(&p.y.to_le_bytes());
        }
        for &(u, v, w) in &self.edge_list {
            mix(&u.to_le_bytes());
            mix(&v.to_le_bytes());
            mix(&w.to_le_bytes());
        }
        h
    }

    /// Bounding box of all node positions as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::approx_eq;

    fn triangle() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let d = b.add_node(Point::new(0.0, 1.0));
        b.add_edge(a, c, 1.0);
        b.add_edge(c, d, 2.0);
        b.add_edge(a, d, 4.0);
        b.build()
    }

    #[test]
    fn builder_counts() {
        let mut b = GraphBuilder::with_capacity(4, 4);
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_edge(0, 1, 5.0);
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn csr_neighbors_cover_both_directions() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0.len(), 2);
        assert!(n0.contains(&(1, 1.0)));
        assert!(n0.contains(&(2, 4.0)));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(2, 1), Some(2.0));
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_edge(0, 1, 5.0);
        b.add_edge(0, 1, 3.0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn build_rejects_bad_input() {
        let err = GraphBuilder::new().try_build().unwrap_err();
        assert_eq!(err, RoadNetError::EmptyNetwork);

        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_edge(0, 5, 1.0);
        assert_eq!(b.try_build().unwrap_err(), RoadNetError::UnknownNode(5));

        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_edge(0, 0, 1.0);
        assert_eq!(b.try_build().unwrap_err(), RoadNetError::SelfLoop(0));

        let mut b = GraphBuilder::new();
        b.add_node(Point::default());
        b.add_node(Point::default());
        b.add_edge(0, 1, -1.0);
        assert_eq!(
            b.try_build().unwrap_err(),
            RoadNetError::InvalidWeight(-1.0)
        );
    }

    #[test]
    fn connectivity_and_components() {
        let g = triangle();
        assert!(g.is_connected());

        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(3, 4, 1.0);
        let g = b.build();
        assert!(!g.is_connected());
        let (lcc, mapping) = g.largest_component();
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 2);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert!(lcc.is_connected());
    }

    #[test]
    fn bounding_box_and_total_weight() {
        let g = triangle();
        let (min, max) = g.bounding_box();
        assert!(approx_eq(min.x, 0.0) && approx_eq(min.y, 0.0));
        assert!(approx_eq(max.x, 1.0) && approx_eq(max.y, 1.0));
        assert!(approx_eq(g.total_weight(), 7.0));
    }

    #[test]
    fn find_edge_ignores_orientation() {
        let g = triangle();
        assert_eq!(g.find_edge(2, 1), Some(1));
        assert_eq!(g.find_edge(1, 2), Some(1));
        assert_eq!(g.find_edge(0, 0), None);
    }

    #[test]
    fn fingerprint_separates_structurally_different_networks() {
        let g = triangle();
        assert_eq!(g.fingerprint(), triangle().fingerprint());
        // A different weight, a different coordinate, or a different edge
        // set each move the fingerprint.
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_node(Point::new(0.0, 1.0));
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(0, 2, 4.5);
        assert_ne!(g.fingerprint(), b.build().fingerprint());
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_edge(0, 1, 1.0);
        assert_ne!(g.fingerprint(), b.build().fingerprint());
    }

    #[test]
    fn euclidean_lower_bounds_edges() {
        let g = triangle();
        assert!(g.euclidean(0, 1) <= g.edge_weight(0, 1).unwrap());
        assert!(g.euclidean(1, 2) <= g.edge_weight(1, 2).unwrap());
    }
}

//! LRU caches for shortest-path distances and paths.
//!
//! The paper observes that "the shortest path algorithm is called very
//! frequently and can be the bottleneck if not implemented efficiently. We
//! observe the repeated calling follows a pattern that preserves locality.
//! So, we implement two LRU caches using a single hash table, one storing up
//! to ten million shortest distances and the other storing up to ten
//! thousand shortest paths... Both caches are indexed only by the starting
//! and destination points... by defining the index for two vertices s and e
//! as i = id(s) · |V| + id(e)."
//!
//! [`LruCache`] is a generic order-tracking map (hash map plus an intrusive
//! doubly-linked list over slot indices); [`SharedPathCaches`] combines a
//! large distance cache and a small path cache behind the paper's shared key
//! scheme and keeps hit/miss statistics.

use std::collections::HashMap;

use crate::types::{NodeId, Weight};

/// A fixed-capacity least-recently-used cache.
///
/// Entries are stored in a slab of slots threaded onto an intrusive doubly
/// linked list; the hash map points keys at slots. All operations are
/// `O(1)` expected.
#[derive(Debug, Clone)]
pub struct LruCache<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A zero capacity
    /// cache never stores anything (every lookup is a miss).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups that hit, or 0 when no lookups have been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        match self.map.get(&key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.touch(slot);
                Some(&self.slots[slot].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without updating recency or statistics.
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.map.get(&key).map(|&slot| &self.slots[slot].value)
    }

    /// Inserts or replaces `key`, evicting the least-recently-used entry when
    /// at capacity.
    pub fn put(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.touch(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict tail, reuse its slot.
            let victim = self.tail;
            let old_key = self.slots[victim].key;
            self.detach(victim);
            self.map.remove(&old_key);
            self.slots[victim].key = key;
            self.slots[victim].value = value;
            self.attach_front(victim);
            self.map.insert(key, victim);
        } else {
            let slot = self.slots.len();
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.attach_front(slot);
            self.map.insert(key, slot);
        }
    }

    /// Removes every entry but keeps statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Resets hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.detach(slot);
        self.attach_front(slot);
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Keys from most to least recently used (diagnostics/tests only).
    pub fn keys_by_recency(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur].key);
            cur = self.slots[cur].next;
        }
        out
    }
}

/// The paper's pair of caches: a large distance cache and a small path cache
/// sharing the key scheme `id(s) * |V| + id(e)`.
#[derive(Debug, Clone)]
pub struct SharedPathCaches {
    node_count: u64,
    distances: LruCache<Weight>,
    paths: LruCache<Vec<NodeId>>,
}

/// Default distance-cache capacity (the paper stores up to ten million).
pub const DEFAULT_DISTANCE_CACHE: usize = 10_000_000;
/// Default path-cache capacity (the paper stores up to ten thousand).
pub const DEFAULT_PATH_CACHE: usize = 10_000;

impl SharedPathCaches {
    /// Creates caches for a network with `node_count` nodes using the
    /// paper's default capacities.
    pub fn new(node_count: usize) -> Self {
        Self::with_capacity(node_count, DEFAULT_DISTANCE_CACHE, DEFAULT_PATH_CACHE)
    }

    /// Creates caches with explicit capacities (0 disables a cache).
    pub fn with_capacity(node_count: usize, distance_cap: usize, path_cap: usize) -> Self {
        SharedPathCaches {
            node_count: node_count as u64,
            distances: LruCache::new(distance_cap),
            paths: LruCache::new(path_cap),
        }
    }

    /// The shared pair key: `id(s) * |V| + id(e)`.
    pub fn key(&self, s: NodeId, e: NodeId) -> u64 {
        s as u64 * self.node_count + e as u64
    }

    /// Cached distance, if present.
    pub fn get_distance(&mut self, s: NodeId, e: NodeId) -> Option<Weight> {
        let k = self.key(s, e);
        self.distances.get(k).copied()
    }

    /// Stores a distance.
    pub fn put_distance(&mut self, s: NodeId, e: NodeId, d: Weight) {
        let k = self.key(s, e);
        self.distances.put(k, d);
    }

    /// Cached path, if present.
    pub fn get_path(&mut self, s: NodeId, e: NodeId) -> Option<Vec<NodeId>> {
        let k = self.key(s, e);
        self.paths.get(k).cloned()
    }

    /// Stores a path.
    pub fn put_path(&mut self, s: NodeId, e: NodeId, p: Vec<NodeId>) {
        let k = self.key(s, e);
        self.paths.put(k, p);
    }

    /// Hit rate of the distance cache.
    pub fn distance_hit_rate(&self) -> f64 {
        self.distances.hit_rate()
    }

    /// Hit rate of the path cache.
    pub fn path_hit_rate(&self) -> f64 {
        self.paths.hit_rate()
    }

    /// (hits, misses) of the distance cache.
    pub fn distance_stats(&self) -> (u64, u64) {
        (self.distances.hits(), self.distances.misses())
    }

    /// (hits, misses) of the path cache.
    pub fn path_stats(&self) -> (u64, u64) {
        (self.paths.hits(), self.paths.misses())
    }

    /// Clears both caches.
    pub fn clear(&mut self) {
        self.distances.clear();
        self.paths.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut c = LruCache::new(4);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = LruCache::new(3);
        c.put(1, 1);
        c.put(2, 2);
        c.put(3, 3);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(1).is_some());
        c.put(4, 4);
        assert_eq!(c.peek(2), None, "2 should have been evicted");
        assert!(c.peek(1).is_some());
        assert!(c.peek(3).is_some());
        assert!(c.peek(4).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn replacing_existing_key_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        c.put(1, "a2");
        c.put(3, "c"); // evicts 2, not 1
        assert_eq!(c.peek(1), Some(&"a2"));
        assert_eq!(c.peek(2), None);
        assert_eq!(c.keys_by_recency(), vec![3, 1]);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.put(1, 1);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_and_stats() {
        let mut c = LruCache::new(2);
        c.put(1, 1);
        let _ = c.get(1);
        let _ = c.get(2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        c.reset_stats();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn shared_caches_key_scheme_matches_paper() {
        let caches = SharedPathCaches::with_capacity(1000, 10, 10);
        assert_eq!(caches.key(3, 7), 3 * 1000 + 7);
        assert_ne!(caches.key(3, 7), caches.key(7, 3));
    }

    #[test]
    fn shared_caches_roundtrip() {
        let mut caches = SharedPathCaches::with_capacity(100, 10, 2);
        assert_eq!(caches.get_distance(1, 2), None);
        caches.put_distance(1, 2, 42.0);
        assert_eq!(caches.get_distance(1, 2), Some(42.0));
        caches.put_path(1, 2, vec![1, 5, 2]);
        assert_eq!(caches.get_path(1, 2), Some(vec![1, 5, 2]));
        assert!(caches.distance_hit_rate() > 0.0);
        let (h, m) = caches.distance_stats();
        assert_eq!((h, m), (1, 1));
        caches.clear();
        assert_eq!(caches.get_path(1, 2), None);
    }

    #[test]
    fn lru_never_exceeds_capacity_under_churn() {
        let mut c = LruCache::new(16);
        for i in 0..10_000u64 {
            c.put(i % 97, i);
            assert!(c.len() <= 16);
        }
    }
}

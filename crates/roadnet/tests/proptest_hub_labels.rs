//! Property-based tests of the contraction-ordered hub-label pipeline:
//! exactness against Dijkstra on random generator networks, bit-identity
//! of the rank-batched parallel build, and persistence round-trips.

use proptest::prelude::*;
use roadnet::{
    DijkstraEngine, GeneratorConfig, HubLabels, HubOrdering, NetworkKind, NodeId,
    ShortestPathEngine,
};
use workpool::WorkPool;

/// Random road-like networks across both generator topologies, with
/// dropout and jitter so shortest paths are non-trivial.
fn network_strategy() -> impl Strategy<Value = (roadnet::RoadNetwork, u64)> {
    (0u8..2, 3usize..9, 4usize..9, 0u64..10_000, 0.0f64..0.25).prop_map(
        |(kind, a, b, seed, dropout)| {
            let kind = match kind {
                0 => NetworkKind::Grid { rows: a, cols: b },
                _ => NetworkKind::RingRadial {
                    rings: a,
                    spokes: b + 2,
                },
            };
            let g = GeneratorConfig {
                kind,
                seed,
                edge_dropout: dropout,
                ..GeneratorConfig::default()
            }
            .generate();
            (g, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Contraction-ordered labels answer every sampled query exactly like
    /// Dijkstra, on grids and ring-radial networks alike.
    #[test]
    fn contraction_labels_match_dijkstra((g, seed) in network_strategy()) {
        let hl = HubLabels::build_with(&g, HubOrdering::Contraction);
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as u64;
        for i in 0..8u64 {
            let s = ((seed.wrapping_mul(37).wrapping_add(i * 11)) % n) as NodeId;
            let t = ((seed.wrapping_mul(23).wrapping_add(i * 29 + 3)) % n) as NodeId;
            let expect = dij.distance(s, t);
            let got = hl.distance(s, t);
            match (expect, got) {
                (Some(a), Some(b)) => prop_assert!(
                    (a - b).abs() < 1e-6,
                    "{s}->{t}: dijkstra {a} vs labels {b}"
                ),
                (None, None) => {}
                other => prop_assert!(false, "reachability mismatch {s}->{t}: {other:?}"),
            }
        }
    }

    /// The rank-batched parallel build is bit-identical to the sequential
    /// build at every worker count, for every ordering strategy.
    #[test]
    fn parallel_build_is_bit_identical((g, _seed) in network_strategy(), workers in 2usize..9) {
        for ordering in [HubOrdering::Contraction, HubOrdering::Degree] {
            let sequential = HubLabels::build_sequential(&g, ordering);
            let parallel = HubLabels::build_with_pool(&g, ordering, &WorkPool::new(workers));
            prop_assert_eq!(
                &parallel,
                &sequential,
                "labels diverged at {} workers ({:?})",
                workers,
                ordering
            );
        }
    }

    /// Serialising and reloading labels reproduces them exactly, and the
    /// reloaded oracle still answers queries.
    #[test]
    fn persisted_labels_roundtrip((g, seed) in network_strategy()) {
        let hl = HubLabels::build(&g);
        let path = std::env::temp_dir().join(format!(
            "roadnet_proptest_labels_{seed}_{}.hlbl",
            g.node_count()
        ));
        hl.save(&g, &path).expect("save");
        let back = HubLabels::load(&path, &g).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&back, &hl);
        let n = g.node_count() as u64;
        let s = ((seed * 13) % n) as NodeId;
        let t = ((seed * 7 + 1) % n) as NodeId;
        prop_assert_eq!(back.distance(s, t), hl.distance(s, t));
    }
}

//! Property-based tests of the shortest-path engines and caches.

use proptest::prelude::*;
use roadnet::{
    AStarEngine, BidirectionalEngine, CachedOracle, DijkstraEngine, DistanceOracle,
    GeneratorConfig, HubLabels, LruCache, NetworkKind, NodeId, ShortestPathEngine,
};

fn network_strategy() -> impl Strategy<Value = (roadnet::RoadNetwork, u64)> {
    (3usize..8, 3usize..8, 0u64..1_000, 0.0f64..0.2).prop_map(|(rows, cols, seed, dropout)| {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            edge_dropout: dropout,
            ..GeneratorConfig::default()
        }
        .generate();
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every engine agrees with Dijkstra on distances, and hub labels are
    /// exact.
    #[test]
    fn engines_agree_on_distances((g, seed) in network_strategy()) {
        let n = g.node_count() as NodeId;
        let dij = DijkstraEngine::new(&g);
        let ast = AStarEngine::new(&g);
        let bi = BidirectionalEngine::new(&g);
        let hl = HubLabels::build(&g);
        for i in 0..6u64 {
            let s = ((seed.wrapping_mul(31).wrapping_add(i * 7)) % n as u64) as NodeId;
            let t = ((seed.wrapping_mul(17).wrapping_add(i * 13)) % n as u64) as NodeId;
            let d0 = dij.distance(s, t);
            for d in [ast.distance(s, t), bi.distance(s, t), hl.distance(s, t)] {
                match (d0, d) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6),
                    (None, None) => {}
                    other => prop_assert!(false, "reachability mismatch: {other:?}"),
                }
            }
        }
    }

    /// Shortest distances are symmetric (undirected network) and satisfy the
    /// triangle inequality.
    #[test]
    fn metric_properties((g, seed) in network_strategy()) {
        let oracle = CachedOracle::without_labels(&g);
        let n = g.node_count() as u64;
        let pick = |x: u64| ((seed.wrapping_mul(2654435761).wrapping_add(x * 97)) % n) as NodeId;
        for i in 0..5u64 {
            let (a, b, c) = (pick(3 * i), pick(3 * i + 1), pick(3 * i + 2));
            let ab = oracle.dist(a, b);
            let ba = oracle.dist(b, a);
            prop_assert!((ab - ba).abs() < 1e-6 || (ab.is_infinite() && ba.is_infinite()));
            let ac = oracle.dist(a, c);
            let cb = oracle.dist(c, b);
            if ab.is_finite() && ac.is_finite() && cb.is_finite() {
                prop_assert!(ab <= ac + cb + 1e-6);
            }
            prop_assert_eq!(oracle.dist(a, a), 0.0);
        }
    }

    /// A reported path is a real walk in the graph whose edge weights sum to
    /// the reported distance.
    #[test]
    fn paths_are_consistent((g, seed) in network_strategy()) {
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as u64;
        let s = ((seed * 11) % n) as NodeId;
        let t = ((seed * 29 + 5) % n) as NodeId;
        if let Some((d, p)) = dij.path(s, t) {
            prop_assert_eq!(p[0], s);
            prop_assert_eq!(*p.last().unwrap(), t);
            let mut acc = 0.0;
            for w in p.windows(2) {
                let e = g.edge_weight(w[0], w[1]);
                prop_assert!(e.is_some(), "path uses non-existent edge");
                acc += e.unwrap();
            }
            prop_assert!((acc - d).abs() < 1e-6);
        }
    }

    /// The LRU cache never exceeds its capacity and always returns the last
    /// value stored for a key.
    #[test]
    fn lru_cache_invariants(ops in prop::collection::vec((0u64..40, 0u64..1_000), 1..400), cap in 1usize..24) {
        let mut cache = LruCache::new(cap);
        let mut last = std::collections::HashMap::new();
        for (key, value) in ops {
            cache.put(key, value);
            last.insert(key, value);
            prop_assert!(cache.len() <= cap);
            if let Some(v) = cache.peek(key) {
                prop_assert_eq!(*v, *last.get(&key).unwrap());
            } else {
                prop_assert!(false, "key just inserted must be present");
            }
        }
    }
}

//! Property-based tests of the LP/MIP solver against brute-force references.

use proptest::prelude::*;
use rideshare_mip::{ConstraintOp, Model, Sense};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary knapsack: branch and bound matches exhaustive enumeration.
    #[test]
    fn knapsack_matches_enumeration(
        values in prop::collection::vec(1.0f64..20.0, 1..10),
        weights in prop::collection::vec(1.0f64..15.0, 1..10),
        capacity in 5.0f64..40.0,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];

        // Exhaustive optimum.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let mut v = 0.0;
            let mut w = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    v += values[i];
                    w += weights[i];
                }
            }
            if w <= capacity && v > best {
                best = v;
            }
        }

        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(v, format!("x{i}")))
            .collect();
        let terms: Vec<_> = vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w)).collect();
        m.add_constraint(&terms, ConstraintOp::Le, capacity);
        let sol = m.solve().expect("knapsack is always feasible (empty set)");
        prop_assert!((sol.objective - best).abs() < 1e-5,
            "solver {} vs enumeration {}", sol.objective, best);
        // The reported assignment is feasible and achieves the objective.
        let mut v = 0.0;
        let mut w = 0.0;
        for (i, &var) in vars.iter().enumerate() {
            if sol.is_one(var) {
                v += values[i];
                w += weights[i];
            }
        }
        prop_assert!(w <= capacity + 1e-6);
        prop_assert!((v - sol.objective).abs() < 1e-5);
    }

    /// LP relaxations never do worse than the integer optimum (maximisation)
    /// and the integer solution is always within the variable bounds.
    #[test]
    fn lp_relaxation_bounds_the_mip(
        costs in prop::collection::vec(0.5f64..10.0, 2..8),
        rhs in 2.0f64..20.0,
    ) {
        let n = costs.len();
        // Integer model: maximise sum(c_i x_i) s.t. sum(x_i) <= rhs, x_i in {0..3}
        let build = |integer: bool| {
            let mut m = Model::new(Sense::Maximize);
            let kind = if integer {
                rideshare_mip::VarKind::Integer
            } else {
                rideshare_mip::VarKind::Continuous
            };
            let vars: Vec<_> = costs
                .iter()
                .enumerate()
                .map(|(i, &c)| m.add_var(0.0, 3.0, c, kind, format!("x{i}")))
                .collect();
            let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_constraint(&terms, ConstraintOp::Le, rhs);
            m
        };
        let mip = build(true).solve().unwrap();
        let lp = build(false).solve().unwrap();
        prop_assert!(lp.objective >= mip.objective - 1e-6,
            "LP {} must dominate MIP {}", lp.objective, mip.objective);
        for i in 0..n {
            let v = mip.values[i];
            prop_assert!((-1e-6..=3.0 + 1e-6).contains(&v));
            prop_assert!((v - v.round()).abs() < 1e-6, "integer variable is fractional: {v}");
        }
        let total: f64 = mip.values[..n].iter().sum();
        prop_assert!(total <= rhs + 1e-6);
    }
}

//! Branch and bound over the LP relaxation for mixed-integer models.
//!
//! The search keeps a single [`SparseSimplex`] alive across the whole tree.
//! Each branching node snapshots the parent's optimal [`Basis`]; when the
//! child is expanded its LP differs from the parent's only in one variable
//! bound, so [`SparseSimplex::resolve_from`] reoptimises with the dual
//! simplex in a handful of pivots instead of a cold two-phase solve. The
//! cold path remains the fallback whenever the warm path declines
//! (iteration cap, singular restored basis).

use std::rc::Rc;

use crate::model::{Model, Solution, SolveError, Status, VarKind};
use crate::simplex::{Basis, LpOutcome, SparseLp, SparseSimplex};

/// Integrality tolerance: LP values within this distance of an integer are
/// treated as integral.
const INT_TOL: f64 = 1e-6;

/// Budget and behaviour knobs for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Maximum number of branch-and-bound nodes to explore before giving up
    /// and returning the incumbent (status [`Status::Feasible`]) or
    /// [`SolveError::BudgetExhausted`].
    pub max_nodes: u64,
    /// Relative optimality gap at which the search may stop early
    /// (`0.0` requires a proof of optimality).
    pub relative_gap: f64,
    /// Stop as soon as any feasible integer solution is found. Used by
    /// callers that only need feasibility checking.
    pub first_feasible: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 200_000,
            relative_gap: 0.0,
            first_feasible: false,
        }
    }
}

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: u64,
    /// Nodes pruned because their bound could not beat the incumbent.
    pub nodes_pruned: u64,
    /// Incumbent (feasible integer) solutions found.
    pub incumbents: u64,
    /// Node LPs reoptimised from the parent basis by the dual simplex.
    pub warm_solves: u64,
    /// Node LPs solved cold (the root, plus any warm-start fallbacks).
    pub cold_solves: u64,
}

#[derive(Debug, Clone)]
struct NodeState {
    /// Extra bounds `(var, lb, ub)` accumulated along the branching path.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound of the parent (internal minimisation sense), used for
    /// pruning before the node's own LP is solved.
    parent_bound: f64,
    /// The parent's optimal basis, shared between both children.
    basis: Option<Rc<Basis>>,
}

/// Solves a mixed-integer model by branch and bound on its LP relaxation.
pub(crate) fn solve_mip(model: &Model, options: &SolveOptions) -> Result<Solution, SolveError> {
    let int_vars: Vec<usize> = (0..model.num_vars())
        .filter(|&i| model.var_data(i).3 == VarKind::Integer)
        .collect();
    let lp = SparseLp::from_model(model).map_err(SolveError::InvalidModel)?;
    let mut simplex = SparseSimplex::new(&lp);

    let mut stats = SolveStats::default();
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // internal (min) objective
    let mut stack: Vec<NodeState> = vec![NodeState {
        bounds: Vec::new(),
        parent_bound: f64::NEG_INFINITY,
        basis: None,
    }];
    let mut saw_unbounded_root = false;
    let mut root_infeasible = true;

    while let Some(node) = stack.pop() {
        if stats.nodes_explored >= options.max_nodes {
            break;
        }
        // Prune on the parent bound before paying for an LP solve.
        if let Some((best, _)) = &incumbent {
            if node.parent_bound >= *best - gap_slack(*best, options.relative_gap) {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        stats.nodes_explored += 1;
        let outcome = match &node.basis {
            Some(basis) => match simplex.resolve_from(basis, &node.bounds) {
                Some(out) => {
                    stats.warm_solves += 1;
                    out
                }
                None => {
                    stats.cold_solves += 1;
                    simplex.solve(&node.bounds)
                }
            },
            None => {
                stats.cold_solves += 1;
                simplex.solve(&node.bounds)
            }
        };
        let (bound, values) = match outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if node.bounds.is_empty() {
                    saw_unbounded_root = true;
                }
                // An unbounded relaxation at a child node cannot be pruned
                // by bound; branching further without a bound is hopeless,
                // so give up on this subtree (the ridesharing models are
                // always bounded; this is defensive).
                continue;
            }
            LpOutcome::Optimal { objective, values } => (objective, values),
        };
        root_infeasible = false;
        if let Some((best, _)) = &incumbent {
            if bound >= *best - gap_slack(*best, options.relative_gap) {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = INT_TOL;
        for &v in &int_vars {
            let x = values[v];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((v, x));
            }
        }
        match branch_var {
            None => {
                // Integral: candidate incumbent (round to kill numeric dust).
                let mut vals = values;
                for &v in &int_vars {
                    vals[v] = vals[v].round();
                }
                let better = incumbent.as_ref().is_none_or(|(best, _)| bound < *best);
                if better {
                    incumbent = Some((bound, vals));
                    stats.incumbents += 1;
                    if options.first_feasible {
                        break;
                    }
                }
            }
            Some((v, x)) => {
                let floor = x.floor();
                let parent_basis = Rc::new(simplex.snapshot());
                // Explore the "down" branch last so it pops first (DFS
                // favouring the branch closer to the LP optimum is a wash;
                // down-first tends to find feasible schedules quicker for
                // the routing models because y variables snap to 0). The
                // down child is popped immediately after this push, while
                // the simplex still holds the parent basis — its warm start
                // skips even the refactorisation.
                stack.push(NodeState {
                    bounds: with_bound(&node.bounds, v, floor + 1.0, f64::INFINITY),
                    parent_bound: bound,
                    basis: Some(parent_basis.clone()),
                });
                stack.push(NodeState {
                    bounds: with_bound(&node.bounds, v, f64::NEG_INFINITY, floor),
                    parent_bound: bound,
                    basis: Some(parent_basis),
                });
            }
        }
    }

    match incumbent {
        Some((internal_obj, values)) => {
            let proven = stats.nodes_explored < options.max_nodes && stack.is_empty();
            Ok(Solution {
                objective: model.external_objective(internal_obj),
                values,
                status: if proven {
                    Status::Optimal
                } else {
                    Status::Feasible
                },
                stats,
            })
        }
        None => {
            if saw_unbounded_root {
                Err(SolveError::Unbounded)
            } else if stats.nodes_explored >= options.max_nodes && !root_infeasible {
                Err(SolveError::BudgetExhausted)
            } else {
                Err(SolveError::Infeasible)
            }
        }
    }
}

fn gap_slack(best: f64, relative_gap: f64) -> f64 {
    if relative_gap <= 0.0 {
        1e-9
    } else {
        relative_gap * best.abs().max(1.0)
    }
}

fn with_bound(
    bounds: &[(usize, f64, f64)],
    var: usize,
    lb: f64,
    ub: f64,
) -> Vec<(usize, f64, f64)> {
    let mut out = bounds.to_vec();
    out.push((
        var,
        if lb.is_finite() {
            lb
        } else {
            f64::NEG_INFINITY
        },
        ub,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    #[test]
    fn options_default_values() {
        let o = SolveOptions::default();
        assert!(o.max_nodes > 1000);
        assert_eq!(o.relative_gap, 0.0);
        assert!(!o.first_feasible);
    }

    #[test]
    fn first_feasible_stops_early() {
        // Larger knapsack; first_feasible should report Feasible or Optimal
        // quickly and within budget.
        let mut m = Model::new(Sense::Maximize);
        let values = [9.0, 7.0, 6.0, 5.0, 4.0, 3.0];
        let weights = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(v, format!("v{i}")))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .zip(weights.iter())
            .map(|(&v, &w)| (v, w))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, 10.0);
        let s = m
            .solve_with(&SolveOptions {
                first_feasible: true,
                ..SolveOptions::default()
            })
            .unwrap();
        assert!(s.objective > 0.0);
        assert!(s.stats.incumbents >= 1);
    }

    #[test]
    fn node_budget_returns_incumbent_or_error() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(1.0 + i as f64 * 0.1, format!("b{i}")))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(&terms, ConstraintOp::Le, 6.5);
        // Tiny budget: either a feasible incumbent or BudgetExhausted, never a panic.
        match m.solve_with(&SolveOptions {
            max_nodes: 3,
            ..SolveOptions::default()
        }) {
            Ok(s) => assert!(matches!(s.status, Status::Feasible | Status::Optimal)),
            Err(e) => assert_eq!(e, SolveError::BudgetExhausted),
        }
    }

    #[test]
    fn optimality_gap_allows_early_stop() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(5.0 + i as f64, format!("b{i}")))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_constraint(&terms, ConstraintOp::Le, 7.0);
        let tight = m.solve().unwrap();
        let loose = m
            .solve_with(&SolveOptions {
                relative_gap: 0.5,
                ..SolveOptions::default()
            })
            .unwrap();
        // The loose solve is allowed to be worse but not by more than 50%+eps
        assert!(loose.objective >= tight.objective * 0.5 - 1e-6);
        assert!(loose.stats.nodes_explored <= tight.stats.nodes_explored);
    }

    #[test]
    fn pure_binary_equality_system() {
        // Choose exactly 2 of 4 items minimising cost.
        let mut m = Model::new(Sense::Minimize);
        let costs = [4.0, 1.0, 3.0, 2.0];
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_binary(c, format!("c{i}")))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(&terms, ConstraintOp::Eq, 2.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(s.is_one(vars[1]) && s.is_one(vars[3]));
        assert_eq!(s.status, Status::Optimal);
    }

    #[test]
    fn general_integer_variables() {
        // max 7x + 2y s.t. 3x + y <= 12.5, x <= 3.7, x,y int >= 0
        // x=3 -> y <= 3.5 -> y=3, obj=27
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 3.7, 7.0, VarKind::Integer, "x");
        let y = m.add_var(0.0, f64::INFINITY, 2.0, VarKind::Integer, "y");
        m.add_constraint(&[(x, 3.0), (y, 1.0)], ConstraintOp::Le, 12.5);
        let s = m.solve().unwrap();
        assert!(
            (s.objective - 27.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn warm_starts_dominate_on_branchy_models() {
        // A model that forces real branching: warm solves should carry the
        // bulk of the node LPs (the root is the only guaranteed cold one).
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_binary(3.0 + ((i * 7) % 5) as f64 + 0.5, format!("b{i}")))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 2.0 + (i % 3) as f64))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, 11.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(s.stats.nodes_explored >= 3, "expected real branching");
        assert!(
            s.stats.warm_solves >= s.stats.nodes_explored / 2,
            "warm {} of {} nodes",
            s.stats.warm_solves,
            s.stats.nodes_explored
        );
    }
}

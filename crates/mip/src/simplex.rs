//! Sparse bounded-variable revised simplex solver.
//!
//! This module replaced the seed's dense two-phase tableau (a faithful copy
//! of which survives as the frozen measurement baseline in
//! `rideshare_bench::baseline::dense_mip`). The production solver works on a
//! [`SparseLp`]: a minimisation problem whose columns are stored sparse
//! (compressed column form) and whose variable bounds `l ≤ x ≤ u` are
//! handled *implicitly* by the bounded-variable simplex rather than as
//! explicit tableau rows — for the MTZ ridesharing models this roughly
//! halves the row count, because every binary arc variable previously
//! contributed an `x ≤ 1` row.
//!
//! # Basis management and refactorisation policy
//!
//! [`SparseSimplex`] keeps the basis as a dense LU factorisation (partial
//! pivoting) plus a product-form *eta file*: each pivot appends one eta
//! vector instead of re-eliminating the whole tableau. FTRAN/BTRAN apply
//! the LU solve followed by the recorded etas. The basis is refactorised
//! from scratch when
//!
//! * the eta file reaches [`REFACTOR_EVERY`] vectors (work and rounding
//!   error both grow with the file), or
//! * a pivot element smaller than [`PIVOT_TOL`] is the best available —
//!   a refreshed factorisation usually recovers a stable pivot, and the
//!   candidate column is banned for the current phase if it does not.
//!
//! After every refactorisation the basic values are recomputed from
//! `x_B = B⁻¹(b − N·x_N)`, which discards accumulated drift.
//!
//! # Numerical tolerances
//!
//! * Reduced costs within [`DUAL_FEAS_TOL`] of zero are treated as zero
//!   (pricing / dual-feasibility test).
//! * Basic values within [`PRIMAL_FEAS_TOL`] of their bounds are feasible.
//! * The primal ratio test is Harris-style in two passes: pass one finds
//!   the minimum ratio with bounds relaxed by [`RATIO_TOL`], pass two picks
//!   the largest-magnitude pivot among rows whose ratio ties that minimum —
//!   trading a microscopic bound violation for far better pivots on the
//!   highly degenerate MTZ scheduling models.
//! * Anti-cycling: Dantzig pricing switches to Bland's rule after a stall,
//!   exactly as in the dense predecessor.
//!
//! # Warm starts
//!
//! [`SparseSimplex::resolve_from`] reoptimises after *bound changes only*
//! (the branch-and-bound case: a child node tightens one variable bound)
//! starting from a parent [`Basis`]. Bound changes never disturb dual
//! feasibility, so the dual simplex restores primal feasibility in a
//! handful of pivots instead of a from-scratch two-phase solve. When the
//! warm path hits its iteration cap or a singular basis it reports `None`
//! and the caller falls back to [`SparseSimplex::solve`].
//!
//! ```
//! use rideshare_mip::{ConstraintOp, Model, Sense, VarKind};
//! use rideshare_mip::simplex::{LpOutcome, SparseLp, SparseSimplex};
//!
//! // max 3x + 2y  s.t. x + y <= 4, x <= 2.5  (0 <= x, y <= 3)
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var(0.0, 3.0, 3.0, VarKind::Continuous, "x");
//! let y = m.add_var(0.0, 3.0, 2.0, VarKind::Continuous, "y");
//! m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 2.5);
//! let lp = SparseLp::from_model(&m).unwrap();
//! let mut simplex = SparseSimplex::new(&lp);
//! match simplex.solve(&[]) {
//!     // Internal objective is minimisation: -(3·2.5 + 2·1.5) = -10.5.
//!     LpOutcome::Optimal { objective, values } => {
//!         assert!((objective + 10.5).abs() < 1e-6);
//!         assert!((values[0] - 2.5).abs() < 1e-6);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! // Warm start from the optimal basis after tightening x <= 1 (as a
//! // branch-and-bound child would): the dual simplex repairs it cheaply.
//! let basis = simplex.snapshot();
//! match simplex.resolve_from(&basis, &[(0, 0.0, 1.0)]).unwrap() {
//!     LpOutcome::Optimal { objective, .. } => assert!((objective + 9.0).abs() < 1e-6),
//!     other => panic!("{other:?}"),
//! }
//! ```

// The factorisation and pricing loops index several same-length arrays by
// row/column number, mirroring the linear-algebra subscripts; iterator
// chains would obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::model::{ConstraintOp, Model, Sense};

/// Reduced-cost tolerance: values within this of zero count as dual
/// feasible.
pub const DUAL_FEAS_TOL: f64 = 1e-7;
/// Bound-violation tolerance: basic values within this of their bound count
/// as primal feasible.
pub const PRIMAL_FEAS_TOL: f64 = 1e-7;
/// Smallest pivot magnitude accepted into the eta file.
pub const PIVOT_TOL: f64 = 1e-8;
/// Harris ratio-test bound relaxation.
pub const RATIO_TOL: f64 = 1e-9;
/// Maximum eta vectors before the basis is refactorised.
pub const REFACTOR_EVERY: usize = 64;
/// Entries below this magnitude are dropped from eta vectors.
const DROP_TOL: f64 = 1e-11;
/// Phase-1 objective above this is reported as infeasible.
const PHASE1_TOL: f64 = 1e-6;

/// Outcome of an LP solve, in terms of the *original* model variables.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimum found; `objective` is in internal minimisation sense.
    Optimal {
        /// Minimised objective value (negate for maximisation models).
        objective: f64,
        /// Variable values indexed like the model's variables.
        values: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
}

/// A minimisation LP with sparse columns and explicit variable bounds,
/// produced from a [`Model`] by [`SparseLp::from_model`].
///
/// Every constraint row carries one slack column so the system is
/// `A·x = b`, `l ≤ x ≤ u`; inequality direction lives in the slack bounds
/// (`≤` → slack in `[0, ∞)`, `≥` → `(-∞, 0]`, `=` → fixed at 0).
#[derive(Debug, Clone)]
pub struct SparseLp {
    /// Number of structural (model) variables.
    n_struct: usize,
    /// Number of rows.
    m: usize,
    /// Structural + slack column count (`n_struct + m`).
    ncols: usize,
    /// CSC column pointers, length `ncols + 1`.
    col_ptr: Vec<usize>,
    /// CSC row indices.
    row_ind: Vec<usize>,
    /// CSC coefficients.
    val: Vec<f64>,
    /// Objective per column (minimisation sense; slacks cost 0).
    cost: Vec<f64>,
    /// Base lower bound per column.
    lb: Vec<f64>,
    /// Base upper bound per column.
    ub: Vec<f64>,
    /// Right-hand side per row.
    rhs: Vec<f64>,
}

impl SparseLp {
    /// Builds the sparse bounded form of `model`.
    ///
    /// Variable lower bounds must be finite (checked by
    /// [`Model::solve`][crate::Model::solve]); duplicate terms within one
    /// constraint are combined.
    pub fn from_model(model: &Model) -> Result<Self, String> {
        let n_struct = model.num_vars();
        let m = model.num_constraints();
        let ncols = n_struct + m;
        let sign = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![0.0; ncols];
        let mut lb = vec![0.0; ncols];
        let mut ub = vec![0.0; ncols];
        for i in 0..n_struct {
            let (l, u, obj, _) = model.var_data(i);
            if !l.is_finite() {
                return Err(format!("variable {i} must have a finite lower bound"));
            }
            cost[i] = sign * obj;
            lb[i] = l;
            ub[i] = u;
        }
        // Column-major build: combine duplicate terms per row first.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut rhs = vec![0.0; m];
        let mut merged: Vec<(usize, f64)> = Vec::new();
        for i in 0..m {
            let (terms, op, b) = model.constraint_data(i);
            merged.clear();
            merged.extend_from_slice(terms);
            merged.sort_unstable_by_key(|&(v, _)| v);
            let mut k = 0;
            while k < merged.len() {
                let (v, mut a) = merged[k];
                if v >= n_struct {
                    return Err(format!("constraint {i} references unknown variable {v}"));
                }
                let mut next = k + 1;
                while next < merged.len() && merged[next].0 == v {
                    a += merged[next].1;
                    next += 1;
                }
                if a != 0.0 {
                    cols[v].push((i, a));
                }
                k = next;
            }
            rhs[i] = b;
            let slack = n_struct + i;
            cols[slack].push((i, 1.0));
            let (sl, su) = match op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            lb[slack] = sl;
            ub[slack] = su;
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_ind = Vec::new();
        let mut val = Vec::new();
        col_ptr.push(0);
        for c in &cols {
            for &(r, a) in c {
                row_ind.push(r);
                val.push(a);
            }
            col_ptr.push(row_ind.len());
        }
        Ok(SparseLp {
            n_struct,
            m,
            ncols,
            col_ptr,
            row_ind,
            val,
            cost,
            lb,
            ub,
            rhs,
        })
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n_struct
    }

    /// Number of constraint rows (bound rows no longer exist).
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Number of stored non-zero coefficients (structural columns only).
    pub fn num_nonzeros(&self) -> usize {
        self.col_ptr[self.n_struct]
    }

    fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_ind[s..e], &self.val[s..e])
    }
}

/// Where a column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    /// In the basis.
    Basic,
    /// Nonbasic at its (finite) lower bound.
    Lower,
    /// Nonbasic at its (finite) upper bound.
    Upper,
}

/// A snapshot of a simplex basis, cheap to clone and store per
/// branch-and-bound node; restored by [`SparseSimplex::resolve_from`].
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    basis: Vec<usize>,
    vstat: Vec<VStat>,
    art_sign: Vec<f64>,
}

/// Dense LU factors of the basis matrix with partial pivoting.
struct LuFactors {
    m: usize,
    /// Row-major combined L (unit diagonal, below) and U (on/above).
    a: Vec<f64>,
    /// Sequential row swaps: at step k, row k was swapped with `piv[k]`.
    piv: Vec<usize>,
}

impl LuFactors {
    /// Factorises the dense matrix `a` (row-major, consumed in place).
    fn factorize(mut a: Vec<f64>, m: usize) -> Option<LuFactors> {
        let mut piv = vec![0usize; m];
        for k in 0..m {
            let mut p = k;
            let mut best = a[k * m + k].abs();
            for i in k + 1..m {
                let v = a[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-12 {
                return None;
            }
            piv[k] = p;
            if p != k {
                for j in 0..m {
                    a.swap(k * m + j, p * m + j);
                }
            }
            let d = a[k * m + k];
            for i in k + 1..m {
                let f = a[i * m + k] / d;
                a[i * m + k] = f;
                if f != 0.0 {
                    for j in k + 1..m {
                        a[i * m + j] -= f * a[k * m + j];
                    }
                }
            }
        }
        Some(LuFactors { m, a, piv })
    }

    /// Solves `B x = v` in place (before eta application).
    fn ftran(&self, v: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            v.swap(k, self.piv[k]);
        }
        for k in 0..m {
            let vk = v[k];
            if vk != 0.0 {
                for i in k + 1..m {
                    v[i] -= self.a[i * m + k] * vk;
                }
            }
        }
        for k in (0..m).rev() {
            let mut s = v[k];
            for j in k + 1..m {
                s -= self.a[k * m + j] * v[j];
            }
            v[k] = s / self.a[k * m + k];
        }
    }

    /// Solves `Bᵀ y = w` in place (after reverse eta application).
    fn btran(&self, v: &mut [f64]) {
        let m = self.m;
        // Uᵀ (lower triangular) forward solve.
        for k in 0..m {
            let mut s = v[k];
            for j in 0..k {
                s -= self.a[j * m + k] * v[j];
            }
            v[k] = s / self.a[k * m + k];
        }
        // Lᵀ (unit upper triangular) backward solve.
        for k in (0..m).rev() {
            let mut s = v[k];
            for j in k + 1..m {
                s -= self.a[j * m + k] * v[j];
            }
            v[k] = s;
        }
        // Undo the row swaps (apply Pᵀ).
        for k in (0..m).rev() {
            v.swap(k, self.piv[k]);
        }
    }
}

/// One product-form update: basis column `row` was replaced by a column
/// whose FTRAN image was `entries` with pivot element `pivot` at `row`.
struct Eta {
    row: usize,
    /// Off-pivot entries of the transformed column.
    entries: Vec<(usize, f64)>,
    pivot: f64,
}

enum PhaseResult {
    Optimal,
    Unbounded,
}

/// Sparse bounded-variable revised simplex over a [`SparseLp`].
///
/// One instance is meant to be reused across many related solves (the
/// branch-and-bound search keeps a single instance alive): [`Self::solve`]
/// performs a cold two-phase solve, [`Self::snapshot`] captures the
/// optimal basis, and [`Self::resolve_from`] warm-starts from a snapshot
/// after bound changes via the dual simplex. See the module docs for the
/// refactorisation and tolerance policy.
pub struct SparseSimplex<'a> {
    lp: &'a SparseLp,
    /// Structural + slack columns.
    ncols: usize,
    /// Including one virtual artificial column per row.
    total: usize,
    lb: Vec<f64>,
    ub: Vec<f64>,
    x: Vec<f64>,
    vstat: Vec<VStat>,
    basis: Vec<usize>,
    /// Coefficient (±1) of each row's artificial column.
    art_sign: Vec<f64>,
    lu: Option<LuFactors>,
    etas: Vec<Eta>,
    /// Columns excluded from pricing after a failed pivot (cleared per phase).
    banned: Vec<bool>,
    /// Scratch vectors of length `m`.
    work: Vec<f64>,
    work2: Vec<f64>,
    /// Dual values scratch (length `m`), reused across dual iterations.
    duals: Vec<f64>,
    /// Phase-2 cost vector (constant for the solver's lifetime).
    cost2: Vec<f64>,
    /// Scratch for gathering one column's entries before an FTRAN.
    col_scratch: Vec<(usize, f64)>,
}

impl<'a> SparseSimplex<'a> {
    /// Creates a solver for `lp` with no basis yet.
    pub fn new(lp: &'a SparseLp) -> Self {
        let m = lp.m;
        let ncols = lp.ncols;
        let total = ncols + m;
        SparseSimplex {
            lp,
            ncols,
            total,
            lb: vec![0.0; total],
            ub: vec![0.0; total],
            x: vec![0.0; total],
            vstat: vec![VStat::Lower; total],
            basis: Vec::new(),
            art_sign: vec![1.0; m],
            lu: None,
            etas: Vec::new(),
            banned: vec![false; total],
            work: vec![0.0; m],
            work2: vec![0.0; m],
            duals: vec![0.0; m],
            cost2: {
                let mut c = vec![0.0; total];
                c[..ncols].copy_from_slice(&lp.cost);
                c
            },
            col_scratch: Vec::new(),
        }
    }

    /// Iterates a column's `(row, coefficient)` pairs, including the
    /// virtual artificial columns `ncols..total`.
    #[inline]
    fn for_col(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.ncols {
            let (rows, vals) = self.lp.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                f(r, v);
            }
        } else {
            let r = j - self.ncols;
            f(r, self.art_sign[r]);
        }
    }

    #[inline]
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let mut s = 0.0;
        self.for_col(j, |r, v| s += v * y[r]);
        s
    }

    /// Applies working bounds = base bounds tightened by `extra`
    /// (`(var, lb, ub)` over structural variables). Artificials are fixed
    /// at zero; phase 1 relaxes the ones it uses.
    ///
    /// # Panics
    /// If an override names a variable the LP does not have — a
    /// programming error, not a property of the model.
    fn setup_bounds(&mut self, extra: &[(usize, f64, f64)]) -> Result<(), ()> {
        self.lb[..self.ncols].copy_from_slice(&self.lp.lb);
        self.ub[..self.ncols].copy_from_slice(&self.lp.ub);
        for &(v, l, u) in extra {
            assert!(
                v < self.lp.n_struct,
                "bound override for unknown variable {v} (LP has {} structural variables)",
                self.lp.n_struct
            );
            self.lb[v] = self.lb[v].max(l);
            self.ub[v] = self.ub[v].min(u);
        }
        for j in self.ncols..self.total {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
        }
        for j in 0..self.lp.n_struct {
            if self.lb[j] > self.ub[j] + PRIMAL_FEAS_TOL {
                return Err(());
            }
        }
        Ok(())
    }

    /// Loads column `j` into `work` (zeroing the rest) ready for an FTRAN,
    /// buffering the entries through `col_scratch` to split the borrow.
    fn load_column_into_work(&mut self, j: usize) {
        self.work.iter_mut().for_each(|v| *v = 0.0);
        let mut seed = std::mem::take(&mut self.col_scratch);
        seed.clear();
        self.for_col(j, |r, v| seed.push((r, v)));
        for &(r, v) in &seed {
            self.work[r] = v;
        }
        self.col_scratch = seed;
    }

    /// FTRAN: `work ← B⁻¹ work` through the LU factors and the eta file.
    fn ftran(&mut self) {
        let lu = self.lu.as_ref().expect("factorised basis");
        lu.ftran(&mut self.work);
        for eta in &self.etas {
            let yr = self.work[eta.row] / eta.pivot;
            self.work[eta.row] = yr;
            if yr != 0.0 {
                for &(i, a) in &eta.entries {
                    self.work[i] -= a * yr;
                }
            }
        }
    }

    /// BTRAN: `work2 ← B⁻ᵀ work2` through the eta file (reverse) and LU.
    fn btran(&mut self) {
        for eta in self.etas.iter().rev() {
            let mut s = self.work2[eta.row];
            for &(i, a) in &eta.entries {
                s -= self.work2[i] * a;
            }
            self.work2[eta.row] = s / eta.pivot;
        }
        let lu = self.lu.as_ref().expect("factorised basis");
        lu.btran(&mut self.work2);
    }

    /// Rebuilds the LU factors from the current basis and clears the eta
    /// file. Fails on a (numerically) singular basis.
    fn refactorize(&mut self) -> Result<(), ()> {
        let m = self.lp.m;
        let mut dense = vec![0.0; m * m];
        for (r, &j) in self.basis.iter().enumerate() {
            self.for_col(j, |i, v| dense[i * m + r] = v);
        }
        install_factors(&mut self.lu, dense, m)?;
        self.etas.clear();
        Ok(())
    }

    /// Recomputes basic values `x_B = B⁻¹(b − N·x_N)` from scratch.
    fn recompute_basics(&mut self) {
        let m = self.lp.m;
        self.work[..m].copy_from_slice(&self.lp.rhs);
        let lp = self.lp;
        for j in 0..self.total {
            if self.vstat[j] != VStat::Basic && self.x[j] != 0.0 {
                let xj = self.x[j];
                if j < self.ncols {
                    let (rows, vals) = lp.col(j);
                    for (&r, &v) in rows.iter().zip(vals) {
                        self.work[r] -= v * xj;
                    }
                } else {
                    let r = j - self.ncols;
                    self.work[r] -= self.art_sign[r] * xj;
                }
            }
        }
        self.ftran();
        for r in 0..m {
            let j = self.basis[r];
            self.x[j] = self.work[r];
        }
    }

    /// Primal simplex over the current (feasible) basis for `cost`.
    fn primal(&mut self, cost: &[f64]) -> PhaseResult {
        let m = self.lp.m;
        self.banned.iter_mut().for_each(|b| *b = false);
        let max_iters = 50 * (m + self.ncols) + 200;
        let bland_after = 10 * (m + self.ncols) + 50;
        let mut iter = 0usize;
        while iter < max_iters {
            iter += 1;
            let use_bland = iter >= bland_after;
            // Duals y = B⁻ᵀ c_B, then price nonbasic columns.
            for r in 0..m {
                self.work2[r] = cost[self.basis[r]];
            }
            self.btran();
            let mut entering: Option<(usize, f64, f64)> = None; // (j, d_j, dir)
            let mut best = DUAL_FEAS_TOL;
            for j in 0..self.total {
                if self.vstat[j] == VStat::Basic || self.banned[j] || self.lb[j] >= self.ub[j] {
                    continue;
                }
                let d = cost[j] - {
                    let mut s = 0.0;
                    self.for_col(j, |r, v| s += v * self.work2[r]);
                    s
                };
                let (improving, dir) = match self.vstat[j] {
                    VStat::Lower => (d < -DUAL_FEAS_TOL, 1.0),
                    VStat::Upper => (d > DUAL_FEAS_TOL, -1.0),
                    VStat::Basic => unreachable!(),
                };
                if improving {
                    if use_bland {
                        entering = Some((j, d, dir));
                        break;
                    }
                    if d.abs() > best {
                        best = d.abs();
                        entering = Some((j, d, dir));
                    }
                }
            }
            let Some((j, _d, dir)) = entering else {
                return PhaseResult::Optimal;
            };
            // alpha = B⁻¹ A_j.
            self.load_column_into_work(j);
            self.ftran();
            // Harris-style two-pass ratio test; `dir` = +1 entering from
            // lower, −1 from upper; basic change is −dir·t·alpha.
            let flip = self.ub[j] - self.lb[j]; // may be infinite
            let mut tmin = f64::INFINITY;
            for r in 0..m {
                let a = dir * self.work[r];
                let bj = self.basis[r];
                if a > PIVOT_TOL {
                    if self.lb[bj].is_finite() {
                        let t = (self.x[bj] - self.lb[bj] + RATIO_TOL) / a;
                        tmin = tmin.min(t.max(0.0));
                    }
                } else if a < -PIVOT_TOL && self.ub[bj].is_finite() {
                    let t = (self.ub[bj] - self.x[bj] + RATIO_TOL) / -a;
                    tmin = tmin.min(t.max(0.0));
                }
            }
            if !tmin.is_finite() && !flip.is_finite() {
                return PhaseResult::Unbounded;
            }
            if flip <= tmin {
                // Bound flip: no basis change.
                let t = flip;
                for r in 0..m {
                    let a = dir * self.work[r];
                    if a != 0.0 {
                        let bj = self.basis[r];
                        self.x[bj] -= a * t;
                    }
                }
                self.vstat[j] = match self.vstat[j] {
                    VStat::Lower => VStat::Upper,
                    VStat::Upper => VStat::Lower,
                    VStat::Basic => unreachable!(),
                };
                self.x[j] = if self.vstat[j] == VStat::Lower {
                    self.lb[j]
                } else {
                    self.ub[j]
                };
                continue;
            }
            // Pass two: among rows within the Harris window, take the
            // largest pivot.
            let mut leave: Option<(usize, bool)> = None; // (row, hits_lower)
            let mut best_piv = 0.0;
            let mut t_exact = f64::INFINITY;
            for r in 0..m {
                let a = dir * self.work[r];
                let bj = self.basis[r];
                if a > PIVOT_TOL && self.lb[bj].is_finite() {
                    let t = ((self.x[bj] - self.lb[bj]) / a).max(0.0);
                    if t <= tmin && a.abs() > best_piv {
                        best_piv = a.abs();
                        leave = Some((r, true));
                        t_exact = t;
                    }
                } else if a < -PIVOT_TOL && self.ub[bj].is_finite() {
                    let t = ((self.ub[bj] - self.x[bj]) / -a).max(0.0);
                    if t <= tmin && a.abs() > best_piv {
                        best_piv = a.abs();
                        leave = Some((r, false));
                        t_exact = t;
                    }
                }
            }
            let Some((r, hits_lower)) = leave else {
                // All candidate pivots were rejected as too small: refresh
                // the factorisation once, else ban the column.
                if !self.etas.is_empty() && self.refactorize().is_ok() {
                    self.recompute_basics();
                } else {
                    self.banned[j] = true;
                }
                continue;
            };
            let t = t_exact;
            for i in 0..m {
                let a = dir * self.work[i];
                if a != 0.0 {
                    let bj = self.basis[i];
                    self.x[bj] -= a * t;
                }
            }
            let leaving = self.basis[r];
            self.x[leaving] = if hits_lower {
                self.lb[leaving]
            } else {
                self.ub[leaving]
            };
            self.vstat[leaving] = if hits_lower {
                VStat::Lower
            } else {
                VStat::Upper
            };
            self.x[j] = if dir > 0.0 {
                self.lb[j] + t
            } else {
                self.ub[j] - t
            };
            self.vstat[j] = VStat::Basic;
            self.push_eta(r, j);
        }
        // Iteration cap: report the current point as "optimal enough", as
        // the dense predecessor did; branch and bound only loses pruning
        // power from a conservative bound.
        PhaseResult::Optimal
    }

    /// Records the pivot `(row r, entering j)` in the eta file and
    /// refactorises on schedule. `work` must still hold `B⁻¹ A_j`.
    fn push_eta(&mut self, r: usize, j: usize) {
        let pivot = self.work[r];
        let entries: Vec<(usize, f64)> = self
            .work
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() > DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.basis[r] = j;
        self.etas.push(Eta {
            row: r,
            entries,
            pivot,
        });
        if (self.etas.len() >= REFACTOR_EVERY || pivot.abs() < PIVOT_TOL)
            && self.refactorize().is_ok()
        {
            self.recompute_basics();
        }
    }

    /// Runs the primal simplex with the (constant) phase-2 cost vector,
    /// temporarily moving it out of `self` to satisfy the borrow checker
    /// without reallocating it per solve.
    fn primal_phase2(&mut self) -> PhaseResult {
        let c2 = std::mem::take(&mut self.cost2);
        let result = self.primal(&c2);
        self.cost2 = c2;
        result
    }

    /// Cold two-phase solve under the given extra bounds.
    ///
    /// # Panics
    /// If an entry of `extra_bounds` names a variable index the model does
    /// not have.
    pub fn solve(&mut self, extra_bounds: &[(usize, f64, f64)]) -> LpOutcome {
        if self.setup_bounds(extra_bounds).is_err() {
            return LpOutcome::Infeasible;
        }
        let m = self.lp.m;
        // Start: structural and slack columns at a finite bound.
        for j in 0..self.total {
            let (l, u) = (self.lb[j], self.ub[j]);
            if l.is_finite() {
                self.vstat[j] = VStat::Lower;
                self.x[j] = l;
            } else {
                self.vstat[j] = VStat::Upper;
                self.x[j] = u;
            }
        }
        self.basis.clear();
        self.basis.resize(m, 0);
        self.art_sign.iter_mut().for_each(|s| *s = 1.0);
        // Row residuals decide between a basic slack and an artificial.
        let mut residual = self.lp.rhs.clone();
        for j in 0..self.lp.n_struct {
            if self.x[j] != 0.0 {
                let xj = self.x[j];
                let (rows, vals) = self.lp.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    residual[r] -= v * xj;
                }
            }
        }
        let mut need_phase1 = false;
        for r in 0..m {
            let slack = self.lp.n_struct + r;
            let (sl, su) = (self.lb[slack], self.ub[slack]);
            if residual[r] >= sl - PRIMAL_FEAS_TOL && residual[r] <= su + PRIMAL_FEAS_TOL {
                self.basis[r] = slack;
                self.vstat[slack] = VStat::Basic;
                self.x[slack] = residual[r].clamp(sl, su.max(sl));
            } else {
                let art = self.ncols + r;
                self.art_sign[r] = if residual[r] >= 0.0 { 1.0 } else { -1.0 };
                self.basis[r] = art;
                self.vstat[art] = VStat::Basic;
                self.x[art] = residual[r].abs();
                self.ub[art] = f64::INFINITY;
                need_phase1 = true;
            }
        }
        if self.refactorize().is_err() {
            return LpOutcome::Infeasible;
        }
        if need_phase1 {
            let mut c1 = vec![0.0; self.total];
            for j in self.ncols..self.total {
                c1[j] = 1.0;
            }
            match self.primal(&c1) {
                PhaseResult::Unbounded => return LpOutcome::Infeasible,
                PhaseResult::Optimal => {
                    let infeas: f64 = (self.ncols..self.total).map(|j| self.x[j]).sum();
                    if infeas > PHASE1_TOL {
                        return LpOutcome::Infeasible;
                    }
                }
            }
            // Fix the artificials at zero for phase 2 (basic ones stay,
            // pinned to zero, and can only leave the basis from here on).
            for j in self.ncols..self.total {
                self.ub[j] = 0.0;
                if self.vstat[j] != VStat::Basic {
                    self.x[j] = 0.0;
                }
            }
        }
        match self.primal_phase2() {
            PhaseResult::Unbounded => LpOutcome::Unbounded,
            PhaseResult::Optimal => self.extract(),
        }
    }

    /// Captures the current basis for later warm starts.
    pub fn snapshot(&self) -> Basis {
        Basis {
            basis: self.basis.clone(),
            vstat: self.vstat.clone(),
            art_sign: self.art_sign.clone(),
        }
    }

    /// Warm start: restores `from` and reoptimises under changed bounds via
    /// the dual simplex.
    ///
    /// Returns `None` when the warm path gives up (singular restored basis
    /// or iteration cap) — the caller should fall back to [`Self::solve`].
    /// Bound changes never break dual feasibility, so this is the fast path
    /// for branch-and-bound children.
    ///
    /// # Panics
    /// If an entry of `extra_bounds` names a variable index the model does
    /// not have.
    pub fn resolve_from(
        &mut self,
        from: &Basis,
        extra_bounds: &[(usize, f64, f64)],
    ) -> Option<LpOutcome> {
        if self.setup_bounds(extra_bounds).is_err() {
            return Some(LpOutcome::Infeasible);
        }
        let m = self.lp.m;
        // Artificials that phase 1 once relied on may still sit in the
        // basis at value zero; they stay fixed to zero here.
        let basis_unchanged = self.lu.is_some() && self.basis == from.basis;
        self.vstat.copy_from_slice(&from.vstat);
        self.art_sign.copy_from_slice(&from.art_sign);
        if !basis_unchanged {
            self.basis.clear();
            self.basis.extend_from_slice(&from.basis);
            if self.refactorize().is_err() {
                return None;
            }
        }
        for j in 0..self.total {
            match self.vstat[j] {
                VStat::Basic => {}
                VStat::Lower => {
                    debug_assert!(self.lb[j].is_finite());
                    self.x[j] = self.lb[j];
                }
                VStat::Upper => {
                    debug_assert!(self.ub[j].is_finite());
                    self.x[j] = self.ub[j];
                }
            }
        }
        self.recompute_basics();
        // The phase-2 cost vector is constant; move it out of `self` for
        // the duration of the dual loop instead of reallocating per node.
        let c2 = std::mem::take(&mut self.cost2);
        let mut outcome: Option<Option<LpOutcome>> = None;
        let max_iters = 20 * (m + self.ncols) + 100;
        let mut iter = 0usize;
        loop {
            iter += 1;
            if iter > max_iters {
                outcome = Some(None);
                break;
            }
            // Most-violated basic variable leaves.
            let mut leave: Option<(usize, bool)> = None; // (row, below_lower)
            let mut worst = PRIMAL_FEAS_TOL;
            for r in 0..m {
                let j = self.basis[r];
                let below = self.lb[j] - self.x[j];
                let above = self.x[j] - self.ub[j];
                if below > worst {
                    worst = below;
                    leave = Some((r, true));
                }
                if above > worst {
                    worst = above;
                    leave = Some((r, false));
                }
            }
            let Some((r, below)) = leave else {
                break;
            };
            // Duals for the ratio test.
            for i in 0..m {
                self.work2[i] = c2[self.basis[i]];
            }
            self.btran();
            std::mem::swap(&mut self.duals, &mut self.work2);
            // Row r of B⁻¹N via rho = B⁻ᵀ e_r.
            self.work2.iter_mut().for_each(|v| *v = 0.0);
            self.work2[r] = 1.0;
            self.btran();
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_piv = 0.0;
            for j in 0..self.total {
                if self.vstat[j] == VStat::Basic || self.lb[j] >= self.ub[j] {
                    continue;
                }
                let mut arj = 0.0;
                self.for_col(j, |i, v| arj += v * self.work2[i]);
                let eligible = match (below, self.vstat[j]) {
                    (true, VStat::Lower) => arj < -PIVOT_TOL * 10.0,
                    (true, VStat::Upper) => arj > PIVOT_TOL * 10.0,
                    (false, VStat::Lower) => arj > PIVOT_TOL * 10.0,
                    (false, VStat::Upper) => arj < -PIVOT_TOL * 10.0,
                    (_, VStat::Basic) => false,
                };
                if !eligible {
                    continue;
                }
                let d = c2[j] - self.col_dot(j, &self.duals);
                let ratio = d.abs() / arj.abs();
                if ratio < best_ratio - RATIO_TOL
                    || (ratio < best_ratio + RATIO_TOL && arj.abs() > best_piv)
                {
                    best_ratio = ratio;
                    best_piv = arj.abs();
                    entering = Some(j);
                }
            }
            let Some(j) = entering else {
                // Dual unbounded: the node's LP is infeasible.
                outcome = Some(Some(LpOutcome::Infeasible));
                break;
            };
            // alpha = B⁻¹ A_j, pivot on row r.
            self.load_column_into_work(j);
            self.ftran();
            let arj = self.work[r];
            if arj.abs() < PIVOT_TOL {
                // Disagreement between rho-pricing and the FTRAN column:
                // refresh the factorisation and retry, else give up.
                if self.refactorize().is_err() {
                    outcome = Some(None);
                    break;
                }
                self.recompute_basics();
                continue;
            }
            let leaving = self.basis[r];
            let target = if below {
                self.lb[leaving]
            } else {
                self.ub[leaving]
            };
            let dxj = (self.x[leaving] - target) / arj;
            for i in 0..m {
                let a = self.work[i];
                if a != 0.0 {
                    let bj = self.basis[i];
                    self.x[bj] -= a * dxj;
                }
            }
            self.x[leaving] = target;
            self.vstat[leaving] = if below { VStat::Lower } else { VStat::Upper };
            self.x[j] += dxj;
            self.vstat[j] = VStat::Basic;
            self.push_eta(r, j);
        }
        self.cost2 = c2;
        if let Some(early) = outcome {
            return early;
        }
        // Primal polish: normally zero iterations, it just certifies dual
        // feasibility after the restore.
        match self.primal_phase2() {
            PhaseResult::Unbounded => Some(LpOutcome::Unbounded),
            PhaseResult::Optimal => Some(self.extract()),
        }
    }

    fn extract(&self) -> LpOutcome {
        let n = self.lp.n_struct;
        let mut values = Vec::with_capacity(n);
        let mut objective = 0.0;
        for j in 0..n {
            let v = self.x[j].clamp(self.lb[j], self.ub[j].max(self.lb[j]));
            objective += self.lp.cost[j] * v;
            values.push(v);
        }
        LpOutcome::Optimal { objective, values }
    }
}

/// Helper so `refactorize` can reuse the `Option` slot without cloning.
fn install_factors(slot: &mut Option<LuFactors>, dense: Vec<f64>, m: usize) -> Result<(), ()> {
    match LuFactors::factorize(dense, m) {
        Some(f) => {
            *slot = Some(f);
            Ok(())
        }
        None => Err(()),
    }
}

/// Convenience: cold-solves `lp` with no bound overrides.
pub fn solve_lp(lp: &SparseLp) -> LpOutcome {
    SparseSimplex::new(lp).solve(&[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn lp(model: &Model) -> LpOutcome {
        let sparse = SparseLp::from_model(model).unwrap();
        solve_lp(&sparse)
    }

    #[test]
    fn simple_bounded_lp() {
        // min -x - y s.t. x + y <= 2 (x,y >= 0) -> -2
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, -1.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, -1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - -2.0).abs() < 1e-6);
                assert!((values[0] + values[1] - 2.0).abs() < 1e-6);
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_ge_rows() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        m.add_constraint(&[(x, -1.0)], ConstraintOp::Le, -3.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, .. } => assert!((objective - 3.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x + y, x >= 2, y in [1, 5], x + y >= 4 -> obj 4
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(1.0, 5.0, 1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 4.0).abs() < 1e-6);
                assert!(values[0] >= 2.0 - 1e-6);
                assert!(values[1] >= 1.0 - 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extra_bounds_tighten_the_relaxation() {
        // max x, x <= 10; override ub to 4.
        let mut m = Model::new(Sense::Maximize);
        m.add_var(0.0, 10.0, 1.0, VarKind::Continuous, "x");
        let sparse = SparseLp::from_model(&m).unwrap();
        let mut s = SparseSimplex::new(&sparse);
        match s.solve(&[(0, 0.0, 4.0)]) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - -4.0).abs() < 1e-6);
                assert!((values[0] - 4.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conflicting_extra_bounds_are_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(0.0, 10.0, 1.0, VarKind::Continuous, "x");
        let sparse = SparseLp::from_model(&m).unwrap();
        let mut s = SparseSimplex::new(&sparse);
        assert_eq!(s.solve(&[(0, 5.0, 2.0)]), LpOutcome::Infeasible);
    }

    #[test]
    fn unconstrained_model_with_positive_costs() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(1.5, f64::INFINITY, 2.0, VarKind::Continuous, "x");
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 3.0).abs() < 1e-9);
                assert!((values[0] - 1.5).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unconstrained_model_with_negative_cost_is_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        assert_eq!(lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Beale's cycling example; check it terminates at the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_var(0.0, f64::INFINITY, 10.0, VarKind::Continuous, "x1");
        let x2 = m.add_var(0.0, f64::INFINITY, -57.0, VarKind::Continuous, "x2");
        let x3 = m.add_var(0.0, f64::INFINITY, -9.0, VarKind::Continuous, "x3");
        let x4 = m.add_var(0.0, f64::INFINITY, -24.0, VarKind::Continuous, "x4");
        m.add_constraint(
            &[(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            &[(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(&[(x1, 1.0)], ConstraintOp::Le, 1.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, .. } => {
                assert!(objective <= -1.0 + 1e-6, "objective {objective}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_start_matches_cold_solve_after_bound_change() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, 5.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let sparse = SparseLp::from_model(&m).unwrap();
        let mut s = SparseSimplex::new(&sparse);
        let root = s.solve(&[]);
        assert!(matches!(root, LpOutcome::Optimal { .. }));
        let basis = s.snapshot();
        for bounds in [
            vec![(1usize, 0.0, 2.0)],
            vec![(0usize, 3.0, f64::INFINITY)],
            vec![(0usize, 0.0, 1.0), (1usize, 1.0, 4.0)],
        ] {
            let warm = s.resolve_from(&basis, &bounds).expect("warm path");
            let mut cold_solver = SparseSimplex::new(&sparse);
            let cold = cold_solver.solve(&bounds);
            match (&warm, &cold) {
                (
                    LpOutcome::Optimal { objective: a, .. },
                    LpOutcome::Optimal { objective: b, .. },
                ) => assert!((a - b).abs() < 1e-6, "warm {a} vs cold {b} for {bounds:?}"),
                (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                other => panic!("warm/cold mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn warm_start_detects_infeasible_child() {
        // x + y >= 4 with both variables forced to [0, 1] is infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 5.0, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, 5.0, 1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        let sparse = SparseLp::from_model(&m).unwrap();
        let mut s = SparseSimplex::new(&sparse);
        assert!(matches!(s.solve(&[]), LpOutcome::Optimal { .. }));
        let basis = s.snapshot();
        let out = s
            .resolve_from(&basis, &[(0, 0.0, 1.0), (1, 0.0, 1.0)])
            .expect("warm path");
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn duplicate_terms_are_combined() {
        // min x s.t. x + x >= 5 -> x = 2.5
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        m.add_constraint(&[(x, 1.0), (x, 1.0)], ConstraintOp::Ge, 5.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, .. } => assert!((objective - 2.5).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fixed_variables_are_respected() {
        // y fixed at 2 via equal bounds.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(2.0, 2.0, 0.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 5.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 3.0).abs() < 1e-6);
                assert!((values[1] - 2.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_system() {
        // min x + y s.t. x + 2y = 8, x - y = 2 -> y=2, x=4, obj=6
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 8.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 2.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 6.0).abs() < 1e-6);
                assert!((values[0] - 4.0).abs() < 1e-6);
                assert!((values[1] - 2.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sparse_lp_reports_sizes() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, 1.0, 1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
        let lp = SparseLp::from_model(&m).unwrap();
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_rows(), 1);
        assert_eq!(lp.num_nonzeros(), 2);
    }
}

//! Dense two-phase primal simplex solver.
//!
//! The solver works on a [`StandardLp`]: a minimisation problem over shifted
//! non-negative variables with explicit rows for variable upper bounds.
//! Phase 1 minimises the sum of artificial variables to find a basic
//! feasible solution; phase 2 optimises the real objective. Dantzig's rule
//! is used for pivot selection with a switch to Bland's rule after a stall
//! so that degenerate problems cannot cycle.

use crate::model::{ConstraintOp, Model, Sense};

const EPS: f64 = 1e-9;

/// Outcome of an LP solve, in terms of the *original* model variables.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimum found; `objective` is in internal minimisation sense and
    /// `values` are the original model variables (unshifted).
    Optimal {
        /// Minimised objective value (negate for maximisation models).
        objective: f64,
        /// Variable values indexed like the model's variables.
        values: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
}

/// A minimisation LP in (near-)standard form produced from a [`Model`].
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Number of original (structural) variables.
    n: usize,
    /// Lower bound (shift) of each structural variable.
    shift: Vec<f64>,
    /// Objective coefficients of structural variables (minimisation sense).
    cost: Vec<f64>,
    /// Constant added to the objective by the shift.
    cost_const: f64,
    /// Rows: (coefficients over structural vars, op, rhs) after shifting.
    rows: Vec<(Vec<f64>, ConstraintOp, f64)>,
    /// Set when bound preprocessing detects an empty domain.
    trivially_infeasible: bool,
}

impl StandardLp {
    /// Builds the standard form of `model` with optional per-variable bound
    /// overrides `(var index, lb, ub)` (used by branch and bound).
    pub fn from_model(model: &Model, extra_bounds: &[(usize, f64, f64)]) -> Result<Self, String> {
        let n = model.vars.len();
        let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
        let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
        for &(i, l, u) in extra_bounds {
            if i >= n {
                return Err(format!("bound override for unknown variable {i}"));
            }
            lb[i] = lb[i].max(l);
            ub[i] = ub[i].min(u);
        }
        let trivially_infeasible = (0..n).any(|i| lb[i] > ub[i] + EPS);

        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let cost: Vec<f64> = model.vars.iter().map(|v| sign * v.obj).collect();
        let cost_const: f64 = cost.iter().zip(lb.iter()).map(|(c, l)| c * l).sum();

        let mut rows = Vec::new();
        for c in &model.constraints {
            let mut coef = vec![0.0; n];
            let mut shift_amount = 0.0;
            for &(v, a) in &c.terms {
                coef[v] += a;
            }
            for (i, a) in coef.iter().enumerate() {
                shift_amount += a * lb[i];
            }
            rows.push((coef, c.op, c.rhs - shift_amount));
        }
        // Upper-bound rows for shifted variables: x' <= ub - lb.
        for i in 0..n {
            if ub[i].is_finite() {
                let mut coef = vec![0.0; n];
                coef[i] = 1.0;
                rows.push((coef, ConstraintOp::Le, ub[i] - lb[i]));
            }
        }
        Ok(StandardLp {
            n,
            shift: lb,
            cost,
            cost_const,
            rows,
            trivially_infeasible,
        })
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of rows (including bound rows).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

struct Tableau {
    /// `m x total_cols` coefficient matrix.
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack/surplus + artificial).
    cols: usize,
    /// Columns that are artificial (banned in phase 2).
    artificial: Vec<bool>,
    m: usize,
}

/// Solves a standard-form LP; returns internal-minimisation objective and
/// original-variable values.
pub fn solve_lp(lp: &StandardLp) -> LpOutcome {
    if lp.trivially_infeasible {
        return LpOutcome::Infeasible;
    }
    let n = lp.n;
    let m = lp.rows.len();
    if m == 0 {
        // Unconstrained: each shifted variable sits at 0 unless its cost is
        // negative, in which case the problem is unbounded (no upper-bound
        // row exists for it by construction).
        if lp.cost.iter().any(|&c| c < -EPS) {
            return LpOutcome::Unbounded;
        }
        return LpOutcome::Optimal {
            objective: lp.cost_const,
            values: lp.shift.clone(),
        };
    }

    // Count extra columns: one slack/surplus per inequality, one artificial
    // per >=/== row (and per <= row with the rare negative rhs that flips).
    let mut slack_cols = 0usize;
    let mut artificial_cols = 0usize;
    for (_, op, rhs) in &lp.rows {
        let flipped = *rhs < 0.0;
        let effective_op = effective_op(*op, flipped);
        match effective_op {
            ConstraintOp::Le => slack_cols += 1,
            ConstraintOp::Ge => {
                slack_cols += 1;
                artificial_cols += 1;
            }
            ConstraintOp::Eq => artificial_cols += 1,
        }
    }
    let cols = n + slack_cols + artificial_cols;
    let mut t = Tableau {
        a: vec![vec![0.0; cols]; m],
        rhs: vec![0.0; m],
        basis: vec![usize::MAX; m],
        cols,
        artificial: vec![false; cols],
        m,
    };

    let mut next_slack = n;
    let mut next_artificial = n + slack_cols;
    for (i, (coef, op, rhs)) in lp.rows.iter().enumerate() {
        let flipped = *rhs < 0.0;
        let sign = if flipped { -1.0 } else { 1.0 };
        for (j, &c) in coef.iter().enumerate().take(n) {
            t.a[i][j] = sign * c;
        }
        t.rhs[i] = sign * rhs;
        match effective_op(*op, flipped) {
            ConstraintOp::Le => {
                t.a[i][next_slack] = 1.0;
                t.basis[i] = next_slack;
                next_slack += 1;
            }
            ConstraintOp::Ge => {
                t.a[i][next_slack] = -1.0;
                next_slack += 1;
                t.a[i][next_artificial] = 1.0;
                t.artificial[next_artificial] = true;
                t.basis[i] = next_artificial;
                next_artificial += 1;
            }
            ConstraintOp::Eq => {
                t.a[i][next_artificial] = 1.0;
                t.artificial[next_artificial] = true;
                t.basis[i] = next_artificial;
                next_artificial += 1;
            }
        }
    }

    // Phase 1: minimise the sum of artificial variables.
    if artificial_cols > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for (c, &artificial) in phase1_cost.iter_mut().zip(t.artificial.iter()) {
            if artificial {
                *c = 1.0;
            }
        }
        match optimize(&mut t, &phase1_cost, true) {
            SimplexResult::Optimal(obj) => {
                if obj > 1e-6 {
                    return LpOutcome::Infeasible;
                }
            }
            SimplexResult::Unbounded => {
                // Phase 1 objective is bounded below by zero, so this cannot
                // happen with consistent data; treat defensively.
                return LpOutcome::Infeasible;
            }
        }
        // Drive any artificial variable still in the basis (at value 0) out,
        // or note its row as redundant.
        for i in 0..m {
            if t.artificial[t.basis[i]] {
                if let Some(j) = (0..cols).find(|&j| !t.artificial[j] && t.a[i][j].abs() > 1e-7) {
                    pivot(&mut t, i, j);
                }
            }
        }
    }

    // Phase 2: real objective over structural columns.
    let mut phase2_cost = vec![0.0; cols];
    phase2_cost[..n].copy_from_slice(&lp.cost);
    match optimize(&mut t, &phase2_cost, false) {
        SimplexResult::Unbounded => LpOutcome::Unbounded,
        SimplexResult::Optimal(obj) => {
            let mut values = lp.shift.clone();
            for i in 0..m {
                let b = t.basis[i];
                if b < n {
                    values[b] += t.rhs[i];
                }
            }
            LpOutcome::Optimal {
                objective: obj + lp.cost_const,
                values,
            }
        }
    }
}

fn effective_op(op: ConstraintOp, flipped: bool) -> ConstraintOp {
    if !flipped {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

enum SimplexResult {
    Optimal(f64),
    Unbounded,
}

/// Runs the simplex method on the tableau for the given cost vector.
/// `phase1` bans nothing; phase 2 bans artificial columns from entering.
fn optimize(t: &mut Tableau, cost: &[f64], phase1: bool) -> SimplexResult {
    let m = t.m;
    let cols = t.cols;
    // Reduced costs: r_j = c_j - c_B^T B^{-1} A_j. We maintain them directly
    // by recomputing from the current (already pivoted canonical) tableau:
    // because each basic column is a unit vector, c_B^T B^{-1} A_j is just
    // sum_i cost[basis[i]] * a[i][j].
    let reduced = |t: &Tableau, j: usize| -> f64 {
        let mut r = cost[j];
        for i in 0..m {
            let cb = cost[t.basis[i]];
            if cb != 0.0 {
                r -= cb * t.a[i][j];
            }
        }
        r
    };

    let max_iters = 50 * (m + cols) + 200;
    let bland_after = 10 * (m + cols) + 50;
    for iter in 0..max_iters {
        let use_bland = iter >= bland_after;
        // Entering column.
        let mut entering: Option<usize> = None;
        let mut best = -1e-7;
        for j in 0..cols {
            if !phase1 && t.artificial[j] {
                continue;
            }
            let r = reduced(t, j);
            if use_bland {
                if r < -1e-7 {
                    entering = Some(j);
                    break;
                }
            } else if r < best {
                best = r;
                entering = Some(j);
            }
        }
        let Some(e) = entering else {
            // Optimal: objective = c_B^T x_B.
            let obj: f64 = (0..m).map(|i| cost[t.basis[i]] * t.rhs[i]).sum();
            return SimplexResult::Optimal(obj);
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t.a[i][e] > 1e-9 {
                let ratio = t.rhs[i] / t.a[i][e];
                if ratio < best_ratio - 1e-12
                    || (use_bland
                        && (ratio - best_ratio).abs() <= 1e-12
                        && leave.is_some_and(|l| t.basis[i] < t.basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return SimplexResult::Unbounded;
        };
        pivot(t, l, e);
    }
    // Iteration limit: report the current basic solution as "optimal enough";
    // branch and bound treats the value as a valid lower bound only when the
    // solve converged, so being conservative here just costs pruning power.
    let obj: f64 = (0..m).map(|i| cost[t.basis[i]] * t.rhs[i]).sum();
    SimplexResult::Optimal(obj)
}

fn pivot(t: &mut Tableau, row: usize, col: usize) {
    let p = t.a[row][col];
    debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
    let inv = 1.0 / p;
    for j in 0..t.cols {
        t.a[row][j] *= inv;
    }
    t.rhs[row] *= inv;
    t.a[row][col] = 1.0;
    for i in 0..t.m {
        if i == row {
            continue;
        }
        let factor = t.a[i][col];
        if factor.abs() < 1e-12 {
            continue;
        }
        for j in 0..t.cols {
            t.a[i][j] -= factor * t.a[row][j];
        }
        t.rhs[i] -= factor * t.rhs[row];
        t.a[i][col] = 0.0;
    }
    t.basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn lp(model: &Model) -> LpOutcome {
        let std = StandardLp::from_model(model, &[]).unwrap();
        solve_lp(&std)
    }

    #[test]
    fn simple_bounded_lp() {
        // min -x - y s.t. x + y <= 2 (x,y >= 0) -> -2
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, -1.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, -1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - -2.0).abs() < 1e-6);
                assert!((values[0] + values[1] - 2.0).abs() < 1e-6);
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        m.add_constraint(&[(x, -1.0)], ConstraintOp::Le, -3.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, .. } => assert!((objective - 3.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x + y, x >= 2, y in [1, 5], x + y >= 4 -> x=3,y=1 or x=2,y=2: obj 4
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(1.0, 5.0, 1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 4.0).abs() < 1e-6);
                assert!(values[0] >= 2.0 - 1e-9);
                assert!(values[1] >= 1.0 - 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extra_bounds_tighten_the_relaxation() {
        // max x, x <= 10; override ub to 4.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous, "x");
        let _ = x;
        let std = StandardLp::from_model(&m, &[(0, 0.0, 4.0)]).unwrap();
        match solve_lp(&std) {
            LpOutcome::Optimal { objective, values } => {
                // internal objective is minimisation of -x => -4
                assert!((objective - -4.0).abs() < 1e-6);
                assert!((values[0] - 4.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conflicting_extra_bounds_are_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(0.0, 10.0, 1.0, VarKind::Continuous, "x");
        let std = StandardLp::from_model(&m, &[(0, 5.0, 2.0)]).unwrap();
        assert_eq!(solve_lp(&std), LpOutcome::Infeasible);
    }

    #[test]
    fn unconstrained_model_with_positive_costs() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(1.5, f64::INFINITY, 2.0, VarKind::Continuous, "x");
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 3.0).abs() < 1e-9);
                assert!((values[0] - 1.5).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unconstrained_model_with_negative_cost_is_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        assert_eq!(lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example; just check it terminates at the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x1 = m.add_var(0.0, f64::INFINITY, 10.0, VarKind::Continuous, "x1");
        let x2 = m.add_var(0.0, f64::INFINITY, -57.0, VarKind::Continuous, "x2");
        let x3 = m.add_var(0.0, f64::INFINITY, -9.0, VarKind::Continuous, "x3");
        let x4 = m.add_var(0.0, f64::INFINITY, -24.0, VarKind::Continuous, "x4");
        m.add_constraint(
            &[(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            &[(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(&[(x1, 1.0)], ConstraintOp::Le, 1.0);
        match lp(&m) {
            LpOutcome::Optimal { objective, .. } => {
                // Known optimum of the Beale cycling example is 1 (x1=1, x3=1).
                assert!(objective <= -1.0 + 1e-6, "objective {objective}");
            }
            other => panic!("{other:?}"),
        }
    }
}

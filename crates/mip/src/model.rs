//! Model-building API for linear and mixed-integer programs.

use crate::branch_bound::{solve_mip, SolveOptions, SolveStats};
use crate::simplex::{LpOutcome, SparseLp, SparseSimplex};

/// Index of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Position of the variable in [`Solution::values`].
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Continuous or integral domain of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binaries are integers with bounds
    /// `[0, 1]`).
    Integer,
}

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal (for MIPs: optimal within tolerance) solution was found.
    Optimal,
    /// A feasible solution was found but the node/iteration budget ran out
    /// before optimality was proven.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded in the optimisation direction.
    Unbounded,
    /// The budget ran out before any feasible solution was found.
    Unknown,
}

/// Errors reported by [`Model::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No feasible assignment exists.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The search budget was exhausted before finding any feasible solution.
    BudgetExhausted,
    /// The model is malformed (e.g. empty, or a bound pair with lb > ub).
    InvalidModel(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "model is unbounded"),
            SolveError::BudgetExhausted => write!(f, "search budget exhausted"),
            SolveError::InvalidModel(m) => write!(f, "invalid model: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Result of a successful solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Value of every variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Whether optimality was proven.
    pub status: Status,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Convenience: whether a (binary) variable is set, using a 0.5
    /// threshold.
    pub fn is_one(&self, var: VarId) -> bool {
        self.values[var.0] > 0.5
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub kind: VarKind,
    #[allow(dead_code)]
    pub name: String,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(usize, f64)>,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// A linear / mixed-integer optimisation model.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model optimising in the given direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a decision variable and returns its id.
    ///
    /// `lb`/`ub` are the variable bounds (`f64::INFINITY` allowed for `ub`,
    /// `f64::NEG_INFINITY` is *not* allowed for `lb`: the simplex core
    /// assumes non-negative shifted variables, and every model in this
    /// workspace has natural lower bounds). `obj` is the objective
    /// coefficient.
    pub fn add_var(
        &mut self,
        lb: f64,
        ub: f64,
        obj: f64,
        kind: VarKind,
        name: impl Into<String>,
    ) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            lb,
            ub,
            obj,
            kind,
            name: name.into(),
        });
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, obj: f64, name: impl Into<String>) -> VarId {
        self.add_var(0.0, 1.0, obj, VarKind::Integer, name)
    }

    /// Adds a linear constraint `sum(coef * var) op rhs`.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.iter().map(|&(v, c)| (v.0, c)).collect(),
            op,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// True when at least one variable is integral.
    pub fn is_mip(&self) -> bool {
        self.vars.iter().any(|v| v.kind == VarKind::Integer)
    }

    /// Direction of optimisation.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Bounds, objective coefficient and kind of variable `i` as
    /// `(lb, ub, obj, kind)`.
    ///
    /// This read-only view (with [`Self::constraint_data`]) is what lets
    /// external reference solvers — such as the frozen dense-simplex
    /// baseline in `rideshare_bench::baseline::dense_mip` — consume the
    /// *same* model instance the production solver sees, so equivalence
    /// tests cannot drift apart on model-building details.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn var_data(&self, i: usize) -> (f64, f64, f64, VarKind) {
        let v = &self.vars[i];
        (v.lb, v.ub, v.obj, v.kind)
    }

    /// Terms, operator and right-hand side of constraint `i`.
    ///
    /// Terms are `(variable index, coefficient)` pairs exactly as added;
    /// duplicates are possible and must be summed by the consumer.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn constraint_data(&self, i: usize) -> (&[(usize, f64)], ConstraintOp, f64) {
        let c = &self.constraints[i];
        (&c.terms, c.op, c.rhs)
    }

    fn validate(&self) -> Result<(), SolveError> {
        if self.vars.is_empty() {
            return Err(SolveError::InvalidModel("model has no variables".into()));
        }
        for (i, v) in self.vars.iter().enumerate() {
            if v.lb.is_nan() || v.ub.is_nan() || v.obj.is_nan() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {i} has NaN data"
                )));
            }
            if !v.lb.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {i} must have a finite lower bound"
                )));
            }
            if v.lb > v.ub {
                return Err(SolveError::InvalidModel(format!(
                    "variable {i} has lb {} > ub {}",
                    v.lb, v.ub
                )));
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.rhs.is_nan() || c.terms.iter().any(|&(_, a)| a.is_nan()) {
                return Err(SolveError::InvalidModel(format!(
                    "constraint {i} has NaN data"
                )));
            }
            for &(v, _) in &c.terms {
                if v >= self.vars.len() {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint {i} references unknown variable {v}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves with default options.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves with explicit branch-and-bound options (ignored for pure LPs).
    pub fn solve_with(&self, options: &SolveOptions) -> Result<Solution, SolveError> {
        self.validate()?;
        if self.is_mip() {
            solve_mip(self, options)
        } else {
            self.solve_relaxation(&[]).and_then(|out| match out {
                LpOutcome::Optimal { objective, values } => Ok(Solution {
                    objective: self.external_objective(objective),
                    values,
                    status: Status::Optimal,
                    stats: SolveStats::default(),
                }),
                LpOutcome::Infeasible => Err(SolveError::Infeasible),
                LpOutcome::Unbounded => Err(SolveError::Unbounded),
            })
        }
    }

    /// Solves the LP relaxation with extra variable-bound overrides.
    /// Bounds are `(var index, lb, ub)`.
    pub(crate) fn solve_relaxation(
        &self,
        extra_bounds: &[(usize, f64, f64)],
    ) -> Result<LpOutcome, SolveError> {
        let lp = SparseLp::from_model(self).map_err(SolveError::InvalidModel)?;
        Ok(SparseSimplex::new(&lp).solve(extra_bounds))
    }

    /// Converts an internal (minimisation) objective value back to the
    /// model's sense.
    pub(crate) fn external_objective(&self, internal_min: f64) -> f64 {
        match self.sense {
            Sense::Minimize => internal_min,
            Sense::Maximize => -internal_min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_maximization_textbook() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, 5.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = m.solve().unwrap();
        assert!(
            (s.objective - 36.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
        assert_eq!(s.status, Status::Optimal);
    }

    #[test]
    fn lp_minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 -> x=8? no: cheapest is all x.
        // x + y >= 10, x >= 2, y >= 0: optimum x=10,y=0 obj=20? x costs 2 < y 3,
        // so x=10, y=0, obj=20.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 2.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, 3.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!((s.value(x) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn lp_equality_constraints() {
        // min x + y s.t. x + 2y = 8, x - y = 2 -> y=2, x=4, obj=6
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 8.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 2.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 6.0).abs() < 1e-6);
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_lp_is_reported() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 5.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_lp_is_reported() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous, "x");
        m.add_constraint(&[(x, -1.0)], ConstraintOp::Le, 5.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn invalid_models_are_rejected() {
        let m = Model::new(Sense::Minimize);
        assert!(matches!(m.solve(), Err(SolveError::InvalidModel(_))));

        let mut m = Model::new(Sense::Minimize);
        m.add_var(5.0, 1.0, 0.0, VarKind::Continuous, "bad");
        assert!(matches!(m.solve(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn variable_bounds_are_respected() {
        // max x, 1 <= x <= 3.5
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(1.0, 3.5, 1.0, VarKind::Continuous, "x");
        let s = m.solve().unwrap();
        assert!((s.value(x) - 3.5).abs() < 1e-6);

        // min x with same bounds
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0, 3.5, 1.0, VarKind::Continuous, "x");
        let s = m.solve().unwrap();
        assert!((s.value(x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn binary_knapsack() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a + c (17) vs b + c (20)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0, "a");
        let b = m.add_binary(13.0, "b");
        let c = m.add_binary(7.0, "c");
        m.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], ConstraintOp::Le, 6.0);
        let s = m.solve().unwrap();
        assert!(
            (s.objective - 20.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!(!s.is_one(a));
        assert!(s.is_one(b));
        assert!(s.is_one(c));
    }

    #[test]
    fn integer_variable_rounds_down_not_up() {
        // max x s.t. 2x <= 7, x integer -> 3 (LP relaxation 3.5)
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 100.0, 1.0, VarKind::Integer, "x");
        m.add_constraint(&[(x, 2.0)], ConstraintOp::Le, 7.0);
        let s = m.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert_eq!(s.status, Status::Optimal);
        assert!(s.stats.nodes_explored >= 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn assignment_problem_as_mip() {
        // 3x3 assignment, cost matrix; optimal = 1 + 2 + 1 = 4 picking (0,1),(1,2),(2,0)
        let cost = [[5.0, 1.0, 9.0], [8.0, 7.0, 2.0], [1.0, 4.0, 6.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = [[VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i][j] = m.add_binary(cost[i][j], format!("x{i}{j}"));
            }
        }
        for i in 0..3 {
            let row: Vec<(VarId, f64)> = (0..3).map(|j| (x[i][j], 1.0)).collect();
            m.add_constraint(&row, ConstraintOp::Eq, 1.0);
            let col: Vec<(VarId, f64)> = (0..3).map(|j| (x[j][i], 1.0)).collect();
            m.add_constraint(&col, ConstraintOp::Eq, 1.0);
        }
        let s = m.solve().unwrap();
        assert!(
            (s.objective - 4.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!(s.is_one(x[0][1]) && s.is_one(x[1][2]) && s.is_one(x[2][0]));
    }

    #[test]
    fn infeasible_mip_is_reported() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary(1.0, "a");
        let b = m.add_binary(1.0, "b");
        m.add_constraint(&[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn model_introspection() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0, VarKind::Continuous, "x");
        assert!(!m.is_mip());
        m.add_binary(1.0, "b");
        assert!(m.is_mip());
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(x.index(), 0);
    }
}

//! A small mixed-integer programming solver.
//!
//! The paper's third baseline formulates the re-scheduling of a vehicle's
//! unfinished pickups/dropoffs plus the new request as a mixed-integer
//! program (Sec. III-A, a dial-a-ride model with Miller–Tucker–Zemlin-style
//! big-M linearisation) and hands it to an off-the-shelf solver. No such
//! solver is available as an offline crate, so this crate implements the
//! substrate from scratch:
//!
//! * a sparse, bounded-variable revised **simplex** solver for linear
//!   programs ([`simplex`]) — columns in compressed sparse form, variable
//!   bounds handled implicitly, the basis kept as an LU factorisation plus
//!   a product-form eta file that is refactorised periodically; and
//! * **branch and bound** over the LP relaxation for integer and binary
//!   variables ([`branch_bound`]), warm-starting every child node from its
//!   parent's basis via dual-simplex reoptimisation.
//!
//! The solver is exact (up to numeric tolerance). Even so, solving a MIP
//! per request remains orders of magnitude slower than the paper's
//! incremental kinetic tree — that gap is the phenomenon Fig. 6 reports,
//! and the seed's dense tableau solver (frozen as the measurement baseline
//! in `rideshare_bench::baseline::dense_mip`) exaggerated it by another
//! order of magnitude at three trips on board.
//!
//! ```
//! use rideshare_mip::{Model, Sense, VarKind};
//!
//! // maximise 3x + 2y  s.t. x + y <= 4, x <= 2, x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var(0.0, f64::INFINITY, 3.0, VarKind::Continuous, "x");
//! let y = m.add_var(0.0, f64::INFINITY, 2.0, VarKind::Continuous, "y");
//! m.add_constraint(&[(x, 1.0), (y, 1.0)], rideshare_mip::ConstraintOp::Le, 4.0);
//! m.add_constraint(&[(x, 1.0)], rideshare_mip::ConstraintOp::Le, 2.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! ```

pub mod branch_bound;
pub mod model;
pub mod simplex;

pub use branch_bound::{SolveOptions, SolveStats};
pub use model::{ConstraintOp, Model, Sense, Solution, SolveError, Status, VarId, VarKind};
pub use simplex::{Basis, LpOutcome, SparseLp, SparseSimplex};

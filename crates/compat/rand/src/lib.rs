//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen::<T>()` for the primitive
//! types the generators draw. The generator is xoshiro256++ seeded via
//! SplitMix64 — high quality, fast, and fully deterministic for a given
//! seed, which is the property the workspace actually relies on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of
/// `rand::distributions::Standard` the workspace uses).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + self.gen::<f64>() * (range.end - range.start)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Snapshot of the generator's internal state, for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this lets a simulation
        /// freeze an RNG stream to disk and resume it bit-identically —
        /// something the real `rand` crate exposes through serde instead;
        /// if these shims are ever swapped for the real crates, the
        /// checkpoint layer is the only consumer to adapt.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot; the
        /// restored stream continues exactly where the snapshot was taken.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01, "lower tail unreached: {lo}");
        assert!(hi > 0.99, "upper tail unreached: {hi}");
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            let _ = rng.gen::<u64>();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..50).map(|_| rng.gen::<u64>()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..50).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "biased: {trues}");
    }
}

//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros. Inputs are drawn from a deterministic RNG
//! seeded from the test's module path and case number, so failures are
//! reproducible run-to-run.
//!
//! Failing properties are **shrunk**: the runner greedily walks
//! [`strategy::Strategy::shrink`] candidates (bounded by a fixed probe
//! budget), so range, tuple and `collection::vec` inputs are minimised —
//! ranges shrink toward their start, vectors shed length before
//! shrinking elements, tuples shrink one component at a time. The
//! minimal failing input is printed before the property is re-run
//! uncaught, so the ordinary assertion failure surfaces with a small,
//! readable witness. Opaque strategies (`prop_map`, `Just`,
//! `prop_oneof!` unions) don't shrink — their draws are reported
//! as generated.

/// Runner configuration (the subset of `proptest::test_runner::Config`
/// the workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used to draw test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, seeded from the test's identity and the
    /// case index so every case is distinct but reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// sampler.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, most
        /// aggressive first. The runner probes them greedily: the first
        /// candidate that still fails becomes the new current value.
        /// Strategies with no meaningful simplification return nothing
        /// (the default).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies can be
        /// unioned (see [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink(value)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (built by [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            let mut out = Vec::new();
            if *value != self.start {
                out.push(self.start);
                let mid = self.start + (value - self.start) / 2.0;
                if mid != *value && mid != self.start {
                    out.push(mid);
                }
            }
            out
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
        fn shrink(&self, value: &f32) -> Vec<f32> {
            let mut out = Vec::new();
            if *value != self.start {
                out.push(self.start);
                let mid = self.start + (value - self.start) / 2.0;
                if mid != *value && mid != self.start {
                    out.push(mid);
                }
            }
            out
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value > self.start {
                        // Halve the distance to the minimum, then step by
                        // one: together these binary-search the boundary.
                        let mid = self.start + (value - self.start) / 2;
                        out.push(mid);
                        let dec = value - 1;
                        if dec != mid {
                            out.push(dec);
                        }
                    }
                    out
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value > self.start {
                        let mid =
                            (self.start as i128 + (*value as i128 - self.start as i128) / 2) as $t;
                        out.push(mid);
                        let dec = value - 1;
                        if dec != mid {
                            out.push(dec);
                        }
                    }
                    out
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone,)+
            {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    // Shrink one component at a time, the others fixed.
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Vectors of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    /// The result of [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Shed length first (a shorter witness beats smaller
            // elements): halve toward the minimum, then drop single
            // elements; only then shrink elements in place.
            if value.len() > self.size.start {
                let half = (value.len() / 2).max(self.size.start);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            for i in 0..value.len() {
                for candidate in self.element.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod runner {
    //! The case loop behind [`proptest!`](crate::proptest): sample, test,
    //! and on failure shrink to a minimal witness before failing for real.

    use crate::strategy::Strategy;
    use crate::{ProptestConfig, TestRng};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Cap on failing-probe executions during one shrink search. Probes
    /// re-run the property body, which can be expensive; the greedy search
    /// keeps whatever minimum it reached when the budget runs out.
    const SHRINK_BUDGET: usize = 1_000;

    /// Runs `config.cases` random cases of `test` over inputs drawn from
    /// `strat`. On the first failing case the input is shrunk to a local
    /// minimum, printed, and the property re-run uncaught so the original
    /// assertion failure surfaces with the minimal witness.
    pub fn run<S, F>(test_name: &str, config: &ProptestConfig, strat: &S, test: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(S::Value),
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            let input = strat.sample(&mut rng);
            if catch_unwind(AssertUnwindSafe(|| test(input.clone()))).is_ok() {
                continue;
            }
            let minimal = shrink_failure(strat, &test, input);
            eprintln!(
                "proptest: {test_name} failed at case {case}/{}; \
                 minimal failing input:\n{minimal:#?}",
                config.cases
            );
            test(minimal);
            unreachable!("shrunken input stopped failing on the final re-run");
        }
    }

    /// Greedy bounded shrink: repeatedly jump to the first
    /// [`Strategy::shrink`] candidate that still fails, until no candidate
    /// fails or the probe budget is spent. Probes necessarily panic, so
    /// the panic hook is silenced while searching (and restored after) to
    /// keep the harness output readable.
    pub(crate) fn shrink_failure<S, F>(strat: &S, test: &F, initial: S::Value) -> S::Value
    where
        S: Strategy,
        S::Value: Clone,
        F: Fn(S::Value),
    {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut current = initial;
        let mut budget = SHRINK_BUDGET;
        'search: while budget > 0 {
            let candidates = strat.shrink(&current);
            if candidates.is_empty() {
                break;
            }
            for candidate in candidates {
                if budget == 0 {
                    break 'search;
                }
                budget -= 1;
                let still_fails =
                    catch_unwind(AssertUnwindSafe(|| test(candidate.clone()))).is_err();
                if still_fails {
                    current = candidate;
                    continue 'search;
                }
            }
            break;
        }
        std::panic::set_hook(hook);
        current
    }
}

/// Runs each property as a loop of random cases, shrinking failures to a
/// minimal witness; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // One combined tuple strategy: sampling order matches the
                // old per-argument scheme (tuples sample left to right),
                // so seeded draws are unchanged — and failures shrink
                // across all arguments jointly.
                let strat = ($(($strat),)+);
                $crate::runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &strat,
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts a property holds (panics like `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts two values are equal (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts two values differ (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// The usual one-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1_000 {
            let x = Strategy::sample(&(3usize..8), &mut rng);
            assert!((3..8).contains(&x));
            let f = Strategy::sample(&(-5.0f64..5.0), &mut rng);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u32..10, 1..5), &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("repro", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("repro", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, (a, b) in (0u64..10, 0u64..10)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    /// The satellite acceptance test: a seeded failing property must
    /// shrink to its known minimum. `v < 17` over `0..1000` has minimal
    /// counterexample 17, and the halve-then-decrement candidates binary-
    /// search straight down to it.
    #[test]
    fn failing_range_shrinks_to_known_minimum() {
        let strat = (0u64..1_000,);
        let test = |(v,): (u64,)| assert!(v < 17);
        for seed_failure in [999u64, 500, 17, 18, 64] {
            let minimal = crate::runner::shrink_failure(&strat, &test, (seed_failure,));
            assert_eq!(minimal.0, 17, "started from {seed_failure}");
        }
    }

    /// Vectors shed length before shrinking elements: any failing vec with
    /// one offending element must shrink to exactly `[min_offender]`.
    #[test]
    fn failing_vec_shrinks_to_single_minimal_element() {
        let strat = (prop::collection::vec(0u32..100, 1..8),);
        let test = |(v,): (Vec<u32>,)| assert!(v.iter().all(|&x| x < 5));
        let minimal = crate::runner::shrink_failure(&strat, &test, (vec![99, 3, 42, 7],));
        assert_eq!(minimal.0, vec![5]);
    }

    /// Tuple components shrink independently: only the component that
    /// drives the failure moves, the innocent one reaches its minimum.
    #[test]
    fn tuple_shrinks_componentwise() {
        let strat = (0u64..100, 0u64..100);
        let test = |(a, _b): (u64, u64)| assert!(a < 10);
        let minimal = crate::runner::shrink_failure(&strat, &test, (77, 55));
        assert_eq!(minimal, (10, 0));
    }

    /// A shrunk f64 stays a valid sample: the range start is tried first,
    /// then midpoints toward it.
    #[test]
    fn float_range_shrinks_toward_start() {
        let strat = (1.0f64..100.0,);
        let test = |(x,): (f64,)| assert!(x < 8.0);
        // Halving toward the start converges to within a factor of two of
        // the failure boundary (floats have no decrement step): the final
        // witness x satisfies x >= 8 and start + (x - start)/2 < 8.
        let minimal = crate::runner::shrink_failure(&strat, &test, (93.5,));
        assert!((8.0..15.0).contains(&minimal.0), "got {}", minimal.0);
    }

    /// The macro path itself shrinks: drive a deliberately failing
    /// property through `runner::run` and confirm the panic carries the
    /// original assertion, not a runner artifact.
    #[test]
    fn runner_rethrows_the_original_assertion_on_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            crate::runner::run(
                "shrink_rethrow_self_test",
                &ProptestConfig::with_cases(50),
                &(0u32..1_000,),
                |(v,)| assert!(v < 3, "v was {v}"),
            );
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "v was 3", "panic carried: {msg}");
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![
            (0u32..1).prop_map(|_| "a"),
            (0u32..1).prop_map(|_| "b"),
            (0u32..1).prop_map(|_| "c"),
        ];
        let mut rng = TestRng::for_case("oneof", 2);
        let seen: std::collections::HashSet<&str> =
            (0..100).map(|_| Strategy::sample(&s, &mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }
}

//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros. Inputs are drawn from a deterministic RNG
//! seeded from the test's module path and case number, so failures are
//! reproducible run-to-run. There is no shrinking: a failing property
//! panics with the ordinary assert message.

/// Runner configuration (the subset of `proptest::test_runner::Config`
/// the workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used to draw test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, seeded from the test's identity and the
    /// case index so every case is distinct but reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// sampler.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies can be
        /// unioned (see [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (built by [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Vectors of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    /// The result of [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs each property as a loop of random cases; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts a property holds (panics like `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts two values are equal (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts two values differ (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// The usual one-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1_000 {
            let x = Strategy::sample(&(3usize..8), &mut rng);
            assert!((3..8).contains(&x));
            let f = Strategy::sample(&(-5.0f64..5.0), &mut rng);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u32..10, 1..5), &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("repro", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("repro", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, (a, b) in (0u64..10, 0u64..10)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![
            (0u32..1).prop_map(|_| "a"),
            (0u32..1).prop_map(|_| "b"),
            (0u32..1).prop_map(|_| "c"),
        ];
        let mut rng = TestRng::for_case("oneof", 2);
        let seen: std::collections::HashSet<&str> =
            (0..100).map(|_| Strategy::sample(&s, &mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }
}

//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Benchmarks genuinely
//! run: each one is warmed up, then timed for the configured measurement
//! window, and the mean ns/iteration is printed to stdout. There are no
//! statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Units of work one benchmark iteration processes; lets the runner report
/// a rate next to the raw time (mirrors `criterion::Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (printed as elem/s).
    Elements(u64),
    /// Iterations process this many bytes (printed as MiB/s).
    Bytes(u64),
}

/// Benchmark driver configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks. The group starts from
    /// this `Criterion`'s config and may override it without affecting
    /// benchmarks outside the group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let config = self.clone();
        run_one(&config, None, &id.0, &mut f);
        self
    }
}

/// A named set of benchmarks sharing one config.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Declares how much work one iteration of the following benchmarks
    /// does; their reports gain an elem/s (or MiB/s) column. Applies to
    /// every subsequent `bench_*` call until overridden.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&self.config, self.throughput, &label, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &self.config,
            self.throughput,
            &label,
            &mut |b: &mut Bencher| b_input(b, input, &mut f),
        );
        self
    }

    /// Ends the group (printing happens as benches run).
    pub fn finish(self) {}
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function_name/parameter` style id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Id for a benchmark distinguished only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost so the timed samples can batch appropriately.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Timed samples: split the measurement budget into `sample_size`
        // batches of roughly equal wall-clock length.
        let samples = self.config.sample_size.max(1);
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample = ((budget / samples as f64) / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;

        let mut total_ns = 0.0;
        let mut total_iters: u64 = 0;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_ns += t.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.result_ns = Some(total_ns / total_iters.max(1) as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    throughput: Option<Throughput>,
    label: &str,
    f: &mut F,
) {
    let mut bencher = Bencher {
        config: criterion,
        result_ns: None,
    };
    f(&mut bencher);
    let rate = match (throughput, bencher.result_ns) {
        (Some(Throughput::Elements(n)), Some(ns)) if ns > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / (ns / 1e9))
        }
        (Some(Throughput::Bytes(n)), Some(ns)) if ns > 0.0 => {
            format!(
                "  {:>12.2} MiB/s",
                n as f64 / (1024.0 * 1024.0) / (ns / 1e9)
            )
        }
        _ => String::new(),
    };
    match bencher.result_ns {
        Some(ns) if ns >= 1_000_000.0 => println!("{label:<60} {:>12.3} ms/iter{rate}", ns / 1e6),
        Some(ns) if ns >= 1_000.0 => println!("{label:<60} {:>12.3} µs/iter{rate}", ns / 1e3),
        Some(ns) => println!("{label:<60} {ns:>12.1} ns/iter{rate}"),
        None => println!("{label:<60}  (no measurement: closure never called iter)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Bench group entry point generated by `criterion_group!`."]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("t");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn throughput_annotates_without_breaking_measurement() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(1_000));
        let mut ran = false;
        group.bench_function("elems", |b| {
            b.iter(|| black_box(3 * 7));
            ran = true;
        });
        group.throughput(Throughput::Bytes(4096));
        group.bench_function("bytes", |b| b.iter(|| black_box([0u8; 64])));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("t");
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            assert_eq!(x, 7);
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }

    criterion_group! {
        name = shim_benches;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = a_target
    }

    fn a_target(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(42)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_benches();
    }
}

//! Minimal scoped work pool for data-parallel fan-out.
//!
//! The build environment has no network access, so the workspace cannot
//! depend on `rayon`; this crate provides the small slice of functionality
//! the dispatcher needs — split a slice into contiguous chunks and run one
//! closure per chunk on scoped OS threads (`std::thread::scope`), returning
//! the per-chunk results in chunk order.
//!
//! Threads are spawned per call rather than kept in a persistent pool.
//! That costs a few tens of microseconds per spawn, which is negligible
//! against the multi-millisecond fan-outs the dispatcher issues (hundreds
//! to thousands of ~2 µs kinetic-tree evaluations per chunk); callers that
//! fan out tiny batches should use [`WorkPool::run_inline_below`] to gate
//! parallelism by batch size.
//!
//! Determinism contract: [`WorkPool::map_chunks`] always returns results
//! ordered by chunk index and always produces the same chunk boundaries
//! for the same `(len, workers)` pair, so a deterministic per-chunk
//! closure composes into a deterministic parallel map regardless of how
//! the OS schedules the worker threads.

use std::ops::Range;
use std::thread;

/// One mutable chunk pair handed to a [`WorkPool::zip_chunks_mut`] worker:
/// chunk index, the item range it covers, and the two slices.
type ZipChunk<'a, A, B> = (usize, Range<usize>, &'a mut [A], &'a mut [B]);

/// Splits `len` items into at most `chunks` contiguous, non-empty ranges
/// whose sizes differ by at most one (earlier ranges get the remainder).
///
/// Returns fewer than `chunks` ranges when there are fewer items than
/// chunks, and an empty vector when `len == 0`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len);
    let mut out = Vec::with_capacity(chunks);
    if len == 0 {
        return out;
    }
    let base = len / chunks;
    let extra = len % chunks;
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A fixed-width scoped work pool.
///
/// `WorkPool` is a configuration object (worker count plus an inline-run
/// threshold); the threads themselves live only for the duration of each
/// [`WorkPool::map_chunks`] call, so the pool is trivially `Send + Sync`
/// and needs no shutdown protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    workers: usize,
    run_inline_below: usize,
}

impl WorkPool {
    /// Creates a pool that fans out across `workers` threads (clamped to a
    /// minimum of 1). One worker means every call runs inline on the
    /// calling thread.
    pub fn new(workers: usize) -> Self {
        WorkPool {
            workers: workers.max(1),
            run_inline_below: 0,
        }
    }

    /// Sets the minimum number of items below which [`WorkPool::map_chunks`]
    /// skips thread spawning and runs inline. Results are identical either
    /// way; this only avoids paying spawn latency on tiny batches.
    pub fn run_inline_below(mut self, min_items: usize) -> Self {
        self.run_inline_below = min_items;
        self
    }

    /// Configured number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `items` into at most [`WorkPool::workers`] contiguous chunks
    /// and applies `f(chunk_index, chunk_range, &items[chunk_range])` to
    /// each, one chunk per thread, returning results in chunk order.
    ///
    /// The first chunk runs on the calling thread, so a one-worker pool
    /// (or a batch below the inline threshold) never spawns.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, Range<usize>, &[T]) -> R + Sync,
    {
        let ranges = chunk_ranges(items.len(), self.workers);
        if ranges.is_empty() {
            return Vec::new();
        }
        if ranges.len() == 1 || items.len() < self.run_inline_below {
            // Inline path: same chunking, same order, no threads. Note the
            // inline threshold can leave multiple ranges here; iterate them
            // all so chunk indices (and thus any index-dependent work in
            // `f`) match the threaded path exactly.
            return ranges
                .into_iter()
                .enumerate()
                .map(|(i, r)| f(i, r.clone(), &items[r]))
                .collect();
        }
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(ranges.len() - 1);
            for (i, r) in ranges.iter().enumerate().skip(1) {
                let r = r.clone();
                let f = &f;
                handles.push(scope.spawn(move || f(i, r.clone(), &items[r])));
            }
            let first = ranges[0].clone();
            let mut out = Vec::with_capacity(ranges.len());
            out.push(f(0, first.clone(), &items[first]));
            for h in handles {
                match h.join() {
                    Ok(r) => out.push(r),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            out
        })
    }
    /// Splits two equal-length slices into the same contiguous chunks and
    /// applies `f(chunk_index, chunk_range, &mut a[chunk_range], &mut
    /// b[chunk_range])` to each corresponding pair, one chunk per thread,
    /// returning results in chunk order.
    ///
    /// This is the mutable counterpart of [`WorkPool::map_chunks`] for the
    /// common "structure-of-arrays" layout where one logical record is
    /// split across two parallel vectors (e.g. a fleet's vehicles and their
    /// motion states). Chunk boundaries follow [`chunk_ranges`], so the
    /// same determinism contract applies: a deterministic per-chunk closure
    /// composes into a deterministic parallel map regardless of scheduling.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    pub fn zip_chunks_mut<A, B, R, F>(&self, a: &mut [A], b: &mut [B], f: F) -> Vec<R>
    where
        A: Send,
        B: Send,
        R: Send,
        F: Fn(usize, Range<usize>, &mut [A], &mut [B]) -> R + Sync,
    {
        assert_eq!(
            a.len(),
            b.len(),
            "zip_chunks_mut requires equal-length slices"
        );
        let ranges = chunk_ranges(a.len(), self.workers);
        if ranges.is_empty() {
            return Vec::new();
        }
        if ranges.len() == 1 || a.len() < self.run_inline_below {
            let mut out = Vec::with_capacity(ranges.len());
            let (mut rest_a, mut rest_b) = (a, b);
            for (i, r) in ranges.iter().enumerate() {
                let (chunk_a, next_a) = rest_a.split_at_mut(r.len());
                let (chunk_b, next_b) = rest_b.split_at_mut(r.len());
                out.push(f(i, r.clone(), chunk_a, chunk_b));
                rest_a = next_a;
                rest_b = next_b;
            }
            return out;
        }
        // Carve both slices into disjoint mutable chunks up front, then
        // hand one pair to each scoped thread (first chunk runs on the
        // calling thread, mirroring map_chunks).
        let mut chunks: Vec<ZipChunk<'_, A, B>> = Vec::with_capacity(ranges.len());
        let (mut rest_a, mut rest_b) = (a, b);
        for (i, r) in ranges.iter().enumerate() {
            let (chunk_a, next_a) = rest_a.split_at_mut(r.len());
            let (chunk_b, next_b) = rest_b.split_at_mut(r.len());
            chunks.push((i, r.clone(), chunk_a, chunk_b));
            rest_a = next_a;
            rest_b = next_b;
        }
        thread::scope(|scope| {
            let mut iter = chunks.into_iter();
            let first = iter.next().expect("at least one chunk");
            let mut handles = Vec::new();
            for (i, r, ca, cb) in iter {
                let f = &f;
                handles.push(scope.spawn(move || f(i, r, ca, cb)));
            }
            let mut out = Vec::with_capacity(handles.len() + 1);
            let (i, r, ca, cb) = first;
            out.push(f(i, r, ca, cb));
            for h in handles {
                match h.join() {
                    Ok(r) => out.push(r),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in 0..40usize {
            for chunks in 1..10usize {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, len);
                assert!(ranges.len() <= chunks.max(1));
                if len >= chunks {
                    assert_eq!(ranges.len(), chunks);
                }
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let ranges = chunk_ranges(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_chunks_returns_results_in_chunk_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 3, 8] {
            let pool = WorkPool::new(workers);
            let sums = pool.map_chunks(&items, |_, _, chunk| chunk.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
            // Chunk order: sums of contiguous ascending runs are ascending
            // in their first element; verify via explicit recomputation.
            let ranges = chunk_ranges(items.len(), workers);
            let expect: Vec<u64> = ranges
                .iter()
                .map(|r| items[r.clone()].iter().sum::<u64>())
                .collect();
            assert_eq!(sums, expect);
        }
    }

    #[test]
    fn inline_threshold_matches_threaded_results() {
        let items: Vec<u64> = (0..64).collect();
        let threaded = WorkPool::new(4).map_chunks(&items, |i, r, c| (i, r.start, c.len()));
        let inline = WorkPool::new(4)
            .run_inline_below(1_000)
            .map_chunks(&items, |i, r, c| (i, r.start, c.len()));
        assert_eq!(threaded, inline);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let pool = WorkPool::new(4);
        let out: Vec<usize> = pool.map_chunks::<u64, _, _>(&[], |_, _, c| c.len());
        assert!(out.is_empty());
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(WorkPool::new(0).workers(), 1);
    }

    #[test]
    fn zip_chunks_mut_mutates_both_slices_in_place() {
        for workers in [1usize, 2, 3, 8] {
            let mut a: Vec<u64> = (0..100).collect();
            let mut b: Vec<u64> = (0..100).map(|x| x * 10).collect();
            let pool = WorkPool::new(workers);
            let sums = pool.zip_chunks_mut(&mut a, &mut b, |_, range, ca, cb| {
                for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
                    *x += 1;
                    *y += *x;
                }
                let _ = range;
                ca.iter().sum::<u64>()
            });
            assert_eq!(a, (1..=100).collect::<Vec<u64>>());
            assert_eq!(
                b,
                (0..100).map(|x| x * 10 + x + 1).collect::<Vec<u64>>(),
                "workers = {workers}"
            );
            assert_eq!(sums.iter().sum::<u64>(), (1..=100).sum::<u64>());
        }
    }

    #[test]
    fn zip_chunks_mut_matches_inline_results() {
        let make = || {
            (
                (0..64u64).collect::<Vec<_>>(),
                (0..64u64).collect::<Vec<_>>(),
            )
        };
        let run = |pool: WorkPool| {
            let (mut a, mut b) = make();
            pool.zip_chunks_mut(&mut a, &mut b, |i, r, ca, cb| {
                (i, r.start, ca.len(), cb.len())
            })
        };
        let threaded = run(WorkPool::new(4));
        let inline = run(WorkPool::new(4).run_inline_below(1_000));
        assert_eq!(threaded, inline);
    }

    #[test]
    fn zip_chunks_mut_empty_input() {
        let pool = WorkPool::new(4);
        let out: Vec<()> = pool.zip_chunks_mut::<u64, u64, _, _>(&mut [], &mut [], |_, _, _, _| ());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn zip_chunks_mut_rejects_mismatched_lengths() {
        WorkPool::new(2).zip_chunks_mut(&mut [1u8, 2], &mut [1u8], |_, _, _, _| ());
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkPool>();
    }
}

//! Crash-safety tests for the serve loop: kill the run at a tick, recover
//! from (checkpoint + journal replay), and require the final report to be
//! **identical** to an uninterrupted run — counters, histograms, ladder
//! state, fault counters, everything except the `recovered` flag. The
//! deterministic [`ServiceModel::Fixed`] model makes the comparison exact
//! (the same caveat as simulation checkpoint/resume: wall-clock is the one
//! observable excluded, and under the fixed model there is none).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use kinetic_core::FaultPlan;
use rideshare_serve::{
    resume_serve, RecoveryConfig, ServeConfig, ServeLoop, ServeReport, ServiceModel, SloConfig,
};
use rideshare_sim::{SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, TripEvent, Workload};
use roadnet::CachedOracle;

fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips: 40,
                ..DemandConfig::default()
            },
            23,
        )
    })
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        vehicles: 10,
        seed,
        ..SimConfig::default()
    }
}

/// Bursty arrival stream over the shared pool: `(gap_s, burst)` pairs.
fn bursty_arrivals(bursts: &[(f64, u8)]) -> Vec<TripEvent> {
    let pool = &workload().trips;
    let mut t = 0.0;
    let mut id = 0u64;
    let mut out = Vec::new();
    for &(gap, size) in bursts {
        t += gap;
        for _ in 0..size {
            let template = &pool[id as usize % pool.len()];
            id += 1;
            out.push(TripEvent {
                id,
                source: template.source,
                destination: template.destination,
                time_seconds: t,
            });
        }
    }
    out
}

/// A fresh scratch directory per call, cleaned up by the caller.
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "serve_recovery_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn serve_config(fault: FaultPlan) -> ServeConfig {
    ServeConfig {
        slo: SloConfig {
            queue_capacity: 16,
            max_queue_wait_seconds: 8.0,
            degrade_compute_budget_seconds: 0.3,
            recover_healthy_ticks: 2,
            ..SloConfig::default()
        },
        model: ServiceModel::Fixed {
            tick_overhead_s: 0.05,
            per_request_s: 0.04,
        },
        record_batches: false,
        fault,
    }
}

/// Runs the uninterrupted reference through the *same* recoverable entry
/// point (different directory, kill disabled), so journal and torn-write
/// bookkeeping match the recovered run field for field.
fn reference_run(arrivals: &[TripEvent], fault: FaultPlan, every: u64) -> ServeReport {
    let w = workload();
    let oracle = CachedOracle::without_labels(&w.network);
    let sim = Simulation::new(&w.network, &oracle, sim_config(7));
    let mut serve = ServeLoop::new(
        sim,
        serve_config(FaultPlan {
            kill_at_tick: None,
            ..fault
        }),
    );
    let dir = scratch_dir("ref");
    let rc = RecoveryConfig {
        dir: dir.clone(),
        checkpoint_every_ticks: every,
    };
    let report = serve
        .run_recoverable(arrivals.iter().copied(), &rc)
        .expect("reference run does no recovery IO that can fail")
        .expect("reference run is never killed");
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Kills at `kill_tick`, recovers, and returns the recovered report.
fn kill_and_recover(
    arrivals: &[TripEvent],
    fault: FaultPlan,
    kill_tick: u64,
    every: u64,
    corrupt_checkpoint: bool,
) -> ServeReport {
    let w = workload();
    let oracle = CachedOracle::without_labels(&w.network);
    let dir = scratch_dir("kill");
    let rc = RecoveryConfig {
        dir: dir.clone(),
        checkpoint_every_ticks: every,
    };
    let fault = FaultPlan {
        kill_at_tick: Some(kill_tick),
        ..fault
    };
    let cfg = serve_config(fault);
    let sim = Simulation::new(&w.network, &oracle, sim_config(7));
    let mut serve = ServeLoop::new(sim, cfg);
    let killed = serve
        .run_recoverable(arrivals.iter().copied(), &rc)
        .expect("journaling must not fail");
    assert!(killed.is_none(), "kill at tick {kill_tick} must fire");
    drop(serve);

    if corrupt_checkpoint {
        let path = rc.checkpoint_path();
        if let Ok(mut bytes) = std::fs::read(&path) {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
        }
    }

    let report = resume_serve(
        &w.network,
        &oracle,
        sim_config(7),
        cfg,
        arrivals.iter().copied(),
        &rc,
    )
    .expect("recovery must succeed");
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// The recovered report with its `recovered` marker cleared, for direct
/// equality against the uninterrupted reference.
fn normalized(mut r: ServeReport) -> ServeReport {
    assert!(r.recovered, "resume_serve must mark the report recovered");
    r.recovered = false;
    r
}

#[test]
fn kill_and_recover_matches_uninterrupted_run_at_many_kill_ticks() {
    let arrivals = bursty_arrivals(&[
        (1.0, 20),
        (3.0, 28),
        (0.5, 12),
        (6.0, 25),
        (2.0, 18),
        (9.0, 30),
        (4.0, 9),
    ]);
    let fault = FaultPlan {
        seed: 11,
        oracle_spike_rate: 0.2,
        oracle_spike_seconds: 0.7,
        sink_saturation_rate: 0.1,
        ..FaultPlan::none()
    };
    let every = 4;
    let reference = reference_run(&arrivals, fault, every);
    assert!(reference.ticks > 12, "need a long enough run to kill into");
    assert_eq!(reference.guarantee_violations, 0);

    // Before the first checkpoint (journal-only recovery), exactly on a
    // checkpoint boundary, just after one, and deep into the run.
    for kill_tick in [2, every, every + 1, 11, reference.ticks - 1] {
        let recovered = kill_and_recover(&arrivals, fault, kill_tick, every, false);
        assert_eq!(
            normalized(recovered),
            reference,
            "kill at tick {kill_tick} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn recovery_survives_every_checkpoint_write_being_torn() {
    let arrivals = bursty_arrivals(&[(1.0, 16), (4.0, 24), (2.0, 20), (7.0, 22), (3.0, 10)]);
    let fault = FaultPlan {
        seed: 5,
        torn_checkpoint_rate: 1.0,
        ..FaultPlan::none()
    };
    let every = 3;
    let reference = reference_run(&arrivals, fault, every);
    assert!(
        reference.fault_torn_checkpoints > 0,
        "rate 1.0 must tear every dump: {reference:?}"
    );

    // With every checkpoint torn, recovery has only the journal: it
    // re-executes from scratch and must still land on the identical run.
    let recovered = kill_and_recover(&arrivals, fault, 10, every, false);
    assert_eq!(normalized(recovered), reference);
}

#[test]
fn corrupt_checkpoint_falls_back_to_fresh_start_and_still_matches() {
    let arrivals = bursty_arrivals(&[(1.0, 18), (5.0, 26), (2.0, 14), (8.0, 21)]);
    let fault = FaultPlan {
        seed: 3,
        ..FaultPlan::none()
    };
    let every = 3;
    let reference = reference_run(&arrivals, fault, every);

    // Kill late enough that a checkpoint exists, then flip a byte in it:
    // the checksum rejects the image, recovery restarts from the journal
    // head and the result is still bit-identical.
    let recovered = kill_and_recover(&arrivals, fault, 9, every, true);
    assert_eq!(normalized(recovered), reference);
}

#[test]
fn burst_at_watermark_sheds_each_bounced_arrival_exactly_once() {
    // Regression for the double-shed edge: a burst overruns the bounded
    // queue in the same ticks the ladder degrades, the run is killed right
    // after, and recovery must not re-offer (and re-shed) the arrivals
    // that already bounced — the arrival cursor skips *offered*, not
    // *admitted*, requests.
    let arrivals = bursty_arrivals(&[(1.0, 30), (0.2, 30), (0.2, 30), (10.0, 8), (5.0, 6)]);
    let fault = FaultPlan::none();
    let every = 2;
    let reference = reference_run(&arrivals, fault, every);
    assert!(
        reference.shed_queue_full > 0,
        "the burst must overrun the queue: {reference:?}"
    );
    assert!(
        reference.degraded_ticks > 0,
        "the burst must trip the ladder: {reference:?}"
    );

    // Kill in the middle of the burst window, right after bounces landed.
    for kill_tick in [2, 3, 4] {
        let recovered = kill_and_recover(&arrivals, fault, kill_tick, every, false);
        let recovered = normalized(recovered);
        assert_eq!(
            recovered.shed_queue_full, reference.shed_queue_full,
            "queue-full sheds double-counted after recovery at kill {kill_tick}"
        );
        assert_eq!(
            recovered.shed_stale, reference.shed_stale,
            "bounced arrivals re-shed as stale after recovery at kill {kill_tick}"
        );
        assert_eq!(recovered, reference);
    }
}

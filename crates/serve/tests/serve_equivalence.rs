//! Property tests for the serving layer.
//!
//! Two guarantees the serve mode must keep no matter how hostile the
//! arrival pattern:
//!
//! 1. **Exact accounting** — every offered request is either admitted or
//!    shed (with a reason), admitted splits into assigned + rejected, and
//!    the non-blocking sink's histograms agree with the loop counters to
//!    the last request, even under bursty arrivals that slam the bounded
//!    queue.
//! 2. **Bit-identical dispatch** — serving only changes *which* requests
//!    reach the dispatcher and *when*; replaying the recorded
//!    `(advance_to, batch)` dispatches through the offline
//!    `advance_all` + `submit_batch` API on a fresh simulation must
//!    reproduce every assignment, wait sample and report field exactly.

use std::sync::OnceLock;

use proptest::prelude::*;
use rideshare_serve::{ServeConfig, ServeLoop, ServiceModel, SloConfig};
use rideshare_sim::{SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, TripEvent, Workload};
use roadnet::CachedOracle;

/// One shared small city: workload generation is the expensive part and the
/// properties only need variety in arrivals and budgets, not in the map.
fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips: 40,
                ..DemandConfig::default()
            },
            23,
        )
    })
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        vehicles: 10,
        seed,
        ..SimConfig::default()
    }
}

/// Expands proptest-drawn `(gap_s, burst_size)` pairs into a sorted arrival
/// stream: bursts of up to 30 simultaneous requests separated by gaps of up
/// to 20 s — exactly the pattern that overruns a bounded queue.
fn bursty_arrivals(bursts: &[(f64, u8)]) -> Vec<TripEvent> {
    let pool = &workload().trips;
    let mut t = 0.0;
    let mut id = 0u64;
    let mut out = Vec::new();
    for &(gap, size) in bursts {
        t += gap;
        for _ in 0..size {
            let template = &pool[id as usize % pool.len()];
            id += 1;
            out.push(TripEvent {
                id,
                source: template.source,
                destination: template.destination,
                time_seconds: t,
            });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Accounting stays exact under arbitrary bursty load against
    /// arbitrary (tight) admission budgets. The serve loop also
    /// self-checks the sink aggregates against its own counters, so a
    /// lossy channel or a double-counted shed would panic here.
    #[test]
    fn shed_admitted_accounting_is_exact_under_bursts(
        bursts in prop::collection::vec((0.0f64..20.0, 0u8..30), 1..20),
        queue_capacity in 1usize..40,
        max_queue_wait in 0.5f64..15.0,
        per_request_cost in 0.001f64..0.8,
    ) {
        let w = workload();
        let arrivals = bursty_arrivals(&bursts);
        let offered = arrivals.len() as u64;
        let oracle = CachedOracle::without_labels(&w.network);
        let sim = Simulation::new(&w.network, &oracle, sim_config(7));
        let mut serve = ServeLoop::new(sim, ServeConfig {
            slo: SloConfig {
                queue_capacity,
                max_queue_wait_seconds: max_queue_wait,
                ..SloConfig::default()
            },
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.05,
                per_request_s: per_request_cost,
            },
            record_batches: false,
            ..ServeConfig::default()
        });
        let report = serve.run(arrivals.into_iter());

        prop_assert_eq!(report.offered, offered, "no arrival may vanish");
        prop_assert_eq!(
            report.offered,
            report.admitted + report.shed_queue_full + report.shed_stale
        );
        prop_assert_eq!(report.admitted, report.assigned + report.rejected);
        prop_assert_eq!(report.latency.count, report.admitted);
        prop_assert_eq!(report.assigned_latency.count, report.assigned);
        prop_assert!(report.queue_depth_max <= queue_capacity);
        prop_assert_eq!(report.guarantee_violations, 0u64);
    }

    /// Serve-mode dispatch is bit-identical to the offline batch API:
    /// replaying the admitted stream through `advance_all` +
    /// `submit_batch` on a fresh simulation reproduces the run exactly.
    #[test]
    fn serve_dispatch_is_bit_identical_to_offline_submit_batch(
        bursts in prop::collection::vec((0.0f64..15.0, 0u8..12), 1..12),
        seed in 0u64..1000,
        per_request_cost in 0.001f64..0.3,
    ) {
        let w = workload();
        let arrivals = bursty_arrivals(&bursts);
        let oracle = CachedOracle::without_labels(&w.network);

        let serve_sim = Simulation::new(&w.network, &oracle, sim_config(seed));
        let mut serve = ServeLoop::new(serve_sim, ServeConfig {
            slo: SloConfig { queue_capacity: 64, ..SloConfig::default() },
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.02,
                per_request_s: per_request_cost,
            },
            record_batches: true,
            ..ServeConfig::default()
        });
        let report = serve.run(arrivals.into_iter());

        // Offline replay of the recorded dispatches, same config and seed.
        let mut reference = Simulation::new(&w.network, &oracle, sim_config(seed));
        for (advance_to_s, batch) in serve.recorded_batches() {
            let until_m = reference.config().seconds_to_meters(*advance_to_s);
            reference.advance_all(until_m);
            reference.submit_batch(batch);
        }
        reference.drain();

        let serve_trace: Vec<_> = serve.sim().trace().iter().copied().collect();
        let reference_trace: Vec<_> = reference.trace().iter().copied().collect();
        prop_assert_eq!(serve_trace, reference_trace, "per-request traces diverged");

        let a = serve.sim().report();
        let b = reference.report();
        prop_assert_eq!(a.requests, b.requests);
        prop_assert_eq!(a.assigned, b.assigned);
        prop_assert_eq!(a.rejected, b.rejected);
        // `acrt_ms` is deliberately absent: it averages *wall-clock*
        // dispatch nanoseconds, the one observable that is not a function
        // of simulation state (same caveat as checkpoint/resume).
        prop_assert_eq!(a.mean_wait_seconds, b.mean_wait_seconds);
        prop_assert_eq!(a.mean_detour_ratio, b.mean_detour_ratio);
        prop_assert_eq!(a.guarantee_violations, b.guarantee_violations);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.fleet_distance_km, b.fleet_distance_km);
        prop_assert_eq!(serve.sim().wait_samples(), reference.wait_samples());

        // And the serve report agrees with the engine's own counters.
        prop_assert_eq!(report.admitted, a.requests);
        prop_assert_eq!(report.assigned, a.assigned);
    }
}

//! Property tests for the fault-injection layer: under an **arbitrary**
//! seeded [`FaultPlan`] — random oracle-spike, sink-saturation and
//! torn-checkpoint rates, with and without a mid-run kill — the serve
//! loop's exact-accounting invariant must hold, guarantees must stay
//! unviolated, and a killed run must recover to the bit-identical report
//! an uninterrupted run produces.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use kinetic_core::FaultPlan;
use proptest::prelude::*;
use rideshare_serve::{
    resume_serve, RecoveryConfig, ServeConfig, ServeLoop, ServiceModel, SloConfig,
};
use rideshare_sim::{SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, TripEvent, Workload};
use roadnet::CachedOracle;

fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips: 40,
                ..DemandConfig::default()
            },
            23,
        )
    })
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        vehicles: 10,
        seed,
        ..SimConfig::default()
    }
}

fn bursty_arrivals(bursts: &[(f64, u8)]) -> Vec<TripEvent> {
    let pool = &workload().trips;
    let mut t = 0.0;
    let mut id = 0u64;
    let mut out = Vec::new();
    for &(gap, size) in bursts {
        t += gap;
        for _ in 0..size {
            let template = &pool[id as usize % pool.len()];
            id += 1;
            out.push(TripEvent {
                id,
                source: template.source,
                destination: template.destination,
                time_seconds: t,
            });
        }
    }
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "serve_proptest_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exact accounting holds under every random fault plan, and a run
    /// killed at an arbitrary tick recovers to the identical report.
    #[test]
    fn accounting_is_exact_under_arbitrary_fault_plans_and_kills(
        bursts in prop::collection::vec((0.0f64..8.0, 0u8..20), 2..8),
        fault_seed in 0u64..10_000,
        spike_rate in 0.0f64..1.0,
        spike_seconds in 0.0f64..2.0,
        sink_rate in 0.0f64..1.0,
        torn_rate in 0.0f64..1.0,
        kill_fraction in 0.05f64..0.95,
        queue_capacity in 4usize..48,
        per_request_cost in 0.01f64..0.35,
        every in 1u64..8,
    ) {
        let w = workload();
        let arrivals = bursty_arrivals(&bursts);
        let offered = arrivals.len() as u64;
        let oracle = CachedOracle::without_labels(&w.network);
        let fault = FaultPlan {
            seed: fault_seed,
            oracle_spike_rate: spike_rate,
            oracle_spike_seconds: spike_seconds,
            sink_saturation_rate: sink_rate,
            torn_checkpoint_rate: torn_rate,
            ..FaultPlan::none()
        };
        let cfg = ServeConfig {
            slo: SloConfig {
                queue_capacity,
                max_queue_wait_seconds: 6.0,
                degrade_compute_budget_seconds: 0.4,
                recover_healthy_ticks: 2,
                ..SloConfig::default()
            },
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.05,
                per_request_s: per_request_cost,
            },
            record_batches: false,
            fault,
        };

        // Uninterrupted reference, through the recoverable entry point so
        // journal bookkeeping matches the recovered run.
        let ref_dir = scratch_dir("ref");
        let rc = RecoveryConfig { dir: ref_dir.clone(), checkpoint_every_ticks: every };
        let sim = Simulation::new(&w.network, &oracle, sim_config(7));
        let mut serve = ServeLoop::new(sim, cfg);
        let reference = serve
            .run_recoverable(arrivals.iter().copied(), &rc)
            .expect("journaling must not fail")
            .expect("no kill configured");
        std::fs::remove_dir_all(&ref_dir).ok();

        // Accounting invariants under the arbitrary fault schedule.
        prop_assert_eq!(reference.offered, offered, "no arrival may vanish");
        prop_assert_eq!(
            reference.offered,
            reference.admitted + reference.shed_queue_full + reference.shed_stale
        );
        prop_assert_eq!(reference.admitted, reference.assigned + reference.rejected);
        prop_assert_eq!(reference.guarantee_violations, 0u64);
        prop_assert_eq!(
            reference.dispatch_full + reference.dispatch_slack_pruned + reference.dispatch_greedy,
            reference.dispatch_ticks
        );

        // Kill at an arbitrary tick inside the run, recover, compare.
        let kill_tick = ((reference.ticks as f64 * kill_fraction) as u64).max(1);
        let kill_dir = scratch_dir("kill");
        let rc = RecoveryConfig { dir: kill_dir.clone(), checkpoint_every_ticks: every };
        let kill_cfg = ServeConfig {
            fault: FaultPlan { kill_at_tick: Some(kill_tick), ..fault },
            ..cfg
        };
        let sim = Simulation::new(&w.network, &oracle, sim_config(7));
        let mut serve = ServeLoop::new(sim, kill_cfg);
        let killed = serve
            .run_recoverable(arrivals.iter().copied(), &rc)
            .expect("journaling must not fail");
        prop_assert!(killed.is_none(), "kill at {kill_tick} <= {} must fire", reference.ticks);

        let mut recovered = resume_serve(
            &w.network,
            &oracle,
            sim_config(7),
            kill_cfg,
            arrivals.iter().copied(),
            &rc,
        )
        .expect("recovery must succeed");
        std::fs::remove_dir_all(&kill_dir).ok();

        prop_assert!(recovered.recovered);
        recovered.recovered = false;
        prop_assert_eq!(
            recovered,
            reference,
            "kill at tick {} under fault plan {:?} diverged",
            kill_tick,
            fault
        );
    }
}

//! Online dispatch serving mode for the ridesharing engine.
//!
//! Everything up to this crate *replays* demand: `paper_replay` feeds the
//! next window of requests as fast as the dispatcher can chew them, so the
//! measured latency is pure matching compute and queueing is invisible by
//! construction. This crate *serves* demand instead — the three pieces a
//! deployment needs between a request stream and the matching engine:
//!
//! * [`arrival`] — open-loop arrival processes ([`PoissonArrivals`],
//!   [`TraceArrivals`]) whose rate is independent of the service rate;
//! * [`server`] — the [`ServeLoop`]: a bounded ingress queue, SLO-gated
//!   admission (backpressure + stale shedding) and fixed dispatch ticks
//!   driven by a virtual clock that charges the dispatcher's compute cost;
//! * [`sink`] — the [`NonBlockingSink`]: serving-grade observability
//!   (latency histograms, queue-depth and shed gauges) aggregated on a
//!   worker thread behind a channel so the hot loop never blocks on IO;
//! * [`recovery`] — crash safety: a write-ahead dispatch journal plus
//!   periodic checkpoints ([`ServeLoop::run_recoverable`]), and
//!   [`resume_serve`] to pick a killed run back up with accounting
//!   provably intact.
//!
//! The loop also degrades gracefully instead of falling over: under
//! compute or queue pressure it steps the planner down a
//! [`kinetic_core::DispatchEffort`] level (full → slack-pruned → greedy)
//! with hysteresis on recovery, and every injected fault from a seeded
//! [`kinetic_core::FaultPlan`] — oracle spikes, sink saturation, torn
//! checkpoint writes, kills — is deterministic and counted on the
//! [`ServeReport`].
//!
//! The serve loop drives the identical [`rideshare_sim::Simulation`] batch
//! API the offline replay uses, so its assignments are bit-identical to a
//! `submit_batch` replay of the same admitted stream — serving changes
//! *which* requests reach the dispatcher (admission) and *when* (ticks),
//! never what the dispatcher decides.
//!
//! The `rideshare-serve` binary wraps the loop for the command line; the
//! capacity sweep in `rideshare-bench` (`serve_sweep`) walks an arrival-rate
//! ladder over it and commits the knee point to `BENCH_serve.json`.

pub mod arrival;
pub mod recovery;
pub mod server;
pub mod sink;

pub use arrival::{PoissonArrivals, TraceArrivals};
pub use recovery::{resume_serve, RecoveryConfig};
pub use server::{ServeConfig, ServeLoop, ServeReport, ServiceModel, SloConfig};
pub use sink::{MetricEvent, NonBlockingSink, ShedReason, SinkOutput};

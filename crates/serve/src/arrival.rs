//! Open-loop arrival processes.
//!
//! A serving harness must decouple *how fast requests arrive* from *how fast
//! the dispatcher can match them* — a closed-loop replay (the `paper_replay`
//! harness) submits the next request only after the previous one was
//! handled, so it can never observe queueing. The iterators here generate
//! arrival-stamped [`TripEvent`]s independently of the service rate: the
//! serve loop consumes them against its own virtual clock and the queue
//! between the two is where overload becomes visible.
//!
//! Both processes draw origin/destination pairs from a *pool* of trips
//! (typically a generated [`rideshare_workload::Workload`] stream), cycling
//! through it when they need more arrivals than the pool holds, and re-id
//! the emitted events sequentially from 1 so every arrival keeps a unique
//! [`TripId`](kinetic_core::TripId).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rideshare_workload::TripEvent;

/// Memoryless (Poisson) arrivals at a fixed mean rate.
///
/// Inter-arrival gaps are exponential with mean `1 / rate`, produced by
/// inverse-transform sampling from the process's own seeded RNG, so a given
/// `(pool, rate, horizon, seed)` always yields the identical stream.
///
/// ```
/// use rideshare_serve::arrival::PoissonArrivals;
/// use rideshare_workload::{CityConfig, DemandConfig, Workload};
///
/// let w = Workload::generate(&CityConfig::small(), &DemandConfig::default(), 7);
/// let arrivals: Vec<_> = PoissonArrivals::new(&w.trips, 2.0, 60.0, 42).collect();
/// // ~2 req/s over 60 s ≈ 120 arrivals, each timestamped inside the horizon.
/// assert!(arrivals.len() > 60 && arrivals.len() < 200);
/// assert!(arrivals.iter().all(|t| t.time_seconds < 60.0));
/// let again: Vec<_> = PoissonArrivals::new(&w.trips, 2.0, 60.0, 42).collect();
/// assert_eq!(arrivals, again); // fully deterministic per seed
/// ```
#[derive(Debug)]
pub struct PoissonArrivals<'a> {
    pool: &'a [TripEvent],
    rate_per_second: f64,
    horizon_seconds: f64,
    rng: StdRng,
    clock_s: f64,
    emitted: usize,
}

impl<'a> PoissonArrivals<'a> {
    /// Creates a Poisson process emitting `rate_per_second` arrivals per
    /// simulated second on average until `horizon_seconds`, sampling
    /// origin/destination pairs from `pool` (cyclically).
    pub fn new(
        pool: &'a [TripEvent],
        rate_per_second: f64,
        horizon_seconds: f64,
        seed: u64,
    ) -> Self {
        PoissonArrivals {
            pool,
            rate_per_second,
            horizon_seconds,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED_AAAA_1234_5678),
            clock_s: 0.0,
            emitted: 0,
        }
    }
}

impl Iterator for PoissonArrivals<'_> {
    type Item = TripEvent;

    fn next(&mut self) -> Option<TripEvent> {
        if self.pool.is_empty() || self.rate_per_second <= 0.0 {
            return None;
        }
        // Inverse-transform exponential gap; 1 - U ∈ (0, 1] keeps ln finite.
        let u = self.rng.gen::<f64>();
        self.clock_s += -(1.0 - u).ln() / self.rate_per_second;
        if self.clock_s >= self.horizon_seconds {
            return None;
        }
        let template = self.pool.get(self.emitted % self.pool.len())?;
        self.emitted += 1;
        Some(TripEvent {
            id: self.emitted as u64,
            source: template.source,
            destination: template.destination,
            time_seconds: self.clock_s,
        })
    }
}

/// Trace-driven arrivals: the pool's own submission times, optionally
/// compressed by a speedup factor to raise the offered load.
///
/// A speedup of 1.0 replays the trace's empirical arrival pattern verbatim
/// (bursts included); a speedup of `k` divides every timestamp by `k`, so
/// the same demand arrives `k`× faster. Events are re-id'd sequentially.
///
/// ```
/// use rideshare_serve::arrival::TraceArrivals;
/// use rideshare_workload::TripEvent;
///
/// let pool = vec![
///     TripEvent { id: 9, source: 0, destination: 1, time_seconds: 10.0 },
///     TripEvent { id: 7, source: 1, destination: 0, time_seconds: 30.0 },
/// ];
/// let fast: Vec<_> = TraceArrivals::new(&pool, 2.0).collect();
/// assert_eq!(fast[0].time_seconds, 5.0);
/// assert_eq!(fast[1].time_seconds, 15.0);
/// assert_eq!((fast[0].id, fast[1].id), (1, 2));
/// ```
#[derive(Debug)]
pub struct TraceArrivals<'a> {
    pool: &'a [TripEvent],
    speedup: f64,
    next: usize,
}

impl<'a> TraceArrivals<'a> {
    /// Creates a trace replay over `pool` with timestamps divided by
    /// `speedup` (values below a tiny epsilon are treated as 1.0).
    pub fn new(pool: &'a [TripEvent], speedup: f64) -> Self {
        TraceArrivals {
            pool,
            speedup: if speedup > 1e-12 { speedup } else { 1.0 },
            next: 0,
        }
    }
}

impl Iterator for TraceArrivals<'_> {
    type Item = TripEvent;

    fn next(&mut self) -> Option<TripEvent> {
        let template = self.pool.get(self.next)?;
        self.next += 1;
        Some(TripEvent {
            id: self.next as u64,
            source: template.source,
            destination: template.destination,
            time_seconds: template.time_seconds / self.speedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<TripEvent> {
        (0..n)
            .map(|i| TripEvent {
                id: i as u64 + 100,
                source: i as u32,
                destination: (i + 1) as u32,
                time_seconds: i as f64 * 10.0,
            })
            .collect()
    }

    #[test]
    fn poisson_rate_is_approximately_honoured() {
        let p = pool(10);
        let n = PoissonArrivals::new(&p, 50.0, 100.0, 1).count();
        // 50 req/s over 100 s = 5000 expected; 5σ ≈ 354.
        assert!((4_600..5_400).contains(&n), "n = {n}");
    }

    #[test]
    fn poisson_times_are_sorted_unique_ids_cycle_pool() {
        let p = pool(3);
        let arrivals: Vec<_> = PoissonArrivals::new(&p, 5.0, 20.0, 9).collect();
        assert!(arrivals.len() > 3, "must cycle through the pool");
        for (i, pair) in arrivals.windows(2).enumerate() {
            assert!(pair[0].time_seconds <= pair[1].time_seconds, "at {i}");
        }
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.id, i as u64 + 1);
            assert_eq!(a.source, p[i % 3].source);
        }
    }

    #[test]
    fn empty_pool_or_zero_rate_yields_nothing() {
        let p = pool(4);
        assert_eq!(PoissonArrivals::new(&[], 5.0, 10.0, 1).count(), 0);
        assert_eq!(PoissonArrivals::new(&p, 0.0, 10.0, 1).count(), 0);
        assert_eq!(PoissonArrivals::new(&p, -1.0, 10.0, 1).count(), 0);
    }

    #[test]
    fn trace_speedup_compresses_times() {
        let p = pool(5);
        let a: Vec<_> = TraceArrivals::new(&p, 4.0).collect();
        assert_eq!(a.len(), 5);
        assert_eq!(a[4].time_seconds, 10.0);
        // Degenerate speedup falls back to verbatim replay.
        let b: Vec<_> = TraceArrivals::new(&p, 0.0).collect();
        assert_eq!(b[4].time_seconds, 40.0);
    }
}

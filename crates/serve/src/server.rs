//! The serve loop: SLO-gated admission in front of the dispatch engine.
//!
//! [`ServeLoop`] turns the replay engine into an online service. Requests
//! arrive open-loop (see [`crate::arrival`]) into a **bounded ingress
//! queue**; a dispatch tick fires at fixed virtual-time boundaries whenever
//! the dispatcher is free, draining the queue through the exact same
//! [`Simulation::advance_all`] + [`Simulation::submit_batch`] calls the
//! offline replay uses. The dispatcher's compute cost — measured wall-clock
//! or a fixed synthetic model — is charged to a virtual `server_free` clock,
//! so when offered load exceeds dispatch capacity the queue grows, latency
//! diverges and the admission controller starts shedding: arrivals bounce
//! off a full queue (backpressure) and queued requests older than the
//! admission budget are dropped before dispatch (stale shedding). Both are
//! counted exactly; `offered = admitted + shed` always holds.
//!
//! Because every dispatch is a recorded `(advance_to, batch)` pair replayed
//! through the public batch API, serve-mode assignments are bit-identical
//! to an offline [`Simulation::submit_batch`] replay of the same admitted
//! stream — `tests/serve_equivalence.rs` proves it property-style.

use std::collections::VecDeque;
use std::io::Write;
use std::time::Instant;

use kinetic_core::LatencySummary;
use rideshare_sim::Simulation;
use rideshare_workload::TripEvent;

use crate::sink::{MetricEvent, NonBlockingSink, ShedReason};

/// Admission-control budgets for the serve loop.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Virtual seconds between dispatch tick boundaries.
    pub tick_seconds: f64,
    /// p99 admission-to-assignment latency budget (virtual seconds) the
    /// deployment promises; [`ServeReport::meets_slo`] checks against it.
    pub p99_budget_seconds: f64,
    /// Bounded ingress queue size; arrivals beyond it are shed
    /// ([`ShedReason::QueueFull`]).
    pub queue_capacity: usize,
    /// Requests queued longer than this before their dispatch tick are
    /// dropped ([`ShedReason::Stale`]) — their match would arrive too late
    /// to honour the paper's waiting-time guarantee anyway.
    pub max_queue_wait_seconds: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            tick_seconds: 1.0,
            p99_budget_seconds: 3.0,
            queue_capacity: 4_096,
            max_queue_wait_seconds: 10.0,
        }
    }
}

/// How a dispatch tick's compute cost is charged to the virtual clock.
#[derive(Debug, Clone, Copy)]
pub enum ServiceModel {
    /// Charge the measured wall-clock cost of `advance_all` +
    /// `submit_batch`. This is what the capacity sweep uses: the knee it
    /// finds is this machine's real sustainable rate.
    Measured,
    /// Charge `tick_overhead_s + per_request_s × batch` virtual seconds.
    /// Fully deterministic — property tests use it so admission decisions
    /// (and therefore the admitted stream) are reproducible bit-for-bit.
    Fixed {
        /// Fixed cost per dispatch tick (virtual seconds).
        tick_overhead_s: f64,
        /// Additional cost per dispatched request (virtual seconds).
        per_request_s: f64,
    },
}

/// Everything the serve loop needs beyond the wrapped [`Simulation`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission budgets.
    pub slo: SloConfig,
    /// Compute-cost model.
    pub model: ServiceModel,
    /// Record every `(advance_to, batch)` dispatch for offline replay
    /// (equivalence testing); costs memory proportional to admitted load.
    pub record_batches: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slo: SloConfig::default(),
            model: ServiceModel::Measured,
            record_batches: false,
        }
    }
}

/// Online serving wrapper around a [`Simulation`]; see the module docs.
///
/// ```
/// use rideshare_serve::{PoissonArrivals, ServeConfig, ServeLoop, ServiceModel};
/// use rideshare_sim::{SimConfig, Simulation};
/// use rideshare_workload::{CityConfig, DemandConfig, Workload};
/// use roadnet::CachedOracle;
///
/// let w = Workload::generate(&CityConfig::small(), &DemandConfig::default(), 3);
/// let oracle = CachedOracle::without_labels(&w.network);
/// let sim = Simulation::new(&w.network, &oracle, SimConfig { vehicles: 10, ..SimConfig::default() });
/// let cfg = ServeConfig {
///     model: ServiceModel::Fixed { tick_overhead_s: 0.01, per_request_s: 0.001 },
///     ..ServeConfig::default()
/// };
/// let mut serve = ServeLoop::new(sim, cfg);
/// let report = serve.run(PoissonArrivals::new(&w.trips, 1.0, 30.0, 7));
/// // Exact accounting: every offered request is admitted or shed, never lost.
/// assert_eq!(report.offered, report.admitted + report.shed());
/// assert_eq!(report.admitted, report.assigned + report.rejected);
/// ```
pub struct ServeLoop<'a> {
    sim: Simulation<'a>,
    cfg: ServeConfig,
    recorded: Vec<(f64, Vec<TripEvent>)>,
}

impl<'a> ServeLoop<'a> {
    /// Wraps a freshly built simulation in the serving harness.
    pub fn new(sim: Simulation<'a>, cfg: ServeConfig) -> Self {
        ServeLoop {
            sim,
            cfg,
            recorded: Vec::new(),
        }
    }

    /// The wrapped simulation (trace, report and fleet inspection).
    pub fn sim(&self) -> &Simulation<'a> {
        &self.sim
    }

    /// The `(advance_to_seconds, batch)` dispatches recorded when
    /// [`ServeConfig::record_batches`] is set, in dispatch order. Replaying
    /// them through `advance_all` + `submit_batch` on a fresh simulation
    /// reproduces the serve run's assignments bit-for-bit.
    pub fn recorded_batches(&self) -> &[(f64, Vec<TripEvent>)] {
        &self.recorded
    }

    /// Serves the arrival stream to completion without an event trace.
    pub fn run(&mut self, arrivals: impl Iterator<Item = TripEvent>) -> ServeReport {
        self.run_with_writer(arrivals, None)
    }

    /// Serves the arrival stream, optionally streaming a per-event CSV
    /// trace through the non-blocking sink's worker thread.
    pub fn run_with_writer(
        &mut self,
        arrivals: impl Iterator<Item = TripEvent>,
        writer: Option<Box<dyn Write + Send>>,
    ) -> ServeReport {
        let sink = NonBlockingSink::new(writer);
        let slo = self.cfg.slo;
        let tick_s = slo.tick_seconds.max(1e-6);
        let mut arrivals = arrivals.peekable();
        let mut queue: VecDeque<TripEvent> = VecDeque::new();
        let mut server_free = 0.0_f64;
        let mut offered = 0u64;
        let mut admitted = 0u64;
        let mut assigned = 0u64;
        let mut rejected = 0u64;
        let mut shed_queue_full = 0u64;
        let mut shed_stale = 0u64;
        let mut ticks = 0u64;
        let mut dispatch_ticks = 0u64;
        let mut tick_end = 0.0_f64;

        loop {
            ticks += 1;
            tick_end += tick_s;
            // Ingest every arrival inside this tick's window. The queue is
            // the backpressure boundary: a full queue bounces the arrival
            // instead of letting the backlog grow without limit.
            while arrivals.peek().is_some_and(|t| t.time_seconds < tick_end) {
                let trip = arrivals.next().expect("peeked");
                offered += 1;
                if queue.len() >= slo.queue_capacity {
                    shed_queue_full += 1;
                    sink.record(MetricEvent::Shed {
                        reason: ShedReason::QueueFull,
                    });
                } else {
                    queue.push_back(trip);
                }
            }
            sink.record(MetricEvent::QueueDepth { depth: queue.len() });

            // The dispatcher is a single (virtual) server: while it is
            // still busy with an earlier batch, this tick fires no
            // dispatch and the queue keeps building — that is exactly the
            // overload signal the sweep looks for.
            if server_free <= tick_end && !queue.is_empty() {
                // Arrivals enter in time order, so stale requests sit at
                // the front.
                while queue
                    .front()
                    .is_some_and(|t| tick_end - t.time_seconds > slo.max_queue_wait_seconds)
                {
                    queue.pop_front();
                    shed_stale += 1;
                    sink.record(MetricEvent::Shed {
                        reason: ShedReason::Stale,
                    });
                }
                if !queue.is_empty() {
                    let batch: Vec<TripEvent> = queue.drain(..).collect();
                    if self.cfg.record_batches {
                        self.recorded.push((tick_end, batch.clone()));
                    }
                    let wall = Instant::now();
                    let until_m = self.sim.config().seconds_to_meters(tick_end);
                    self.sim.advance_all(until_m);
                    let outcomes = self.sim.submit_batch(&batch);
                    let cost_s = match self.cfg.model {
                        ServiceModel::Measured => wall.elapsed().as_secs_f64(),
                        ServiceModel::Fixed {
                            tick_overhead_s,
                            per_request_s,
                        } => tick_overhead_s + per_request_s * batch.len() as f64,
                    };
                    sink.record(MetricEvent::TickCompute {
                        seconds: cost_s,
                        batch: batch.len(),
                    });
                    dispatch_ticks += 1;
                    server_free = tick_end + cost_s;
                    for (trip, outcome) in batch.iter().zip(&outcomes) {
                        admitted += 1;
                        if outcome.is_assigned() {
                            assigned += 1;
                        } else {
                            rejected += 1;
                        }
                        sink.record(MetricEvent::Latency {
                            seconds: server_free - trip.time_seconds,
                            assigned: outcome.is_assigned(),
                        });
                    }
                }
            }

            if arrivals.peek().is_none() && queue.is_empty() {
                break;
            }
        }

        // Let committed trips play out so guarantee accounting is final.
        self.sim.drain();
        let sim_report = self.sim.report();
        let out = sink.finish();

        // The channel is lossless and the loop counters are exact, so the
        // two views of the run must agree to the last request.
        assert_eq!(offered, admitted + shed_queue_full + shed_stale);
        assert_eq!(admitted, assigned + rejected);
        assert_eq!(out.latency.count(), admitted);
        assert_eq!(
            out.shed_queue_full + out.shed_stale,
            shed_queue_full + shed_stale
        );

        ServeReport {
            offered,
            admitted,
            assigned,
            rejected,
            shed_queue_full,
            shed_stale,
            ticks,
            dispatch_ticks,
            horizon_seconds: tick_end,
            latency: out.latency.summary(),
            assigned_latency: out.assigned_latency.summary(),
            tick_compute: out.tick_compute.summary(),
            queue_depth_max: out.queue_depth_max,
            queue_depth_mean: out.queue_depth_mean(),
            guarantee_violations: sim_report.guarantee_violations,
            completed: sim_report.completed,
            mean_wait_seconds: sim_report.mean_wait_seconds,
            mean_detour_ratio: sim_report.mean_detour_ratio,
            trace_lines: out.trace_lines,
            io_errors: out.io_errors,
        }
    }
}

/// Everything one serve run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests that reached the dispatcher.
    pub admitted: u64,
    /// Admitted requests matched to a vehicle.
    pub assigned: u64,
    /// Admitted requests no vehicle could serve within the guarantees.
    pub rejected: u64,
    /// Arrivals bounced off the full ingress queue.
    pub shed_queue_full: u64,
    /// Queued requests dropped for exceeding the admission wait budget.
    pub shed_stale: u64,
    /// Tick boundaries the loop crossed.
    pub ticks: u64,
    /// Ticks that actually dispatched a batch.
    pub dispatch_ticks: u64,
    /// Virtual time at the last tick boundary.
    pub horizon_seconds: f64,
    /// Admission-to-assignment latency over every admitted request.
    pub latency: LatencySummary,
    /// Latency over assigned requests only.
    pub assigned_latency: LatencySummary,
    /// Per-tick dispatch compute cost.
    pub tick_compute: LatencySummary,
    /// Deepest ingress queue observed at a tick boundary.
    pub queue_depth_max: usize,
    /// Mean ingress queue depth over tick boundaries.
    pub queue_depth_mean: f64,
    /// Service-guarantee violations (must be zero — Sec. IV invariant).
    pub guarantee_violations: u64,
    /// Passengers delivered by the end of the drain.
    pub completed: u64,
    /// Mean realised waiting time (seconds) of served pickups.
    pub mean_wait_seconds: f64,
    /// Mean realised detour ratio of delivered passengers.
    pub mean_detour_ratio: f64,
    /// Event-trace lines written (0 without a writer).
    pub trace_lines: u64,
    /// Event-trace write failures.
    pub io_errors: u64,
}

impl ServeReport {
    /// Total shed requests, both reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_stale
    }

    /// Shed fraction of offered load (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// Assigned fraction of admitted load.
    pub fn service_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.assigned as f64 / self.admitted as f64
        }
    }

    /// Whether the run held the serving objective: p99 latency within
    /// budget, shedding below 0.1 % and zero guarantee violations.
    pub fn meets_slo(&self, slo: &SloConfig) -> bool {
        self.latency.p99_s <= slo.p99_budget_seconds
            && self.shed_rate() <= 1e-3
            && self.guarantee_violations == 0
    }

    /// Serialises the report as a JSON object (no trailing newline),
    /// optionally tagged with the offered arrival rate.
    pub fn json_object(&self, rate_per_second: Option<f64>, indent: &str) -> String {
        let mut s = String::from("{\n");
        let field = |s: &mut String, key: &str, value: String| {
            s.push_str(indent);
            s.push_str("  \"");
            s.push_str(key);
            s.push_str("\": ");
            s.push_str(&value);
            s.push_str(",\n");
        };
        if let Some(rate) = rate_per_second {
            field(&mut s, "rate_per_second", format!("{rate}"));
        }
        field(&mut s, "offered", self.offered.to_string());
        field(&mut s, "admitted", self.admitted.to_string());
        field(&mut s, "assigned", self.assigned.to_string());
        field(&mut s, "rejected", self.rejected.to_string());
        field(&mut s, "shed_queue_full", self.shed_queue_full.to_string());
        field(&mut s, "shed_stale", self.shed_stale.to_string());
        field(&mut s, "shed_rate", format!("{:.6}", self.shed_rate()));
        field(&mut s, "ticks", self.ticks.to_string());
        field(&mut s, "dispatch_ticks", self.dispatch_ticks.to_string());
        field(
            &mut s,
            "horizon_seconds",
            format!("{:.3}", self.horizon_seconds),
        );
        for (name, summary) in [
            ("latency", &self.latency),
            ("assigned_latency", &self.assigned_latency),
            ("tick_compute", &self.tick_compute),
        ] {
            field(
                &mut s,
                name,
                format!(
                    "{{\"count\": {}, \"mean_s\": {:.6}, \"p50_s\": {:.6}, \"p90_s\": {:.6}, \"p99_s\": {:.6}, \"p999_s\": {:.6}, \"max_s\": {:.6}}}",
                    summary.count,
                    summary.mean_s,
                    summary.p50_s,
                    summary.p90_s,
                    summary.p99_s,
                    summary.p999_s,
                    summary.max_s
                ),
            );
        }
        field(&mut s, "queue_depth_max", self.queue_depth_max.to_string());
        field(
            &mut s,
            "queue_depth_mean",
            format!("{:.3}", self.queue_depth_mean),
        );
        field(
            &mut s,
            "guarantee_violations",
            self.guarantee_violations.to_string(),
        );
        field(&mut s, "completed", self.completed.to_string());
        field(
            &mut s,
            "mean_wait_seconds",
            format!("{:.3}", self.mean_wait_seconds),
        );
        field(
            &mut s,
            "mean_detour_ratio",
            format!("{:.4}", self.mean_detour_ratio),
        );
        field(
            &mut s,
            "service_rate",
            format!("{:.6}", self.service_rate()),
        );
        // Replace the trailing comma of the final field.
        s.truncate(s.len() - 2);
        s.push('\n');
        s.push_str(indent);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::PoissonArrivals;
    use rideshare_sim::{SimConfig, Simulation};
    use rideshare_workload::{CityConfig, DemandConfig, Workload};
    use roadnet::CachedOracle;

    fn small_workload() -> Workload {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips: 60,
                ..DemandConfig::default()
            },
            11,
        )
    }

    fn sim<'a>(w: &'a Workload, oracle: &'a CachedOracle) -> Simulation<'a> {
        Simulation::new(
            &w.network,
            oracle,
            SimConfig {
                vehicles: 12,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn underload_sheds_nothing_and_latency_stays_near_tick() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.01,
                per_request_s: 0.001,
            },
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 2.0, 60.0, 5));
        assert!(report.offered > 0);
        assert_eq!(report.shed(), 0, "underload must not shed");
        assert_eq!(report.offered, report.admitted);
        // Worst case: arrive right after a tick boundary, dispatched at the
        // next one → latency < tick + cost ≪ 2 s in underload.
        assert!(report.latency.max_s < 2.0, "max = {}", report.latency.max_s);
        assert_eq!(report.guarantee_violations, 0);
    }

    #[test]
    fn overload_sheds_and_reports_queue_growth() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            slo: SloConfig {
                queue_capacity: 16,
                max_queue_wait_seconds: 5.0,
                ..SloConfig::default()
            },
            // Each request costs 0.5 s virtual compute: anything beyond
            // 2 req/s is hopeless overload.
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.1,
                per_request_s: 0.5,
            },
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 20.0, 30.0, 5));
        assert!(report.shed() > 0, "overload must shed: {report:?}");
        assert_eq!(report.offered, report.admitted + report.shed());
        assert!(report.queue_depth_max >= 16, "queue must hit capacity");
        assert!(!report.meets_slo(&cfg.slo));
    }

    #[test]
    fn recorded_batches_cover_exactly_the_admitted_stream() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.05,
                per_request_s: 0.02,
            },
            record_batches: true,
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 4.0, 40.0, 9));
        let recorded: u64 = serve
            .recorded_batches()
            .iter()
            .map(|(_, b)| b.len() as u64)
            .sum();
        assert_eq!(recorded, report.admitted);
        // Dispatch times strictly increase batch to batch.
        for pair in serve.recorded_batches().windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn json_object_is_balanced_and_tagged() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let mut serve = ServeLoop::new(
            sim(&w, &oracle),
            ServeConfig {
                model: ServiceModel::Fixed {
                    tick_overhead_s: 0.01,
                    per_request_s: 0.001,
                },
                ..ServeConfig::default()
            },
        );
        let report = serve.run(PoissonArrivals::new(&w.trips, 2.0, 20.0, 1));
        let json = report.json_object(Some(3.5), "  ");
        assert!(json.contains("\"rate_per_second\": 3.5"));
        assert!(json.contains("\"guarantee_violations\": 0"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balanced:\n{json}"
        );
        assert!(!json.contains(",\n  }"), "no trailing comma");
    }
}

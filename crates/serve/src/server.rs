//! The serve loop: SLO-gated admission in front of the dispatch engine.
//!
//! [`ServeLoop`] turns the replay engine into an online service. Requests
//! arrive open-loop (see [`crate::arrival`]) into a **bounded ingress
//! queue**; a dispatch tick fires at fixed virtual-time boundaries whenever
//! the dispatcher is free, draining the queue through the exact same
//! [`Simulation::advance_all`] + [`Simulation::submit_batch`] calls the
//! offline replay uses. The dispatcher's compute cost — measured wall-clock
//! or a fixed synthetic model — is charged to a virtual `server_free` clock,
//! so when offered load exceeds dispatch capacity the queue grows, latency
//! diverges and the admission controller starts shedding: arrivals bounce
//! off a full queue (backpressure) and queued requests older than the
//! admission budget are dropped before dispatch (stale shedding). Both are
//! counted exactly; `offered = admitted + shed` always holds.
//!
//! # Graceful degradation
//!
//! Before shedding, the loop trades match quality for throughput. When a
//! dispatch tick blows its compute budget or the ingress queue crosses the
//! degradation watermark, the planner steps down one
//! [`DispatchEffort`] level (full kinetic insertion → slack-pruned →
//! greedy nearest-feasible); after [`SloConfig::recover_healthy_ticks`]
//! consecutive calm ticks it steps back up one level (hysteresis, so the
//! ladder does not flap at the boundary). Every transition and every
//! degraded tick is counted on the [`ServeReport`], and
//! [`ServeReport::meets_slo`] treats excessive degraded service as an SLO
//! miss even when latency stayed inside budget.
//!
//! # Fault injection
//!
//! [`ServeConfig::fault`] carries a seeded [`FaultPlan`]. The loop consults
//! it at fixed points — oracle latency spikes inflate the tick's compute
//! cost, sink saturation drops metric events (counted, never silently) —
//! so chaos runs are bit-reproducible from the seed alone. Kill/recover
//! faults are honoured only by the crash-safe entry point in
//! [`crate::recovery`]; plain [`ServeLoop::run`] ignores `kill_at_tick`.
//!
//! Because every dispatch is a recorded `(advance_to, batch)` pair replayed
//! through the public batch API, serve-mode assignments are bit-identical
//! to an offline [`Simulation::submit_batch`] replay of the same admitted
//! stream — `tests/serve_equivalence.rs` proves it property-style.

use std::collections::VecDeque;
use std::io::Write;
use std::iter::Peekable;
use std::time::Instant;

use kinetic_core::{DispatchEffort, FaultPlan, LatencySummary};
use rideshare_sim::Simulation;
use rideshare_workload::TripEvent;
use roadnet::RoadNetError;

use crate::recovery::RecoveryDriver;
use crate::sink::{MetricEvent, NonBlockingSink, ShedReason};

/// Admission-control budgets for the serve loop.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Virtual seconds between dispatch tick boundaries.
    pub tick_seconds: f64,
    /// p99 admission-to-assignment latency budget (virtual seconds) the
    /// deployment promises; [`ServeReport::meets_slo`] checks against it.
    pub p99_budget_seconds: f64,
    /// Bounded ingress queue size; arrivals beyond it are shed
    /// ([`ShedReason::QueueFull`]).
    pub queue_capacity: usize,
    /// Requests queued longer than this before their dispatch tick are
    /// dropped ([`ShedReason::Stale`]) — their match would arrive too late
    /// to honour the paper's waiting-time guarantee anyway.
    pub max_queue_wait_seconds: f64,
    /// A dispatch tick costing more than this (virtual seconds) is a
    /// stress signal: the planner steps down one [`DispatchEffort`] level.
    pub degrade_compute_budget_seconds: f64,
    /// Ingress queue depth at the tick boundary that counts as stress
    /// even before compute blows up.
    pub degrade_queue_watermark: usize,
    /// Consecutive calm ticks (no stress signal) before the planner steps
    /// back **up** one level — the hysteresis that stops ladder flapping.
    pub recover_healthy_ticks: u64,
    /// Largest fraction of ticks allowed to run degraded before
    /// [`ServeReport::meets_slo`] fails the run anyway.
    pub max_degraded_fraction: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            tick_seconds: 1.0,
            p99_budget_seconds: 3.0,
            queue_capacity: 4_096,
            max_queue_wait_seconds: 10.0,
            degrade_compute_budget_seconds: 1.0,
            degrade_queue_watermark: 2_048,
            recover_healthy_ticks: 3,
            max_degraded_fraction: 0.1,
        }
    }
}

/// How a dispatch tick's compute cost is charged to the virtual clock.
#[derive(Debug, Clone, Copy)]
pub enum ServiceModel {
    /// Charge the measured wall-clock cost of `advance_all` +
    /// `submit_batch`. This is what the capacity sweep uses: the knee it
    /// finds is this machine's real sustainable rate.
    Measured,
    /// Charge `tick_overhead_s + per_request_s × batch` virtual seconds.
    /// Fully deterministic — property tests use it so admission decisions
    /// (and therefore the admitted stream) are reproducible bit-for-bit.
    Fixed {
        /// Fixed cost per dispatch tick (virtual seconds).
        tick_overhead_s: f64,
        /// Additional cost per dispatched request (virtual seconds).
        per_request_s: f64,
    },
}

/// Everything the serve loop needs beyond the wrapped [`Simulation`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission budgets.
    pub slo: SloConfig,
    /// Compute-cost model.
    pub model: ServiceModel,
    /// Record every `(advance_to, batch)` dispatch for offline replay
    /// (equivalence testing); costs memory proportional to admitted load.
    pub record_batches: bool,
    /// Seeded fault schedule; [`FaultPlan::none`] injects nothing.
    pub fault: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slo: SloConfig::default(),
            model: ServiceModel::Measured,
            record_batches: false,
            fault: FaultPlan::none(),
        }
    }
}

/// Mutable per-run state of the serve loop, split out so the crash-safe
/// entry point ([`crate::recovery`]) can checkpoint and restore it.
///
/// Everything here is either exact accounting (u64 counters), the ingress
/// queue, or deterministic virtual-clock state. With a
/// [`ServiceModel::Fixed`] model the whole struct is a pure function of
/// the admitted arrival stream, which is what makes kill/recover
/// equivalence provable.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoopState {
    /// Bounded ingress queue contents.
    pub(crate) queue: VecDeque<TripEvent>,
    /// Every admitted (dispatched) trip in dispatch order; only tracked
    /// when a recovery driver is attached (the checkpoint needs it to
    /// rebuild the simulation's trip table).
    pub(crate) admitted_trips: Vec<TripEvent>,
    /// Virtual time the single-server dispatcher becomes free.
    pub(crate) server_free: f64,
    /// Virtual time of the current tick boundary.
    pub(crate) tick_end: f64,
    /// Tick boundaries crossed.
    pub(crate) ticks: u64,
    /// Ticks that dispatched a batch.
    pub(crate) dispatch_ticks: u64,
    /// Requests offered by the arrival process.
    pub(crate) offered: u64,
    /// Requests that reached the dispatcher.
    pub(crate) admitted: u64,
    /// Admitted requests matched to a vehicle.
    pub(crate) assigned: u64,
    /// Admitted requests no vehicle could serve.
    pub(crate) rejected: u64,
    /// Arrivals bounced off the full queue.
    pub(crate) shed_queue_full: u64,
    /// Queued requests dropped as stale.
    pub(crate) shed_stale: u64,
    /// Current planner effort level.
    pub(crate) level: DispatchEffort,
    /// Consecutive calm ticks since the last stress signal.
    pub(crate) healthy_streak: u64,
    /// Ticks that ran below full effort.
    pub(crate) degraded_ticks: u64,
    /// Ladder transitions in either direction.
    pub(crate) level_transitions: u64,
    /// Dispatch ticks per effort level, indexed by `DispatchEffort::index`.
    pub(crate) dispatches_by_level: [u64; 3],
    /// Injected oracle latency spikes taken.
    pub(crate) fault_oracle_spikes: u64,
    /// Injected torn checkpoint writes taken.
    pub(crate) fault_torn_checkpoints: u64,
    /// Metric events dropped by injected sink saturation.
    pub(crate) sink_dropped_events: u64,
    /// Metric events the sink channel refused (worker gone).
    pub(crate) sink_errors: u64,
    /// Write-ahead journal entries appended.
    pub(crate) journal_entries: u64,
}

impl LoopState {
    pub(crate) fn new() -> Self {
        LoopState {
            queue: VecDeque::new(),
            admitted_trips: Vec::new(),
            server_free: 0.0,
            tick_end: 0.0,
            ticks: 0,
            dispatch_ticks: 0,
            offered: 0,
            admitted: 0,
            assigned: 0,
            rejected: 0,
            shed_queue_full: 0,
            shed_stale: 0,
            level: DispatchEffort::Full,
            healthy_streak: 0,
            degraded_ticks: 0,
            level_transitions: 0,
            dispatches_by_level: [0; 3],
            fault_oracle_spikes: 0,
            fault_torn_checkpoints: 0,
            sink_dropped_events: 0,
            sink_errors: 0,
            journal_entries: 0,
        }
    }
}

/// Records `event` unless the fault plan saturated the sink this tick;
/// both the injected drop and a real channel failure are counted so the
/// end-of-run cross-check knows how lossy the metrics view is.
fn emit(sink: &NonBlockingSink, event: MetricEvent, saturated: bool, state: &mut LoopState) {
    if saturated {
        state.sink_dropped_events += 1;
    } else if !sink.record(event) {
        state.sink_errors += 1;
    }
}

/// Online serving wrapper around a [`Simulation`]; see the module docs.
///
/// ```
/// use rideshare_serve::{PoissonArrivals, ServeConfig, ServeLoop, ServiceModel};
/// use rideshare_sim::{SimConfig, Simulation};
/// use rideshare_workload::{CityConfig, DemandConfig, Workload};
/// use roadnet::CachedOracle;
///
/// let w = Workload::generate(&CityConfig::small(), &DemandConfig::default(), 3);
/// let oracle = CachedOracle::without_labels(&w.network);
/// let sim = Simulation::new(&w.network, &oracle, SimConfig { vehicles: 10, ..SimConfig::default() });
/// let cfg = ServeConfig {
///     model: ServiceModel::Fixed { tick_overhead_s: 0.01, per_request_s: 0.001 },
///     ..ServeConfig::default()
/// };
/// let mut serve = ServeLoop::new(sim, cfg);
/// let report = serve.run(PoissonArrivals::new(&w.trips, 1.0, 30.0, 7));
/// // Exact accounting: every offered request is admitted or shed, never lost.
/// assert_eq!(report.offered, report.admitted + report.shed());
/// assert_eq!(report.admitted, report.assigned + report.rejected);
/// ```
pub struct ServeLoop<'a> {
    pub(crate) sim: Simulation<'a>,
    pub(crate) cfg: ServeConfig,
    pub(crate) recorded: Vec<(f64, Vec<TripEvent>)>,
}

impl<'a> ServeLoop<'a> {
    /// Wraps a freshly built simulation in the serving harness.
    pub fn new(sim: Simulation<'a>, cfg: ServeConfig) -> Self {
        ServeLoop {
            sim,
            cfg,
            recorded: Vec::new(),
        }
    }

    /// The wrapped simulation (trace, report and fleet inspection).
    pub fn sim(&self) -> &Simulation<'a> {
        &self.sim
    }

    /// The `(advance_to_seconds, batch)` dispatches recorded when
    /// [`ServeConfig::record_batches`] is set, in dispatch order. Replaying
    /// them through `advance_all` + `submit_batch` on a fresh simulation
    /// reproduces the serve run's assignments bit-for-bit.
    pub fn recorded_batches(&self) -> &[(f64, Vec<TripEvent>)] {
        &self.recorded
    }

    /// Serves the arrival stream to completion without an event trace.
    ///
    /// Oracle-spike and sink-saturation faults in [`ServeConfig::fault`]
    /// fire here too, but `kill_at_tick` is ignored — only
    /// [`Self::run_recoverable`] honours kills, because only it can
    /// recover from them.
    pub fn run(&mut self, arrivals: impl Iterator<Item = TripEvent>) -> ServeReport {
        self.run_with_writer(arrivals, None)
    }

    /// Serves the arrival stream, optionally streaming a per-event CSV
    /// trace through the non-blocking sink's worker thread.
    pub fn run_with_writer(
        &mut self,
        arrivals: impl Iterator<Item = TripEvent>,
        writer: Option<Box<dyn Write + Send>>,
    ) -> ServeReport {
        let sink = NonBlockingSink::new(writer);
        let mut arrivals = arrivals.peekable();
        let mut state = LoopState::new();
        let done = self
            .run_inner(&mut arrivals, &sink, &mut state, None, false)
            // lint:allow(P1, reason = "without a driver run_inner performs no IO, so Err is unconstructible; swallowing it would hide a logic error")
            .expect("serve loop without a recovery driver performs no recovery IO");
        debug_assert!(done, "kills are disabled without a recovery driver");
        self.finish_report(state, sink, false)
    }

    /// One pass of the serve loop over `arrivals`, mutating `state` in
    /// place. Returns `Ok(false)` if an injected kill fired (the caller
    /// owns recovery), `Ok(true)` when the stream drained. `driver`
    /// threads the write-ahead journal and checkpoint hooks through the
    /// tick; `kill_enabled` is set only by the recoverable entry point.
    ///
    /// The tick order is deliberately rigid — kill check, ingest, queue
    /// sample, stale shed, journal, dispatch, fault spikes, ladder,
    /// checkpoint — because recovery replays it and must land on identical
    /// state.
    pub(crate) fn run_inner<I: Iterator<Item = TripEvent>>(
        &mut self,
        arrivals: &mut Peekable<I>,
        sink: &NonBlockingSink,
        state: &mut LoopState,
        mut driver: Option<&mut RecoveryDriver>,
        kill_enabled: bool,
    ) -> Result<bool, RoadNetError> {
        let slo = self.cfg.slo;
        let fault = self.cfg.fault;
        let tick_s = slo.tick_seconds.max(1e-6);
        let track_admitted = driver.is_some();

        loop {
            state.ticks += 1;
            state.tick_end += tick_s;
            if kill_enabled && fault.killed_at(state.ticks) {
                return Ok(false);
            }
            let saturated = fault.sink_saturated(state.ticks);

            // Ingest every arrival inside this tick's window. The queue is
            // the backpressure boundary: a full queue bounces the arrival
            // instead of letting the backlog grow without limit.
            while let Some(trip) = arrivals.next_if(|t| t.time_seconds < state.tick_end) {
                state.offered += 1;
                if state.queue.len() >= slo.queue_capacity {
                    state.shed_queue_full += 1;
                    emit(
                        sink,
                        MetricEvent::Shed {
                            reason: ShedReason::QueueFull,
                        },
                        saturated,
                        state,
                    );
                } else {
                    state.queue.push_back(trip);
                }
            }
            emit(
                sink,
                MetricEvent::QueueDepth {
                    depth: state.queue.len(),
                },
                saturated,
                state,
            );

            // The dispatcher is a single (virtual) server: while it is
            // still busy with an earlier batch, this tick fires no
            // dispatch and the queue keeps building — that is exactly the
            // overload signal the sweep looks for.
            let pre_depth = state.queue.len();
            let mut dispatched = false;
            let mut cost_s = 0.0_f64;
            if state.server_free <= state.tick_end && !state.queue.is_empty() {
                // Arrivals enter in time order, so stale requests sit at
                // the front.
                while state
                    .queue
                    .front()
                    .is_some_and(|t| state.tick_end - t.time_seconds > slo.max_queue_wait_seconds)
                {
                    state.queue.pop_front();
                    state.shed_stale += 1;
                    emit(
                        sink,
                        MetricEvent::Shed {
                            reason: ShedReason::Stale,
                        },
                        saturated,
                        state,
                    );
                }
                if !state.queue.is_empty() {
                    let batch: Vec<TripEvent> = state.queue.drain(..).collect();
                    if self.cfg.record_batches {
                        self.recorded.push((state.tick_end, batch.clone()));
                    }
                    // Write-ahead: the journal entry lands on disk before
                    // the dispatch mutates fleet state, so a crash in the
                    // middle of `submit_batch` replays the batch instead
                    // of losing it.
                    if let Some(d) = driver.as_deref_mut() {
                        d.journal_dispatch(state, &batch)?;
                    }
                    self.sim.set_dispatch_effort(state.level);
                    // lint:allow(D2, reason = "Measured service model times real dispatch compute; Fixed is the deterministic model and Measured is documented as not bit-identical")
                    let wall = Instant::now();
                    let until_m = self.sim.config().seconds_to_meters(state.tick_end);
                    self.sim.advance_all(until_m);
                    let outcomes = self.sim.submit_batch(&batch);
                    cost_s = match self.cfg.model {
                        ServiceModel::Measured => wall.elapsed().as_secs_f64(),
                        ServiceModel::Fixed {
                            tick_overhead_s,
                            per_request_s,
                        } => tick_overhead_s + per_request_s * batch.len() as f64,
                    };
                    if let Some(extra) = fault.oracle_spike(state.ticks) {
                        cost_s += extra;
                        state.fault_oracle_spikes += 1;
                    }
                    emit(
                        sink,
                        MetricEvent::TickCompute {
                            seconds: cost_s,
                            batch: batch.len(),
                        },
                        saturated,
                        state,
                    );
                    state.dispatch_ticks += 1;
                    // lint:allow(P1, reason = "fixed [u64; 3] indexed by DispatchEffort::index(), which is 0..=2 by definition")
                    state.dispatches_by_level[state.level.index()] += 1;
                    state.server_free = state.tick_end + cost_s;
                    for (trip, outcome) in batch.iter().zip(&outcomes) {
                        state.admitted += 1;
                        if outcome.is_assigned() {
                            state.assigned += 1;
                        } else {
                            state.rejected += 1;
                        }
                        emit(
                            sink,
                            MetricEvent::Latency {
                                seconds: state.server_free - trip.time_seconds,
                                assigned: outcome.is_assigned(),
                            },
                            saturated,
                            state,
                        );
                    }
                    if track_admitted {
                        state.admitted_trips.extend_from_slice(&batch);
                    }
                    dispatched = true;
                }
            }

            if state.level != DispatchEffort::Full {
                state.degraded_ticks += 1;
            }

            // Degradation ladder with hysteresis: any stress signal steps
            // down immediately; stepping back up needs a full streak of
            // calm ticks so the ladder cannot flap at the boundary.
            let stress = pre_depth >= slo.degrade_queue_watermark
                || (dispatched && cost_s > slo.degrade_compute_budget_seconds);
            if stress {
                state.healthy_streak = 0;
                let next = state.level.degraded();
                if next != state.level {
                    state.level = next;
                    state.level_transitions += 1;
                }
            } else if state.level != DispatchEffort::Full {
                state.healthy_streak += 1;
                if state.healthy_streak >= slo.recover_healthy_ticks {
                    state.level = state.level.restored();
                    state.level_transitions += 1;
                    state.healthy_streak = 0;
                }
            }

            if let Some(d) = driver.as_deref_mut() {
                d.after_tick(&self.sim, state, sink)?;
            }

            if arrivals.peek().is_none() && state.queue.is_empty() {
                return Ok(true);
            }
        }
    }

    /// Drains committed trips, joins the sink and cross-checks the two
    /// accounting views before assembling the report. The loop counters
    /// are always exact; the sink view is exact only when nothing was
    /// dropped (no saturation fault, no channel failure, worker alive).
    pub(crate) fn finish_report(
        &mut self,
        state: LoopState,
        sink: NonBlockingSink,
        recovered: bool,
    ) -> ServeReport {
        // Let committed trips play out so guarantee accounting is final.
        self.sim.drain();
        let sim_report = self.sim.report();
        let out = sink.finish();

        // The loop counters are exact by construction, always.
        assert_eq!(
            state.offered,
            state.admitted + state.shed_queue_full + state.shed_stale
        );
        assert_eq!(state.admitted, state.assigned + state.rejected);
        let sink_lossless =
            state.sink_dropped_events == 0 && state.sink_errors == 0 && !out.worker_lost;
        if sink_lossless {
            // Lossless channel: the two views must agree to the request.
            assert_eq!(out.latency.count(), state.admitted);
            assert_eq!(
                out.shed_queue_full + out.shed_stale,
                state.shed_queue_full + state.shed_stale
            );
        } else {
            // Lossy metrics can only under-count, never invent requests.
            assert!(out.latency.count() <= state.admitted);
            assert!(
                out.shed_queue_full + out.shed_stale <= state.shed_queue_full + state.shed_stale
            );
        }

        ServeReport {
            offered: state.offered,
            admitted: state.admitted,
            assigned: state.assigned,
            rejected: state.rejected,
            shed_queue_full: state.shed_queue_full,
            shed_stale: state.shed_stale,
            ticks: state.ticks,
            dispatch_ticks: state.dispatch_ticks,
            horizon_seconds: state.tick_end,
            latency: out.latency.summary(),
            assigned_latency: out.assigned_latency.summary(),
            tick_compute: out.tick_compute.summary(),
            queue_depth_max: out.queue_depth_max,
            queue_depth_mean: out.queue_depth_mean(),
            guarantee_violations: sim_report.guarantee_violations,
            completed: sim_report.completed,
            mean_wait_seconds: sim_report.mean_wait_seconds,
            mean_detour_ratio: sim_report.mean_detour_ratio,
            trace_lines: out.trace_lines,
            io_errors: out.io_errors,
            degraded_ticks: state.degraded_ticks,
            level_transitions: state.level_transitions,
            // lint:allow(P1, reason = "fixed [u64; 3] indexed by DispatchEffort::index(), which is 0..=2 by definition")
            dispatch_full: state.dispatches_by_level[DispatchEffort::Full.index()],
            // lint:allow(P1, reason = "fixed [u64; 3] indexed by DispatchEffort::index(), which is 0..=2 by definition")
            dispatch_slack_pruned: state.dispatches_by_level[DispatchEffort::SlackPruned.index()],
            // lint:allow(P1, reason = "fixed [u64; 3] indexed by DispatchEffort::index(), which is 0..=2 by definition")
            dispatch_greedy: state.dispatches_by_level[DispatchEffort::Greedy.index()],
            fault_oracle_spikes: state.fault_oracle_spikes,
            fault_torn_checkpoints: state.fault_torn_checkpoints,
            sink_dropped_events: state.sink_dropped_events,
            sink_errors: state.sink_errors,
            journal_entries: state.journal_entries,
            recovered,
        }
    }
}

/// Everything one serve run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests that reached the dispatcher.
    pub admitted: u64,
    /// Admitted requests matched to a vehicle.
    pub assigned: u64,
    /// Admitted requests no vehicle could serve within the guarantees.
    pub rejected: u64,
    /// Arrivals bounced off the full ingress queue.
    pub shed_queue_full: u64,
    /// Queued requests dropped for exceeding the admission wait budget.
    pub shed_stale: u64,
    /// Tick boundaries the loop crossed.
    pub ticks: u64,
    /// Ticks that actually dispatched a batch.
    pub dispatch_ticks: u64,
    /// Virtual time at the last tick boundary.
    pub horizon_seconds: f64,
    /// Admission-to-assignment latency over every admitted request.
    pub latency: LatencySummary,
    /// Latency over assigned requests only.
    pub assigned_latency: LatencySummary,
    /// Per-tick dispatch compute cost.
    pub tick_compute: LatencySummary,
    /// Deepest ingress queue observed at a tick boundary.
    pub queue_depth_max: usize,
    /// Mean ingress queue depth over tick boundaries.
    pub queue_depth_mean: f64,
    /// Service-guarantee violations (must be zero — Sec. IV invariant).
    pub guarantee_violations: u64,
    /// Passengers delivered by the end of the drain.
    pub completed: u64,
    /// Mean realised waiting time (seconds) of served pickups.
    pub mean_wait_seconds: f64,
    /// Mean realised detour ratio of delivered passengers.
    pub mean_detour_ratio: f64,
    /// Event-trace lines written (0 without a writer).
    pub trace_lines: u64,
    /// Event-trace write failures.
    pub io_errors: u64,
    /// Ticks that ran below full planner effort.
    pub degraded_ticks: u64,
    /// Degradation-ladder transitions, both directions.
    pub level_transitions: u64,
    /// Dispatch ticks run at full kinetic-insertion effort.
    pub dispatch_full: u64,
    /// Dispatch ticks run at slack-pruned effort.
    pub dispatch_slack_pruned: u64,
    /// Dispatch ticks run at greedy nearest-feasible effort.
    pub dispatch_greedy: u64,
    /// Injected oracle latency spikes taken.
    pub fault_oracle_spikes: u64,
    /// Injected torn checkpoint writes taken.
    pub fault_torn_checkpoints: u64,
    /// Metric events dropped by injected sink saturation.
    pub sink_dropped_events: u64,
    /// Metric events the sink channel refused (worker gone).
    pub sink_errors: u64,
    /// Write-ahead journal entries appended (0 without a recovery dir).
    pub journal_entries: u64,
    /// Whether this run resumed from a checkpoint + journal replay.
    pub recovered: bool,
}

impl ServeReport {
    /// Total shed requests, both reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_stale
    }

    /// Shed fraction of offered load (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// Assigned fraction of admitted load.
    pub fn service_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.assigned as f64 / self.admitted as f64
        }
    }

    /// Fraction of ticks served below full planner effort.
    pub fn degraded_fraction(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.degraded_ticks as f64 / self.ticks as f64
        }
    }

    /// Whether the run held the serving objective: p99 latency within
    /// budget, shedding below 0.1 %, zero guarantee violations **and**
    /// degraded service within [`SloConfig::max_degraded_fraction`] — a
    /// run that only survived by serving greedy matches most of the time
    /// did not really meet its promise.
    pub fn meets_slo(&self, slo: &SloConfig) -> bool {
        self.latency.p99_s <= slo.p99_budget_seconds
            && self.shed_rate() <= 1e-3
            && self.guarantee_violations == 0
            && self.degraded_fraction() <= slo.max_degraded_fraction
    }

    /// Serialises the report as a JSON object (no trailing newline),
    /// optionally tagged with the offered arrival rate.
    pub fn json_object(&self, rate_per_second: Option<f64>, indent: &str) -> String {
        let mut s = String::from("{\n");
        let field = |s: &mut String, key: &str, value: String| {
            s.push_str(indent);
            s.push_str("  \"");
            s.push_str(key);
            s.push_str("\": ");
            s.push_str(&value);
            s.push_str(",\n");
        };
        if let Some(rate) = rate_per_second {
            field(&mut s, "rate_per_second", format!("{rate}"));
        }
        field(&mut s, "offered", self.offered.to_string());
        field(&mut s, "admitted", self.admitted.to_string());
        field(&mut s, "assigned", self.assigned.to_string());
        field(&mut s, "rejected", self.rejected.to_string());
        field(&mut s, "shed_queue_full", self.shed_queue_full.to_string());
        field(&mut s, "shed_stale", self.shed_stale.to_string());
        field(&mut s, "shed_rate", format!("{:.6}", self.shed_rate()));
        field(&mut s, "ticks", self.ticks.to_string());
        field(&mut s, "dispatch_ticks", self.dispatch_ticks.to_string());
        field(
            &mut s,
            "horizon_seconds",
            format!("{:.3}", self.horizon_seconds),
        );
        for (name, summary) in [
            ("latency", &self.latency),
            ("assigned_latency", &self.assigned_latency),
            ("tick_compute", &self.tick_compute),
        ] {
            field(
                &mut s,
                name,
                format!(
                    "{{\"count\": {}, \"mean_s\": {:.6}, \"p50_s\": {:.6}, \"p90_s\": {:.6}, \"p99_s\": {:.6}, \"p999_s\": {:.6}, \"max_s\": {:.6}}}",
                    summary.count,
                    summary.mean_s,
                    summary.p50_s,
                    summary.p90_s,
                    summary.p99_s,
                    summary.p999_s,
                    summary.max_s
                ),
            );
        }
        field(&mut s, "queue_depth_max", self.queue_depth_max.to_string());
        field(
            &mut s,
            "queue_depth_mean",
            format!("{:.3}", self.queue_depth_mean),
        );
        field(&mut s, "degraded_ticks", self.degraded_ticks.to_string());
        field(
            &mut s,
            "degraded_fraction",
            format!("{:.6}", self.degraded_fraction()),
        );
        field(
            &mut s,
            "level_transitions",
            self.level_transitions.to_string(),
        );
        field(&mut s, "dispatch_full", self.dispatch_full.to_string());
        field(
            &mut s,
            "dispatch_slack_pruned",
            self.dispatch_slack_pruned.to_string(),
        );
        field(&mut s, "dispatch_greedy", self.dispatch_greedy.to_string());
        field(
            &mut s,
            "fault_oracle_spikes",
            self.fault_oracle_spikes.to_string(),
        );
        field(
            &mut s,
            "fault_torn_checkpoints",
            self.fault_torn_checkpoints.to_string(),
        );
        field(
            &mut s,
            "sink_dropped_events",
            self.sink_dropped_events.to_string(),
        );
        field(&mut s, "sink_errors", self.sink_errors.to_string());
        field(&mut s, "journal_entries", self.journal_entries.to_string());
        field(&mut s, "recovered", self.recovered.to_string());
        field(
            &mut s,
            "guarantee_violations",
            self.guarantee_violations.to_string(),
        );
        field(&mut s, "completed", self.completed.to_string());
        field(
            &mut s,
            "mean_wait_seconds",
            format!("{:.3}", self.mean_wait_seconds),
        );
        field(
            &mut s,
            "mean_detour_ratio",
            format!("{:.4}", self.mean_detour_ratio),
        );
        field(
            &mut s,
            "service_rate",
            format!("{:.6}", self.service_rate()),
        );
        // Replace the trailing comma of the final field.
        s.truncate(s.len() - 2);
        s.push('\n');
        s.push_str(indent);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::PoissonArrivals;
    use rideshare_sim::{SimConfig, Simulation};
    use rideshare_workload::{CityConfig, DemandConfig, Workload};
    use roadnet::CachedOracle;

    fn small_workload() -> Workload {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips: 60,
                ..DemandConfig::default()
            },
            11,
        )
    }

    fn sim<'a>(w: &'a Workload, oracle: &'a CachedOracle) -> Simulation<'a> {
        Simulation::new(
            &w.network,
            oracle,
            SimConfig {
                vehicles: 12,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn underload_sheds_nothing_and_latency_stays_near_tick() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.01,
                per_request_s: 0.001,
            },
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 2.0, 60.0, 5));
        assert!(report.offered > 0);
        assert_eq!(report.shed(), 0, "underload must not shed");
        assert_eq!(report.offered, report.admitted);
        // Worst case: arrive right after a tick boundary, dispatched at the
        // next one → latency < tick + cost ≪ 2 s in underload.
        assert!(report.latency.max_s < 2.0, "max = {}", report.latency.max_s);
        assert_eq!(report.guarantee_violations, 0);
        // Calm run: the ladder never leaves full effort.
        assert_eq!(report.degraded_ticks, 0);
        assert_eq!(report.level_transitions, 0);
        assert_eq!(report.dispatch_full, report.dispatch_ticks);
    }

    #[test]
    fn overload_sheds_and_reports_queue_growth() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            slo: SloConfig {
                queue_capacity: 16,
                max_queue_wait_seconds: 5.0,
                ..SloConfig::default()
            },
            // Each request costs 0.5 s virtual compute: anything beyond
            // 2 req/s is hopeless overload.
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.1,
                per_request_s: 0.5,
            },
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 20.0, 30.0, 5));
        assert!(report.shed() > 0, "overload must shed: {report:?}");
        assert_eq!(report.offered, report.admitted + report.shed());
        assert!(report.queue_depth_max >= 16, "queue must hit capacity");
        assert!(!report.meets_slo(&cfg.slo));
    }

    #[test]
    fn ladder_degrades_under_stress_and_recovers_with_hysteresis() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            slo: SloConfig {
                // Tiny compute budget: every dispatch tick is a stress
                // signal while load lasts, then arrivals stop and the
                // hysteresis streak restores full effort.
                degrade_compute_budget_seconds: 0.05,
                recover_healthy_ticks: 3,
                max_queue_wait_seconds: 60.0,
                ..SloConfig::default()
            },
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.2,
                per_request_s: 0.05,
            },
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 4.0, 40.0, 9));
        assert!(report.degraded_ticks > 0, "stress must degrade: {report:?}");
        assert!(
            report.level_transitions >= 2,
            "must step down and back up: {report:?}"
        );
        assert!(
            report.dispatch_slack_pruned + report.dispatch_greedy > 0,
            "degraded levels must actually dispatch: {report:?}"
        );
        // Every dispatch tick ran at exactly one level.
        assert_eq!(
            report.dispatch_full + report.dispatch_slack_pruned + report.dispatch_greedy,
            report.dispatch_ticks
        );
        assert_eq!(report.guarantee_violations, 0);
    }

    #[test]
    fn fault_plan_spikes_and_saturation_are_counted_exactly() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let fault = kinetic_core::FaultPlan {
            seed: 77,
            oracle_spike_rate: 1.0,
            oracle_spike_seconds: 0.4,
            sink_saturation_rate: 1.0,
            ..kinetic_core::FaultPlan::none()
        };
        let cfg = ServeConfig {
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.01,
                per_request_s: 0.001,
            },
            fault,
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 2.0, 60.0, 5));
        // Rate 1.0 → every dispatch tick took a spike; every event dropped.
        assert_eq!(report.fault_oracle_spikes, report.dispatch_ticks);
        assert!(report.dispatch_ticks > 0);
        assert!(report.sink_dropped_events > 0);
        // Loop-side accounting stays exact even with a blinded sink.
        assert_eq!(report.offered, report.admitted + report.shed());
        assert_eq!(report.admitted, report.assigned + report.rejected);
        // The sink saw nothing, so its summaries are empty.
        assert_eq!(report.latency.count, 0);
    }

    #[test]
    fn recorded_batches_cover_exactly_the_admitted_stream() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let cfg = ServeConfig {
            model: ServiceModel::Fixed {
                tick_overhead_s: 0.05,
                per_request_s: 0.02,
            },
            record_batches: true,
            ..ServeConfig::default()
        };
        let mut serve = ServeLoop::new(sim(&w, &oracle), cfg);
        let report = serve.run(PoissonArrivals::new(&w.trips, 4.0, 40.0, 9));
        let recorded: u64 = serve
            .recorded_batches()
            .iter()
            .map(|(_, b)| b.len() as u64)
            .sum();
        assert_eq!(recorded, report.admitted);
        // Dispatch times strictly increase batch to batch.
        for pair in serve.recorded_batches().windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn json_object_is_balanced_and_tagged() {
        let w = small_workload();
        let oracle = CachedOracle::without_labels(&w.network);
        let mut serve = ServeLoop::new(
            sim(&w, &oracle),
            ServeConfig {
                model: ServiceModel::Fixed {
                    tick_overhead_s: 0.01,
                    per_request_s: 0.001,
                },
                ..ServeConfig::default()
            },
        );
        let report = serve.run(PoissonArrivals::new(&w.trips, 2.0, 20.0, 1));
        let json = report.json_object(Some(3.5), "  ");
        assert!(json.contains("\"rate_per_second\": 3.5"));
        assert!(json.contains("\"guarantee_violations\": 0"));
        assert!(json.contains("\"degraded_ticks\": 0"));
        assert!(json.contains("\"recovered\": false"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balanced:\n{json}"
        );
        assert!(!json.contains(",\n  }"), "no trailing comma");
    }
}

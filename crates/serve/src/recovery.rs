//! Crash-safe serve recovery: a write-ahead journal plus periodic
//! checkpoints, so a killed serve process resumes with accounting intact.
//!
//! # Design
//!
//! Two files live under [`RecoveryConfig::dir`]:
//!
//! - **`serve.journal`** — a write-ahead log. Every dispatch tick appends
//!   one entry *before* the batch mutates fleet state: the tick number,
//!   the admission counters at that point, the effort level and the full
//!   batch. Entries are individually framed (`[u32 len][body][u64 fnv]`),
//!   so a torn tail from a crash mid-write is detected and dropped, never
//!   misparsed.
//! - **`serve.ckpt`** — a full image of the loop written every
//!   [`RecoveryConfig::checkpoint_every_ticks`] ticks: the loop-state
//!   counters, the ingress queue, the admitted-trip table,
//!   a metrics-sink snapshot and an embedded simulation checkpoint
//!   (vehicles, routes, RNG streams — see `rideshare_sim::checkpoint`).
//!   Writes go to a temp file and rename into place, so the previous
//!   checkpoint survives a crash — or an injected torn write — mid-dump.
//!
//! Recovery loads the newest intact checkpoint (a corrupt one falls back
//! to a fresh start with a warning; a checkpoint *bound to different
//! configuration* is an error), restores the simulation, re-seeds the
//! sink from the snapshot, skips exactly `offered` arrivals — every
//! arrival ever pulled was counted as offered, including queue-full
//! bounces, so this cursor cannot double-shed — and re-runs the loop.
//! Work between the checkpoint and the crash is *re-executed*, and under
//! a deterministic [`ServiceModel::Fixed`] model each re-executed
//! dispatch is verified byte-for-byte against the journal tail the dead
//! process left behind: any divergence is an error, which is what makes
//! the kill/recover equivalence property provable
//! (`tests/serve_recovery.rs`).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as IoWrite};
use std::path::{Path, PathBuf};

use kinetic_core::codec::{put_bool, read_bool, read_len};
use kinetic_core::{DispatchEffort, FaultPlan};
use rideshare_sim::{digest_config, digest_trips, SimConfig, Simulation};
use rideshare_workload::TripEvent;
use roadnet::io::bin::{self, Reader};
use roadnet::{DistanceOracle, RoadNetError, RoadNetwork};

use crate::server::{LoopState, ServeConfig, ServeLoop, ServeReport, ServiceModel};
use crate::sink::{NonBlockingSink, SinkOutput};

/// Journal file magic: **R**ide**S**hare **W**rite-ahead **J**ournal.
const JOURNAL_MAGIC: &[u8; 4] = b"RSWJ";
/// Checkpoint file magic: **R**ide**S**hare ser**V**e **C**heckpoint.
const CKPT_MAGIC: &[u8; 4] = b"RSVC";
const VERSION: u32 = 1;
/// Journal header: magic + version + sim-config digest + serve digest.
const JOURNAL_HEADER_LEN: u64 = 4 + 4 + 8 + 8;
/// Upper bound on a single journal entry body (sanity check on `len`).
const MAX_ENTRY_BYTES: usize = 64 << 20;

/// Where and how often the serve loop persists its recovery state.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Directory holding `serve.journal` and `serve.ckpt` (created on
    /// first use).
    pub dir: PathBuf,
    /// Ticks between checkpoint dumps; 0 disables checkpoints (journal
    /// only — recovery then re-executes from the very start).
    pub checkpoint_every_ticks: u64,
}

impl RecoveryConfig {
    /// A recovery config rooted at `dir` with the default 64-tick
    /// checkpoint cadence.
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        RecoveryConfig {
            dir: dir.into(),
            checkpoint_every_ticks: 64,
        }
    }

    /// Path of the write-ahead journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("serve.journal")
    }

    /// Path of the serve checkpoint.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("serve.ckpt")
    }
}

/// FNV digest binding recovery files to the serving configuration: the
/// SLO budgets, the service model and the fault plan (everything that
/// shapes the admitted stream). `record_batches` is excluded (it changes
/// no decision) and so is `kill_at_tick` — the reference uninterrupted
/// run and the killed run must share a binding for equivalence tests.
pub(crate) fn digest_serve(cfg: &ServeConfig) -> u64 {
    let mut buf = Vec::new();
    let slo = &cfg.slo;
    bin::put_f64(&mut buf, slo.tick_seconds);
    bin::put_f64(&mut buf, slo.p99_budget_seconds);
    bin::put_u64(&mut buf, slo.queue_capacity as u64);
    bin::put_f64(&mut buf, slo.max_queue_wait_seconds);
    bin::put_f64(&mut buf, slo.degrade_compute_budget_seconds);
    bin::put_u64(&mut buf, slo.degrade_queue_watermark as u64);
    bin::put_u64(&mut buf, slo.recover_healthy_ticks);
    bin::put_f64(&mut buf, slo.max_degraded_fraction);
    match cfg.model {
        ServiceModel::Measured => bin::put_u32(&mut buf, 0),
        ServiceModel::Fixed {
            tick_overhead_s,
            per_request_s,
        } => {
            bin::put_u32(&mut buf, 1);
            bin::put_f64(&mut buf, tick_overhead_s);
            bin::put_f64(&mut buf, per_request_s);
        }
    }
    let f = &cfg.fault;
    bin::put_u64(&mut buf, f.seed);
    bin::put_f64(&mut buf, f.oracle_spike_rate);
    bin::put_f64(&mut buf, f.oracle_spike_seconds);
    bin::put_f64(&mut buf, f.sink_saturation_rate);
    bin::put_f64(&mut buf, f.torn_checkpoint_rate);
    bin::put_u64(&mut buf, f.store_io_errors as u64);
    bin::fnv1a(&buf)
}

fn put_trip(out: &mut Vec<u8>, t: &TripEvent) {
    bin::put_u64(out, t.id);
    bin::put_u32(out, t.source);
    bin::put_u32(out, t.destination);
    bin::put_f64(out, t.time_seconds);
}

fn read_trip(r: &mut Reader<'_>) -> Result<TripEvent, RoadNetError> {
    Ok(TripEvent {
        id: r.u64("trip id")?,
        source: r.u32("trip source")?,
        destination: r.u32("trip destination")?,
        time_seconds: r.f64("trip time")?,
    })
}

fn put_trips(out: &mut Vec<u8>, trips: &[TripEvent]) {
    bin::put_u64(out, trips.len() as u64);
    for t in trips {
        put_trip(out, t);
    }
}

fn read_trips(r: &mut Reader<'_>, what: &str) -> Result<Vec<TripEvent>, RoadNetError> {
    let n = read_len(r, 24, what)?;
    let mut trips = Vec::with_capacity(n);
    for _ in 0..n {
        trips.push(read_trip(r)?);
    }
    Ok(trips)
}

fn put_effort(out: &mut Vec<u8>, level: DispatchEffort) {
    bin::put_u32(out, level.index() as u32);
}

fn read_effort(r: &mut Reader<'_>) -> Result<DispatchEffort, RoadNetError> {
    let idx = r.u32("effort level")? as usize;
    DispatchEffort::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| RoadNetError::Persist(format!("effort level index {idx} out of range")))
}

/// One write-ahead journal entry: the admission state at the moment a
/// batch was handed to the dispatcher, plus the batch itself.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JournalEntry {
    pub(crate) tick: u64,
    pub(crate) tick_end: f64,
    pub(crate) level: DispatchEffort,
    pub(crate) offered: u64,
    pub(crate) shed_queue_full: u64,
    pub(crate) shed_stale: u64,
    pub(crate) batch: Vec<TripEvent>,
}

impl JournalEntry {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        bin::put_u64(&mut body, self.tick);
        bin::put_f64(&mut body, self.tick_end);
        put_effort(&mut body, self.level);
        bin::put_u64(&mut body, self.offered);
        bin::put_u64(&mut body, self.shed_queue_full);
        bin::put_u64(&mut body, self.shed_stale);
        put_trips(&mut body, &self.batch);
        body
    }

    fn decode(body: &[u8]) -> Result<JournalEntry, RoadNetError> {
        let mut r = Reader::new(body);
        Ok(JournalEntry {
            tick: r.u64("journal tick")?,
            tick_end: r.f64("journal tick_end")?,
            level: read_effort(&mut r)?,
            offered: r.u64("journal offered")?,
            shed_queue_full: r.u64("journal shed_queue_full")?,
            shed_stale: r.u64("journal shed_stale")?,
            batch: read_trips(&mut r, "journal batch")?,
        })
    }
}

fn journal_header(sim_digest: u64, serve_digest: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
    out.extend_from_slice(JOURNAL_MAGIC);
    bin::put_u32(&mut out, VERSION);
    bin::put_u64(&mut out, sim_digest);
    bin::put_u64(&mut out, serve_digest);
    out
}

/// Journal contents plus the byte offset past each entry, so resume can
/// truncate precisely at the checkpoint's high-water mark.
struct LoadedJournal {
    entries: Vec<JournalEntry>,
    end_offsets: Vec<u64>,
}

/// Parses the journal, stopping (not failing) at the first torn or
/// truncated entry — that is the expected crash signature. A header bound
/// to a different configuration is an error; a missing file is empty.
fn load_journal(
    path: &Path,
    sim_digest: u64,
    serve_digest: u64,
) -> Result<LoadedJournal, RoadNetError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let empty = LoadedJournal {
        entries: Vec::new(),
        end_offsets: Vec::new(),
    };
    if bytes.len() < JOURNAL_HEADER_LEN as usize {
        return Ok(empty);
    }
    let mut r = Reader::new(&bytes);
    let magic = r.bytes(4, "journal magic")?;
    let version = r.u32("journal version")?;
    if magic != JOURNAL_MAGIC || version != VERSION {
        return Err(RoadNetError::Persist(format!(
            "{} is not a version-{VERSION} serve journal",
            path.display()
        )));
    }
    let got_sim = r.u64("journal sim digest")?;
    let got_serve = r.u64("journal serve digest")?;
    if got_sim != sim_digest || got_serve != serve_digest {
        return Err(RoadNetError::Persist(format!(
            "{} was written under a different configuration \
             (sim digest {got_sim:#x} vs {sim_digest:#x}, \
             serve digest {got_serve:#x} vs {serve_digest:#x})",
            path.display()
        )));
    }
    let mut entries = Vec::new();
    let mut end_offsets = Vec::new();
    let mut offset = JOURNAL_HEADER_LEN;
    // Frame: [u32 len][body][u64 fnv(body)]. Anything short or with a
    // bad checksum is the torn tail of a crash — stop there.
    while let Ok(len) = r.u32("entry length") {
        let len = len as usize;
        if len > MAX_ENTRY_BYTES || r.remaining() < len + 8 {
            break;
        }
        let Ok(body) = r.bytes(len, "entry body") else {
            break;
        };
        let Ok(sum) = r.u64("entry checksum") else {
            break;
        };
        if bin::fnv1a(body) != sum {
            break;
        }
        let Ok(entry) = JournalEntry::decode(body) else {
            break;
        };
        offset += 4 + len as u64 + 8;
        entries.push(entry);
        end_offsets.push(offset);
    }
    Ok(LoadedJournal {
        entries,
        end_offsets,
    })
}

/// Threads the write-ahead journal and periodic checkpoints through the
/// serve loop's tick; see the module docs for the protocol.
pub(crate) struct RecoveryDriver {
    journal: File,
    checkpoint_path: PathBuf,
    checkpoint_every: u64,
    fault: FaultPlan,
    /// Journal entries the dead process wrote past the checkpoint; the
    /// resumed run re-executes them and verifies each byte-for-byte.
    expected_tail: Vec<JournalEntry>,
    verified: usize,
    /// Tail verification is only sound under a deterministic service
    /// model; with [`ServiceModel::Measured`] re-execution may batch
    /// differently and the checkpoint is simply the authoritative truth.
    verify_tail: bool,
}

impl RecoveryDriver {
    /// Appends the dispatch about to run to the write-ahead journal and,
    /// during recovery, verifies it against the dead process's tail.
    pub(crate) fn journal_dispatch(
        &mut self,
        state: &mut LoopState,
        batch: &[TripEvent],
    ) -> Result<(), RoadNetError> {
        let entry = JournalEntry {
            tick: state.ticks,
            tick_end: state.tick_end,
            level: state.level,
            offered: state.offered,
            shed_queue_full: state.shed_queue_full,
            shed_stale: state.shed_stale,
            batch: batch.to_vec(),
        };
        if let Some(expected) = self.expected_tail.get(self.verified) {
            if self.verify_tail && *expected != entry {
                return Err(RoadNetError::Persist(format!(
                    "journal divergence at entry {}: recovery re-executed tick {} \
                     differently from the pre-crash run",
                    self.verified, entry.tick
                )));
            }
            self.verified += 1;
        }
        let body = entry.encode();
        let mut frame = Vec::with_capacity(4 + body.len() + 8);
        bin::put_u32(&mut frame, body.len() as u32);
        frame.extend_from_slice(&body);
        bin::put_u64(&mut frame, bin::fnv1a(&body));
        self.journal.write_all(&frame)?;
        state.journal_entries += 1;
        Ok(())
    }

    /// Dumps a checkpoint when the tick cadence says so. The write index
    /// is `ticks / cadence` — a pure function of the tick — so injected
    /// torn writes fire identically in an uninterrupted run and in a
    /// recovery re-execution, keeping `fault_torn_checkpoints` equal.
    pub(crate) fn after_tick(
        &mut self,
        sim: &Simulation<'_>,
        state: &mut LoopState,
        sink: &NonBlockingSink,
    ) -> Result<(), RoadNetError> {
        if self.checkpoint_every == 0 || !state.ticks.is_multiple_of(self.checkpoint_every) {
            return Ok(());
        }
        let write_index = state.ticks / self.checkpoint_every;
        if self.fault.torn_checkpoint(write_index) {
            state.fault_torn_checkpoints += 1;
            // Simulate a crash mid-dump: half the image lands in the temp
            // file and the rename never happens. The previous checkpoint
            // stays intact — exactly what the atomic protocol guarantees.
            let bytes = encode_checkpoint(sim, state, sink.snapshot());
            let tmp = self.checkpoint_path.with_extension("ckpt.tmp");
            let (torn_half, _) = bytes.split_at(bytes.len() / 2);
            std::fs::write(&tmp, torn_half)?;
            return Ok(());
        }
        let bytes = encode_checkpoint(sim, state, sink.snapshot());
        let tmp = self.checkpoint_path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &self.checkpoint_path)?;
        Ok(())
    }
}

fn put_state(out: &mut Vec<u8>, state: &LoopState) {
    bin::put_f64(out, state.server_free);
    bin::put_f64(out, state.tick_end);
    bin::put_u64(out, state.ticks);
    bin::put_u64(out, state.dispatch_ticks);
    bin::put_u64(out, state.offered);
    bin::put_u64(out, state.admitted);
    bin::put_u64(out, state.assigned);
    bin::put_u64(out, state.rejected);
    bin::put_u64(out, state.shed_queue_full);
    bin::put_u64(out, state.shed_stale);
    put_effort(out, state.level);
    bin::put_u64(out, state.healthy_streak);
    bin::put_u64(out, state.degraded_ticks);
    bin::put_u64(out, state.level_transitions);
    for &d in &state.dispatches_by_level {
        bin::put_u64(out, d);
    }
    bin::put_u64(out, state.fault_oracle_spikes);
    bin::put_u64(out, state.fault_torn_checkpoints);
    bin::put_u64(out, state.sink_dropped_events);
    bin::put_u64(out, state.sink_errors);
    bin::put_u64(out, state.journal_entries);
    put_trips(out, state.admitted_trips.as_slice());
    let queued: Vec<TripEvent> = state.queue.iter().copied().collect();
    put_trips(out, &queued);
}

fn read_state(r: &mut Reader<'_>) -> Result<LoopState, RoadNetError> {
    let mut state = LoopState::new();
    state.server_free = r.f64("state server_free")?;
    state.tick_end = r.f64("state tick_end")?;
    state.ticks = r.u64("state ticks")?;
    state.dispatch_ticks = r.u64("state dispatch_ticks")?;
    state.offered = r.u64("state offered")?;
    state.admitted = r.u64("state admitted")?;
    state.assigned = r.u64("state assigned")?;
    state.rejected = r.u64("state rejected")?;
    state.shed_queue_full = r.u64("state shed_queue_full")?;
    state.shed_stale = r.u64("state shed_stale")?;
    state.level = read_effort(r)?;
    state.healthy_streak = r.u64("state healthy_streak")?;
    state.degraded_ticks = r.u64("state degraded_ticks")?;
    state.level_transitions = r.u64("state level_transitions")?;
    for d in state.dispatches_by_level.iter_mut() {
        *d = r.u64("state dispatches_by_level")?;
    }
    state.fault_oracle_spikes = r.u64("state fault_oracle_spikes")?;
    state.fault_torn_checkpoints = r.u64("state fault_torn_checkpoints")?;
    state.sink_dropped_events = r.u64("state sink_dropped_events")?;
    state.sink_errors = r.u64("state sink_errors")?;
    state.journal_entries = r.u64("state journal_entries")?;
    state.admitted_trips = read_trips(r, "state admitted trips")?;
    state.queue = read_trips(r, "state queue")?.into_iter().collect();
    Ok(state)
}

fn encode_checkpoint(
    sim: &Simulation<'_>,
    state: &LoopState,
    sink_snapshot: Option<SinkOutput>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CKPT_MAGIC);
    bin::put_u32(&mut out, VERSION);
    bin::put_u64(&mut out, digest_config(sim.config()));
    put_state(&mut out, state);
    match &sink_snapshot {
        Some(s) => {
            put_bool(&mut out, true);
            s.encode(&mut out);
        }
        None => put_bool(&mut out, false),
    }
    let sim_bytes = sim.checkpoint_bytes(
        state.admitted_trips.len(),
        digest_trips(&state.admitted_trips),
    );
    bin::put_u64(&mut out, sim_bytes.len() as u64);
    out.extend_from_slice(&sim_bytes);
    let sum = bin::fnv1a(&out);
    bin::put_u64(&mut out, sum);
    out
}

/// A serve checkpoint decoded far enough to restart the loop; the
/// embedded simulation image is handed to [`Simulation::resume`].
struct LoadedCheckpoint {
    state: LoopState,
    sink: Option<SinkOutput>,
    sim_bytes: Vec<u8>,
}

/// Loads the checkpoint if one exists and is intact. A corrupt image —
/// torn write, bad checksum, short file — falls back to `Ok(None)` (fresh
/// start) with a warning on stderr; a checkpoint bound to a *different
/// simulation config* is an error, because silently restarting a
/// mismatched deployment would corrupt the experiment.
fn load_checkpoint(path: &Path, sim_digest: u64) -> Result<Option<LoadedCheckpoint>, RoadNetError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |why: &str| {
        eprintln!(
            "warning: serve checkpoint {} is corrupt ({why}); starting fresh",
            path.display()
        );
    };
    let Some((payload, trailer)) = bytes.split_last_chunk::<8>() else {
        corrupt("shorter than its checksum");
        return Ok(None);
    };
    let stored = u64::from_le_bytes(*trailer);
    if bin::fnv1a(payload) != stored {
        corrupt("checksum mismatch");
        return Ok(None);
    }
    let mut r = Reader::new(payload);
    let magic = r.bytes(4, "checkpoint magic")?;
    let version = r.u32("checkpoint version")?;
    if magic != CKPT_MAGIC || version != VERSION {
        corrupt("wrong magic or version");
        return Ok(None);
    }
    let got_sim = r.u64("checkpoint sim digest")?;
    if got_sim != sim_digest {
        return Err(RoadNetError::Persist(format!(
            "{} was written under a different simulation config \
             (digest {got_sim:#x} vs {sim_digest:#x})",
            path.display()
        )));
    }
    let state = read_state(&mut r)?;
    let sink = if read_bool(&mut r, "sink snapshot flag")? {
        Some(SinkOutput::decode(&mut r)?)
    } else {
        None
    };
    let n = read_len(&mut r, 1, "embedded sim checkpoint")?;
    let sim_bytes = r.bytes(n, "embedded sim checkpoint")?.to_vec();
    Ok(Some(LoadedCheckpoint {
        state,
        sink,
        sim_bytes,
    }))
}

impl<'a> ServeLoop<'a> {
    /// Serves the arrival stream with crash safety: every dispatch is
    /// journaled ahead of execution and the whole loop is checkpointed on
    /// the configured cadence. Returns `Ok(None)` when the fault plan's
    /// `kill_at_tick` fired — the "process died" signal; call
    /// [`resume_serve`] with the same configuration and directory to pick
    /// the run back up. Starting a run wipes any previous journal and
    /// checkpoint in the directory.
    pub fn run_recoverable(
        &mut self,
        arrivals: impl Iterator<Item = TripEvent>,
        rc: &RecoveryConfig,
    ) -> Result<Option<ServeReport>, RoadNetError> {
        std::fs::create_dir_all(&rc.dir)?;
        let sim_digest = digest_config(self.sim.config());
        let serve_digest = digest_serve(&self.cfg);
        let mut journal = File::create(rc.journal_path())?;
        journal.write_all(&journal_header(sim_digest, serve_digest))?;
        let _ = std::fs::remove_file(rc.checkpoint_path());
        let mut driver = RecoveryDriver {
            journal,
            checkpoint_path: rc.checkpoint_path(),
            checkpoint_every: rc.checkpoint_every_ticks,
            fault: self.cfg.fault,
            expected_tail: Vec::new(),
            verified: 0,
            verify_tail: false,
        };
        let sink = NonBlockingSink::new(None);
        let mut arrivals = arrivals.peekable();
        let mut state = LoopState::new();
        let done = self.run_inner(&mut arrivals, &sink, &mut state, Some(&mut driver), true)?;
        if !done {
            // Killed: the "process" dies here. The sink worker is dropped
            // unjoined, exactly as a real crash would leave it.
            return Ok(None);
        }
        Ok(Some(self.finish_report(state, sink, false)))
    }
}

/// Recovers a killed serve run from `rc.dir` and drives it to completion.
///
/// Rebuilds the simulation from the newest intact checkpoint (or fresh if
/// none survived), re-seeds the metrics sink from the checkpoint's
/// snapshot, fast-forwards the arrival stream past everything already
/// offered, and re-runs the loop with kills disabled. Under a
/// [`ServiceModel::Fixed`] model the re-executed dispatches are verified
/// against the dead process's journal tail, so the returned report is
/// provably identical (modulo the `recovered` flag) to the report an
/// uninterrupted run would have produced.
///
/// `graph`, `oracle`, `sim_config`, `cfg` and `arrivals` must be the same
/// values the killed run was started with; the digests embedded in the
/// journal and checkpoint enforce the config part of that contract.
pub fn resume_serve<'a>(
    graph: &'a RoadNetwork,
    oracle: &'a dyn DistanceOracle,
    sim_config: SimConfig,
    cfg: ServeConfig,
    arrivals: impl Iterator<Item = TripEvent>,
    rc: &RecoveryConfig,
) -> Result<ServeReport, RoadNetError> {
    let sim_digest = digest_config(&sim_config);
    let serve_digest = digest_serve(&cfg);
    let journal = load_journal(&rc.journal_path(), sim_digest, serve_digest)?;
    let ckpt = load_checkpoint(&rc.checkpoint_path(), sim_digest)?;

    let (mut state, sink_seed, sim) = match ckpt {
        Some(l) => {
            let (sim, next) = Simulation::resume(
                graph,
                oracle,
                sim_config,
                &l.state.admitted_trips,
                &l.sim_bytes,
            )?;
            if next != l.state.admitted_trips.len() {
                return Err(RoadNetError::Persist(format!(
                    "checkpoint trip cursor {next} disagrees with the \
                     {} admitted trips recorded beside it",
                    l.state.admitted_trips.len()
                )));
            }
            (l.state, l.sink, sim)
        }
        None => (
            LoopState::new(),
            None,
            Simulation::new(graph, oracle, sim_config),
        ),
    };

    // The journal tail past the checkpoint is what the dead process did
    // after its last dump; re-execution must reproduce it.
    let at = state.journal_entries as usize;
    let Some(tail) = journal.entries.get(at..) else {
        return Err(RoadNetError::Persist(format!(
            "journal holds {} entries but the checkpoint expects at least {at}",
            journal.entries.len()
        )));
    };
    let expected_tail = tail.to_vec();
    let truncate_at = match at.checked_sub(1) {
        None => JOURNAL_HEADER_LEN,
        Some(last) => journal.end_offsets.get(last).copied().ok_or_else(|| {
            RoadNetError::Persist(format!(
                "journal records {} end offsets but the checkpoint expects {at}",
                journal.end_offsets.len()
            ))
        })?,
    };
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(rc.journal_path())?;
    if file.metadata()?.len() < JOURNAL_HEADER_LEN {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&journal_header(sim_digest, serve_digest))?;
    } else {
        file.set_len(truncate_at)?;
        file.seek(SeekFrom::End(0))?;
    }

    let verify_tail = matches!(cfg.model, ServiceModel::Fixed { .. });
    let mut driver = RecoveryDriver {
        journal: file,
        checkpoint_path: rc.checkpoint_path(),
        checkpoint_every: rc.checkpoint_every_ticks,
        fault: cfg.fault,
        expected_tail,
        verified: 0,
        verify_tail,
    };

    // Every arrival ever pulled — queued *or* bounced — was counted as
    // offered, so skipping exactly `offered` arrivals resumes the cursor
    // without re-offering (and re-shedding) anything. Skipping only
    // admitted arrivals would double-count every queue-full bounce.
    let mut arrivals = arrivals.peekable();
    for _ in 0..state.offered {
        arrivals.next();
    }

    let sink = match sink_seed {
        Some(s) => NonBlockingSink::with_state(s, None),
        None => NonBlockingSink::new(None),
    };

    let mut serve = ServeLoop::new(sim, cfg);
    let done = serve.run_inner(&mut arrivals, &sink, &mut state, Some(&mut driver), false)?;
    debug_assert!(done, "kills are disabled during recovery");
    if driver.verify_tail && driver.verified < driver.expected_tail.len() {
        return Err(RoadNetError::Persist(format!(
            "recovery re-executed only {} of the {} journaled dispatches \
             the pre-crash run performed",
            driver.verified,
            driver.expected_tail.len()
        )));
    }
    Ok(serve.finish_report(state, sink, true))
}

//! `rideshare-serve`: run the online dispatch service mode from the
//! command line.
//!
//! Generates a city + demand pool, then serves an open-loop arrival stream
//! (Poisson at `--rate`, or the pool's own timestamps compressed by
//! `--trace-speedup`) through the SLO-gated [`ServeLoop`], printing the
//! serve report as JSON to stdout or `--out`.

use std::io::Write;
use std::process::ExitCode;

use kinetic_core::FaultPlan;
use rideshare_serve::{
    resume_serve, PoissonArrivals, RecoveryConfig, ServeConfig, ServeLoop, ServiceModel, SloConfig,
    TraceArrivals,
};
use rideshare_sim::{SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, Workload};
use roadnet::CachedOracle;

const USAGE: &str = "\
rideshare-serve: online dispatch with SLO-gated admission

USAGE:
  rideshare-serve [OPTIONS]

ARRIVALS (pick one):
  --rate <req/s>          Poisson arrivals at this mean rate [default: 2.0]
  --trace-speedup <k>     replay the demand pool's own timestamps, k x faster

OPTIONS:
  --duration <s>          Poisson horizon in virtual seconds [default: 300]
  --tick <s>              dispatch tick length [default: 1.0]
  --queue-capacity <n>    bounded ingress queue size [default: 4096]
  --max-queue-wait <s>    stale-shed budget [default: 10.0]
  --slo-p99 <s>           p99 latency budget [default: 3.0]
  --fixed-cost <s>        deterministic per-request compute cost instead of
                          measured wall clock (tick overhead = 10x this)
  --city <name>           small | medium | ring | large [default: medium]
  --fleet <n>             vehicles [default: 200]
  --trips <n>             demand-pool size [default: 5000]
  --seed <n>              workload + arrival seed [default: 42]
  --out <path>            write the JSON report here instead of stdout
  --events <path>         stream the per-event CSV trace here (written by
                          the sink's worker thread, never the serve loop;
                          ignored in recoverable mode)
  --fault-plan <spec>     seeded fault injection, e.g.
                          seed=7,spike=0.1:2.5,sink=0.05,torn=0.5,kill=120
  --recover-dir <path>    run crash-safe: write-ahead journal + checkpoints
                          in this directory (enables kill=N in the plan)
  --checkpoint-every <n>  ticks between checkpoints [default: 64]
  --recover               resume a killed run from --recover-dir instead of
                          starting fresh
  --enforce-slo           exit non-zero when the run misses the SLO
  -h, --help              print this help
";

struct Args {
    rate: f64,
    trace_speedup: Option<f64>,
    duration: f64,
    tick: f64,
    queue_capacity: usize,
    max_queue_wait: f64,
    slo_p99: f64,
    fixed_cost: Option<f64>,
    city: String,
    fleet: usize,
    trips: usize,
    seed: u64,
    out: Option<String>,
    events: Option<String>,
    fault: FaultPlan,
    recover_dir: Option<String>,
    checkpoint_every: u64,
    recover: bool,
    enforce_slo: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            rate: 2.0,
            trace_speedup: None,
            duration: 300.0,
            tick: 1.0,
            queue_capacity: 4_096,
            max_queue_wait: 10.0,
            slo_p99: 3.0,
            fixed_cost: None,
            city: "medium".to_string(),
            fleet: 200,
            trips: 5_000,
            seed: 42,
            out: None,
            events: None,
            fault: FaultPlan::none(),
            recover_dir: None,
            checkpoint_every: 64,
            recover: false,
            enforce_slo: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--rate" => args.rate = parse(&value("--rate")?)?,
                "--trace-speedup" => args.trace_speedup = Some(parse(&value("--trace-speedup")?)?),
                "--duration" => args.duration = parse(&value("--duration")?)?,
                "--tick" => args.tick = parse(&value("--tick")?)?,
                "--queue-capacity" => args.queue_capacity = parse(&value("--queue-capacity")?)?,
                "--max-queue-wait" => args.max_queue_wait = parse(&value("--max-queue-wait")?)?,
                "--slo-p99" => args.slo_p99 = parse(&value("--slo-p99")?)?,
                "--fixed-cost" => args.fixed_cost = Some(parse(&value("--fixed-cost")?)?),
                "--city" => args.city = value("--city")?,
                "--fleet" => args.fleet = parse(&value("--fleet")?)?,
                "--trips" => args.trips = parse(&value("--trips")?)?,
                "--seed" => args.seed = parse(&value("--seed")?)?,
                "--out" => args.out = Some(value("--out")?),
                "--events" => args.events = Some(value("--events")?),
                "--fault-plan" => args.fault = FaultPlan::parse(&value("--fault-plan")?)?,
                "--recover-dir" => args.recover_dir = Some(value("--recover-dir")?),
                "--checkpoint-every" => {
                    args.checkpoint_every = parse(&value("--checkpoint-every")?)?
                }
                "--recover" => args.recover = true,
                "--enforce-slo" => args.enforce_slo = true,
                "-h" | "--help" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
            }
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse value {s:?}"))
}

fn city(name: &str) -> Result<CityConfig, String> {
    match name {
        "small" => Ok(CityConfig::small()),
        "medium" => Ok(CityConfig::medium()),
        "ring" => Ok(CityConfig::ring_city()),
        "large" => Ok(CityConfig::large()),
        other => Err(format!("unknown city {other:?} (small|medium|ring|large)")),
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let city = match city(&args.city) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "rideshare-serve: generating {} city with {} pool trips (seed {})...",
        args.city, args.trips, args.seed
    );
    let workload = Workload::generate(
        &city,
        &DemandConfig {
            trips: args.trips,
            ..DemandConfig::default()
        },
        args.seed,
    );
    eprintln!(
        "  network: {} nodes / {} edges; fleet {}",
        workload.network.node_count(),
        workload.network.edge_count(),
        args.fleet
    );
    let oracle = CachedOracle::without_labels(&workload.network);
    let sim_config = SimConfig {
        vehicles: args.fleet,
        seed: args.seed,
        ..SimConfig::default()
    };
    let sim = Simulation::new(&workload.network, &oracle, sim_config);
    let slo = SloConfig {
        tick_seconds: args.tick,
        p99_budget_seconds: args.slo_p99,
        queue_capacity: args.queue_capacity,
        max_queue_wait_seconds: args.max_queue_wait,
        ..SloConfig::default()
    };
    let model = match args.fixed_cost {
        Some(c) => ServiceModel::Fixed {
            tick_overhead_s: 10.0 * c,
            per_request_s: c,
        },
        None => ServiceModel::Measured,
    };
    let cfg = ServeConfig {
        slo,
        model,
        record_batches: false,
        fault: args.fault,
    };
    let mut serve = ServeLoop::new(sim, cfg);

    let writer: Option<Box<dyn Write + Send>> = match &args.events {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(Box::new(std::io::BufWriter::new(f))),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let arrivals: Box<dyn Iterator<Item = rideshare_workload::TripEvent>> = match args.trace_speedup
    {
        Some(k) => {
            eprintln!("  serving trace arrivals at {k}x speedup...");
            Box::new(TraceArrivals::new(&workload.trips, k))
        }
        None => {
            eprintln!(
                "  serving Poisson arrivals at {} req/s for {} s...",
                args.rate, args.duration
            );
            Box::new(PoissonArrivals::new(
                &workload.trips,
                args.rate,
                args.duration,
                args.seed,
            ))
        }
    };

    let report = match &args.recover_dir {
        Some(dir) => {
            if args.events.is_some() {
                eprintln!("  note: --events is ignored in recoverable mode");
            }
            let rc = RecoveryConfig {
                dir: dir.into(),
                checkpoint_every_ticks: args.checkpoint_every,
            };
            let outcome = if args.recover {
                eprintln!("  recovering from {dir}...");
                resume_serve(&workload.network, &oracle, sim_config, cfg, arrivals, &rc).map(Some)
            } else {
                eprintln!("  serving crash-safe (journal + checkpoints in {dir})...");
                serve.run_recoverable(arrivals, &rc)
            };
            match outcome {
                Ok(Some(report)) => report,
                Ok(None) => {
                    eprintln!(
                        "  run killed by fault plan; state saved in {dir} — rerun with \
                         --recover to resume"
                    );
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("recovery IO failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => serve.run_with_writer(arrivals, writer),
    };

    let rate = args.trace_speedup.is_none().then_some(args.rate);
    let json = report.json_object(rate, "");
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("  report written to {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "  offered={} admitted={} shed={} p99={:.3}s violations={}",
        report.offered,
        report.admitted,
        report.shed(),
        report.latency.p99_s,
        report.guarantee_violations
    );

    if args.enforce_slo && !report.meets_slo(&slo) {
        eprintln!(
            "SLO MISSED: p99 {:.3}s vs budget {:.3}s, shed rate {:.4}, violations {}",
            report.latency.p99_s,
            slo.p99_budget_seconds,
            report.shed_rate(),
            report.guarantee_violations
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Non-blocking serving metrics: a worker thread behind a channel.
//!
//! The dispatch hot loop must never block on metrics or trace IO — once
//! matching is no longer the only cost, a synchronous `write()` in the loop
//! would tax exactly the latency the serve mode is trying to measure. The
//! [`NonBlockingSink`] therefore separates the transactional hot path from
//! the analytical path: the serve loop calls [`NonBlockingSink::record`]
//! (an unbounded channel send — an allocation, never a syscall, never a
//! wait) and a dedicated worker thread owns the histograms, gauges and the
//! optional event-trace writer. [`NonBlockingSink::finish`] closes the
//! channel, joins the worker and returns the fully drained
//! [`SinkOutput`] — the channel is lossless, so the aggregates are exact,
//! not sampled.

use std::io::Write;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

use kinetic_core::LatencyHistogram;
use roadnet::io::bin::{self, Reader};
use roadnet::RoadNetError;

use kinetic_core::codec::{put_bool, read_bool};

/// Why a request was shed instead of dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded ingress queue was full when the request arrived.
    QueueFull,
    /// The request sat in the queue longer than the admission budget and
    /// was dropped before dispatch (its match would have been too late to
    /// be useful anyway).
    Stale,
}

/// One observation emitted by the serve loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricEvent {
    /// A dispatched request's admission-to-assignment latency.
    Latency {
        /// Virtual seconds from arrival to the dispatch decision.
        seconds: f64,
        /// Whether the dispatcher assigned a vehicle (vs rejecting).
        assigned: bool,
    },
    /// Ingress queue depth sampled at a tick boundary.
    QueueDepth {
        /// Requests waiting in the queue.
        depth: usize,
    },
    /// A request was shed.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
    },
    /// One dispatch tick's compute cost.
    TickCompute {
        /// Modeled (or measured) compute seconds for the tick.
        seconds: f64,
        /// Requests dispatched in the tick.
        batch: usize,
    },
}

/// Everything the worker thread aggregated, returned by
/// [`NonBlockingSink::finish`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SinkOutput {
    /// Admission-to-assignment latency of every dispatched request.
    pub latency: LatencyHistogram,
    /// Latency of assigned requests only.
    pub assigned_latency: LatencyHistogram,
    /// Per-tick dispatch compute cost.
    pub tick_compute: LatencyHistogram,
    /// Deepest queue observed at any tick boundary.
    pub queue_depth_max: usize,
    /// Sum of sampled queue depths (for the mean).
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples.
    pub queue_depth_samples: u64,
    /// Requests shed because the ingress queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because they went stale in the queue.
    pub shed_stale: u64,
    /// Total events received (lossless-channel check).
    pub events: u64,
    /// Trace lines successfully written (0 without a writer).
    pub trace_lines: u64,
    /// Trace write failures (the worker keeps aggregating regardless).
    pub io_errors: u64,
    /// True when the worker thread died (panicked) and these aggregates
    /// are a fabricated empty stand-in rather than the real drain. A dead
    /// sink degrades metrics, never the dispatch loop — the serve report
    /// counts it as a sink error.
    pub worker_lost: bool,
}

impl SinkOutput {
    /// Mean sampled queue depth.
    pub fn queue_depth_mean(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Appends the full aggregate state in the workspace binary
    /// conventions, so a serve checkpoint can snapshot the sink and a
    /// recovered run can resume metrics bit-identically.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.latency.encode(out);
        self.assigned_latency.encode(out);
        self.tick_compute.encode(out);
        bin::put_u64(out, self.queue_depth_max as u64);
        bin::put_u64(out, self.queue_depth_sum);
        bin::put_u64(out, self.queue_depth_samples);
        bin::put_u64(out, self.shed_queue_full);
        bin::put_u64(out, self.shed_stale);
        bin::put_u64(out, self.events);
        bin::put_u64(out, self.trace_lines);
        bin::put_u64(out, self.io_errors);
        put_bool(out, self.worker_lost);
    }

    /// Reads aggregates written by [`SinkOutput::encode`]; never panics on
    /// malformed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<SinkOutput, RoadNetError> {
        Ok(SinkOutput {
            latency: LatencyHistogram::decode(r)?,
            assigned_latency: LatencyHistogram::decode(r)?,
            tick_compute: LatencyHistogram::decode(r)?,
            queue_depth_max: r.u64("sink queue depth max")? as usize,
            queue_depth_sum: r.u64("sink queue depth sum")?,
            queue_depth_samples: r.u64("sink queue depth samples")?,
            shed_queue_full: r.u64("sink shed queue full")?,
            shed_stale: r.u64("sink shed stale")?,
            events: r.u64("sink events")?,
            trace_lines: r.u64("sink trace lines")?,
            io_errors: r.u64("sink io errors")?,
            worker_lost: read_bool(r, "sink worker lost")?,
        })
    }
}

/// What flows over the sink channel: metric events from the hot loop, or a
/// snapshot request (the worker clones its running aggregates back through
/// the provided one-shot channel). The channel is FIFO, so a snapshot
/// reflects every event recorded before it — what the serve checkpoint
/// relies on.
enum SinkRequest {
    Event(MetricEvent),
    Snapshot(Sender<SinkOutput>),
}

/// Handle the serve loop records through; see the module docs.
///
/// ```
/// use rideshare_serve::sink::{MetricEvent, NonBlockingSink};
///
/// let sink = NonBlockingSink::new(None);
/// for i in 0..100 {
///     sink.record(MetricEvent::Latency { seconds: 0.01 * i as f64, assigned: true });
/// }
/// sink.record(MetricEvent::QueueDepth { depth: 42 });
/// let out = sink.finish();
/// assert_eq!(out.latency.count(), 100); // lossless: every event arrived
/// assert_eq!(out.queue_depth_max, 42);
/// assert_eq!(out.events, 101);
/// ```
#[derive(Debug)]
pub struct NonBlockingSink {
    tx: Sender<SinkRequest>,
    worker: JoinHandle<SinkOutput>,
}

/// Folds one event into the running aggregates; returns the optional CSV
/// trace line.
fn apply(out: &mut SinkOutput, ev: MetricEvent, trace: bool) -> Option<String> {
    out.events += 1;
    match ev {
        MetricEvent::Latency { seconds, assigned } => {
            out.latency.record(seconds);
            if assigned {
                out.assigned_latency.record(seconds);
            }
            trace.then(|| format!("latency,{seconds:.6},{assigned}"))
        }
        MetricEvent::QueueDepth { depth } => {
            out.queue_depth_max = out.queue_depth_max.max(depth);
            out.queue_depth_sum += depth as u64;
            out.queue_depth_samples += 1;
            trace.then(|| format!("queue_depth,{depth}"))
        }
        MetricEvent::Shed { reason } => {
            match reason {
                ShedReason::QueueFull => out.shed_queue_full += 1,
                ShedReason::Stale => out.shed_stale += 1,
            }
            trace.then(|| {
                format!(
                    "shed,{}",
                    match reason {
                        ShedReason::QueueFull => "queue_full",
                        ShedReason::Stale => "stale",
                    }
                )
            })
        }
        MetricEvent::TickCompute { seconds, batch } => {
            out.tick_compute.record(seconds);
            trace.then(|| format!("tick,{seconds:.6},{batch}"))
        }
    }
}

impl NonBlockingSink {
    /// Spawns the worker thread. With `Some(writer)` the worker also
    /// streams one CSV line per event into it (`latency,<s>,<assigned>` /
    /// `queue_depth,<n>` / `shed,<reason>` / `tick,<s>,<batch>`); the
    /// writer lives entirely on the worker thread, so a slow disk delays
    /// the trace, never the dispatch loop.
    pub fn new(writer: Option<Box<dyn Write + Send>>) -> Self {
        Self::with_state(SinkOutput::default(), writer)
    }

    /// Spawns the worker thread with pre-seeded aggregates — how a
    /// recovered serve run resumes metrics from the checkpoint's sink
    /// snapshot instead of starting from zero.
    pub fn with_state(initial: SinkOutput, writer: Option<Box<dyn Write + Send>>) -> Self {
        let (tx, rx) = channel::<SinkRequest>();
        let worker = std::thread::spawn(move || {
            let mut out = initial;
            let mut writer = writer;
            for req in rx {
                match req {
                    SinkRequest::Event(ev) => {
                        let line = apply(&mut out, ev, writer.is_some());
                        if let (Some(w), Some(line)) = (writer.as_mut(), line) {
                            match writeln!(w, "{line}") {
                                Ok(()) => out.trace_lines += 1,
                                Err(_) => out.io_errors += 1,
                            }
                        }
                    }
                    SinkRequest::Snapshot(reply) => {
                        // The requester may have given up; a failed reply
                        // must not kill the worker.
                        reply.send(out.clone()).ok();
                    }
                }
            }
            if let Some(w) = writer.as_mut() {
                if w.flush().is_err() {
                    out.io_errors += 1;
                }
            }
            out
        });
        NonBlockingSink { tx, worker }
    }

    /// Records one event. Never blocks: the channel is unbounded, so a
    /// send is an allocation, not a syscall or a wait. Returns `false`
    /// when the worker is gone (died mid-run) and the event was dropped —
    /// the serve loop counts those instead of panicking, so a dead sink
    /// degrades metrics, never dispatch.
    pub fn record(&self, event: MetricEvent) -> bool {
        self.tx.send(SinkRequest::Event(event)).is_ok()
    }

    /// Requests a point-in-time copy of the aggregates from the worker.
    /// The channel is FIFO, so the snapshot reflects every event recorded
    /// before this call. Returns `None` when the worker is gone.
    pub fn snapshot(&self) -> Option<SinkOutput> {
        let (reply_tx, reply_rx) = channel();
        self.tx.send(SinkRequest::Snapshot(reply_tx)).ok()?;
        reply_rx.recv().ok()
    }

    /// Closes the channel, joins the worker and returns the exact
    /// aggregates (every recorded event is reflected). Never panics: if
    /// the worker died, an empty output with
    /// [`SinkOutput::worker_lost`] set is returned instead.
    pub fn finish(self) -> SinkOutput {
        drop(self.tx);
        match self.worker.join() {
            Ok(out) => out,
            Err(_) => SinkOutput {
                worker_lost: true,
                ..SinkOutput::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// An `io::Write` capturing everything into shared memory.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn aggregates_are_exact_and_lossless() {
        let sink = NonBlockingSink::new(None);
        for i in 0..10_000u64 {
            sink.record(MetricEvent::Latency {
                seconds: (i % 100) as f64 * 1e-3,
                assigned: i % 10 != 0,
            });
        }
        sink.record(MetricEvent::Shed {
            reason: ShedReason::QueueFull,
        });
        sink.record(MetricEvent::Shed {
            reason: ShedReason::Stale,
        });
        sink.record(MetricEvent::Shed {
            reason: ShedReason::Stale,
        });
        for d in [3usize, 9, 1] {
            sink.record(MetricEvent::QueueDepth { depth: d });
        }
        let out = sink.finish();
        assert_eq!(out.latency.count(), 10_000);
        assert_eq!(out.assigned_latency.count(), 9_000);
        assert_eq!(out.shed_queue_full, 1);
        assert_eq!(out.shed_stale, 2);
        assert_eq!(out.queue_depth_max, 9);
        assert_eq!(out.queue_depth_samples, 3);
        assert!((out.queue_depth_mean() - 13.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.events, 10_006);
        assert_eq!(out.trace_lines, 0);
    }

    #[test]
    fn trace_writer_receives_one_line_per_event_off_the_hot_path() {
        let buf = SharedBuf::default();
        let sink = NonBlockingSink::new(Some(Box::new(buf.clone())));
        sink.record(MetricEvent::Latency {
            seconds: 0.5,
            assigned: true,
        });
        sink.record(MetricEvent::TickCompute {
            seconds: 0.001,
            batch: 7,
        });
        sink.record(MetricEvent::Shed {
            reason: ShedReason::Stale,
        });
        let out = sink.finish();
        assert_eq!(out.trace_lines, 3);
        assert_eq!(out.io_errors, 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "latency,0.500000,true");
        assert_eq!(lines[1], "tick,0.001000,7");
        assert_eq!(lines[2], "shed,stale");
    }

    #[test]
    fn snapshot_reflects_prior_events_and_with_state_resumes() {
        let sink = NonBlockingSink::new(None);
        for i in 0..500 {
            assert!(sink.record(MetricEvent::Latency {
                seconds: i as f64 * 1e-3,
                assigned: true,
            }));
        }
        let snap = sink.snapshot().expect("worker alive");
        assert_eq!(snap.latency.count(), 500, "FIFO: snapshot sees all sends");
        // Events after the snapshot do not retroactively appear in it.
        sink.record(MetricEvent::Shed {
            reason: ShedReason::Stale,
        });
        assert_eq!(snap.shed_stale, 0);
        let full = sink.finish();
        assert_eq!(full.shed_stale, 1);
        assert!(!full.worker_lost);

        // A sink seeded from the snapshot continues where it left off.
        let resumed = NonBlockingSink::with_state(snap.clone(), None);
        resumed.record(MetricEvent::Shed {
            reason: ShedReason::Stale,
        });
        let out = resumed.finish();
        assert_eq!(out.latency.count(), 500);
        assert_eq!(out.shed_stale, 1);
        assert_eq!(out.events, snap.events + 1);
        assert_eq!(out.latency, full.latency, "histograms resume exactly");
    }

    #[test]
    fn sink_output_encode_decode_roundtrips() {
        let sink = NonBlockingSink::new(None);
        for i in 0..100 {
            sink.record(MetricEvent::Latency {
                seconds: i as f64 * 2e-3,
                assigned: i % 3 != 0,
            });
            sink.record(MetricEvent::QueueDepth { depth: i % 17 });
        }
        sink.record(MetricEvent::TickCompute {
            seconds: 0.25,
            batch: 9,
        });
        let out = sink.finish();
        let mut buf = Vec::new();
        out.encode(&mut buf);
        let back = SinkOutput::decode(&mut Reader::new(&buf)).expect("roundtrip");
        assert_eq!(back, out);
        // Truncated input errors instead of panicking.
        assert!(SinkOutput::decode(&mut Reader::new(&buf[..buf.len() / 2])).is_err());
    }

    #[test]
    fn io_errors_do_not_poison_aggregation() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("still on fire"))
            }
        }
        let sink = NonBlockingSink::new(Some(Box::new(FailingWriter)));
        sink.record(MetricEvent::Latency {
            seconds: 1.0,
            assigned: false,
        });
        let out = sink.finish();
        assert_eq!(out.latency.count(), 1, "aggregation survives IO failure");
        assert!(out.io_errors >= 1);
        assert_eq!(out.trace_lines, 0);
    }
}

//! Micro-benchmarks of the stateless matchers (brute force, branch and
//! bound, MIP, cheapest insertion) on scheduling problems of growing size —
//! the per-call view behind Fig. 6(a)/8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinetic_core::{
    BranchBoundSolver, BruteForceSolver, InsertionSolver, MipScheduleSolver, ScheduleSolver,
    SchedulingProblem, WaitingTrip,
};
use roadnet::{DistanceOracle, GeneratorConfig, MatrixOracle, NetworkKind};

fn oracle() -> MatrixOracle {
    let g = GeneratorConfig {
        kind: NetworkKind::Grid { rows: 12, cols: 12 },
        seed: 3,
        ..GeneratorConfig::default()
    }
    .generate();
    MatrixOracle::new(&g)
}

/// A deterministic scheduling problem with `trips` waiting passengers.
fn problem(oracle: &MatrixOracle, trips: usize) -> SchedulingProblem {
    let n = oracle.node_count() as u64;
    let mut state = 0xDEADBEEFu64 ^ trips as u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut p = SchedulingProblem::new((next() % n) as u32, 0.0, 8);
    for t in 0..trips as u64 {
        let pickup = (next() % n) as u32;
        let mut dropoff = (next() % n) as u32;
        if dropoff == pickup {
            dropoff = (dropoff + 1) % n as u32;
        }
        let direct = oracle.dist(pickup, dropoff);
        p.waiting.push(WaitingTrip {
            trip: t,
            pickup,
            dropoff,
            pickup_deadline: 8_400.0,
            max_ride: direct * 1.2,
        });
    }
    p
}

fn bench_matchers(c: &mut Criterion) {
    let oracle = oracle();
    let solvers: Vec<(&str, Box<dyn ScheduleSolver>)> = vec![
        ("brute_force", Box::new(BruteForceSolver::default())),
        ("branch_bound", Box::new(BranchBoundSolver::default())),
        ("insertion", Box::new(InsertionSolver)),
        ("mip", Box::new(MipScheduleSolver::default())),
    ];
    for trips in [1usize, 2, 3, 4] {
        let p = problem(&oracle, trips);
        let mut group = c.benchmark_group(format!("matcher_{trips}_trips"));
        if trips >= 3 {
            group.sample_size(10);
        }
        for (name, solver) in &solvers {
            // The MIP baseline at 4 trips takes far longer than the others;
            // that asymmetry is the paper's point, but keep the bench finite.
            if *name == "mip" && trips >= 4 {
                continue;
            }
            group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
                b.iter(|| solver.solve(&p, &oracle).is_feasible())
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_matchers
}
criterion_main!(benches);

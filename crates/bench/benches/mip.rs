//! Micro-benchmarks of the simplex/branch-and-bound MIP substrate: LP solves
//! of growing size, small binary programs, and the headline `mip_solve`
//! group — full MTZ scheduling models at 1–3 trips on board, solved by the
//! sparse revised-simplex production solver and by the frozen dense
//! baseline. Explains the fixed per-request overhead that makes the MIP
//! matcher an order of magnitude slower than the incremental approaches
//! (Fig. 6), and measures the dense→sparse rewrite itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinetic_core::algorithms::{MipBuild, MipFormulation};
use rideshare_bench::baseline::dense_mip;
use rideshare_bench::mip_fixture;
use rideshare_mip::{ConstraintOp, Model, Sense, SolveOptions, VarKind};

/// A dense random-ish LP with `n` variables and `n` constraints.
fn lp(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| {
            m.add_var(
                0.0,
                f64::INFINITY,
                1.0 + (i % 7) as f64,
                VarKind::Continuous,
                format!("x{i}"),
            )
        })
        .collect();
    for r in 0..n {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + ((i + r) % 5) as f64))
            .collect();
        m.add_constraint(&terms, ConstraintOp::Le, 50.0 + r as f64);
    }
    m
}

/// A 0/1 knapsack with `n` items.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(3.0 + (i % 11) as f64, format!("b{i}")))
        .collect();
    let terms: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, 1.0 + (i % 6) as f64))
        .collect();
    m.add_constraint(&terms, ConstraintOp::Le, n as f64);
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp");
    for n in [10usize, 25, 50] {
        let model = lp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| model.solve().unwrap().objective)
        });
    }
    group.finish();
}

fn bench_mip(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound_knapsack");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let model = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| model.solve().unwrap().objective)
        });
    }
    group.finish();
}

/// The MTZ scheduling models of the `bench_summary` fixture, solved by the
/// sparse production solver (`sparse/N`) and the frozen dense baseline
/// (`dense/N`) at N trips on board. Dense is capped at 2 trips here — at 3
/// a single dense solve takes ~0.5 s, which `bench_summary` measures once
/// instead of criterion sampling it repeatedly.
fn bench_mip_solve(c: &mut Criterion) {
    let oracle = mip_fixture::oracle(42);
    let mut group = c.benchmark_group("mip_solve");
    group.sample_size(10);
    for trips in [1usize, 2, 3] {
        let problems = mip_fixture::problems(&oracle, trips, 3, 42);
        let formulations: Vec<MipFormulation> = problems
            .iter()
            .filter_map(|p| match MipFormulation::build(p, &oracle) {
                MipBuild::Built(f) => Some(f),
                _ => None,
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("sparse", trips), &formulations, |b, fs| {
            b.iter(|| {
                for f in fs {
                    let obj = f
                        .model
                        .solve_with(&SolveOptions::default())
                        .map(|s| s.objective);
                    std::hint::black_box(obj).ok();
                }
            })
        });
        if trips <= 2 {
            group.bench_with_input(BenchmarkId::new("dense", trips), &formulations, |b, fs| {
                b.iter(|| {
                    for f in fs {
                        let obj = dense_mip::solve_dense(&f.model, 200_000).map(|s| s.objective);
                        std::hint::black_box(obj).ok();
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_lp, bench_mip, bench_mip_solve
}
criterion_main!(benches);

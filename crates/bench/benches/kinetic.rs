//! Micro-benchmarks of the kinetic tree: insertion cost as the number of
//! active trips grows, ablation of slack-time filtering and hotspot
//! clustering, and the cost of advancing/re-rooting the tree as the vehicle
//! moves — the per-call view behind Fig. 7/9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinetic_core::{KineticConfig, KineticTree, WaitingTrip};
use roadnet::{DistanceOracle, GeneratorConfig, MatrixOracle, NetworkKind};

fn oracle() -> MatrixOracle {
    let g = GeneratorConfig {
        kind: NetworkKind::Grid { rows: 12, cols: 12 },
        seed: 9,
        ..GeneratorConfig::default()
    }
    .generate();
    MatrixOracle::new(&g)
}

fn trip(oracle: &MatrixOracle, id: u64, seed: u64, eps: f64) -> WaitingTrip {
    let n = oracle.node_count() as u64;
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(id + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let pickup = (next() % n) as u32;
    let mut dropoff = (next() % n) as u32;
    if dropoff == pickup {
        dropoff = (dropoff + 1) % n as u32;
    }
    WaitingTrip {
        trip: id,
        pickup,
        dropoff,
        pickup_deadline: 12_000.0,
        max_ride: oracle.dist(pickup, dropoff) * (1.0 + eps),
    }
}

/// Builds a tree holding `active` trips.
fn tree_with(
    oracle: &MatrixOracle,
    config: KineticConfig,
    active: usize,
    seed: u64,
) -> KineticTree {
    let mut tree = KineticTree::new(0, 0.0, 16, config);
    let mut id = 0u64;
    while tree.active_trips() < active {
        let t = trip(oracle, id, seed, 0.6);
        id += 1;
        if let Ok((next, _)) = tree.try_insert(t, oracle) {
            tree = next;
        }
        if id > 200 {
            break;
        }
    }
    tree
}

fn bench_insertion_by_size(c: &mut Criterion) {
    let oracle = oracle();
    let mut group = c.benchmark_group("kinetic_insert_by_active_trips");
    for active in [0usize, 2, 4, 6] {
        let tree = tree_with(&oracle, KineticConfig::slack(), active, 5);
        let new_trip = trip(&oracle, 999, 77, 0.6);
        group.bench_with_input(BenchmarkId::from_parameter(active), &active, |b, _| {
            b.iter(|| tree.try_insert(new_trip, &oracle).is_ok())
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let oracle = oracle();
    let mut group = c.benchmark_group("kinetic_variant_insert_at_5_trips");
    let variants = [
        ("basic", KineticConfig::basic()),
        ("slack", KineticConfig::slack()),
        ("hotspot", KineticConfig::hotspot(300.0)),
    ];
    for (name, config) in variants {
        let tree = tree_with(&oracle, config, 5, 11);
        let new_trip = trip(&oracle, 998, 33, 0.6);
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| tree.try_insert(new_trip, &oracle).is_ok())
        });
    }
    group.finish();
}

fn bench_advance_and_reroot(c: &mut Criterion) {
    let oracle = oracle();
    let tree = tree_with(&oracle, KineticConfig::slack(), 5, 21);
    c.bench_function("kinetic_advance_to_next_stop", |b| {
        b.iter(|| {
            let mut t = tree.clone();
            let (_, route) = t.best_route().unwrap();
            t.advance_to(route[0]).unwrap();
            t.stats().nodes
        })
    });
    c.bench_function("kinetic_reroot", |b| {
        let mut t = tree.clone();
        let mut node = 0u32;
        b.iter(|| {
            node = (node + 1) % oracle.node_count() as u32;
            t.reroot(node, 0.0, &oracle);
            t.stats().nodes
        })
    });
    c.bench_function("kinetic_best_route", |b| {
        b.iter(|| tree.best_route().map(|(c, _)| c))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_insertion_by_size,
    bench_variants,
    bench_advance_and_reroot
}
criterion_main!(benches);

//! Micro-benchmarks of the shortest-path engines and the cached oracle.
//!
//! Backs the paper's claim that the distance computation is the hot loop of
//! large-scale matching and that hub labels + an LRU cache keep it cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roadnet::{
    AStarEngine, BidirectionalEngine, CachedOracle, DijkstraEngine, DistanceOracle,
    GeneratorConfig, HubLabels, NetworkKind, NodeId, OracleBackend, ShortestPathEngine,
};

fn network(rows: usize, cols: usize) -> roadnet::RoadNetwork {
    GeneratorConfig {
        kind: NetworkKind::Grid { rows, cols },
        seed: 7,
        edge_dropout: 0.05,
        arterials: true,
        ..GeneratorConfig::default()
    }
    .generate()
}

fn query_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| (((i * 37) % n) as NodeId, ((i * 101 + 13) % n) as NodeId))
        .collect()
}

fn bench_point_to_point(c: &mut Criterion) {
    let g = network(40, 40);
    let n = g.node_count();
    let pairs = query_pairs(n, 64);
    let mut group = c.benchmark_group("point_to_point_40x40");
    group.bench_function("dijkstra", |b| {
        let e = DijkstraEngine::new(&g);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            e.distance(s, t)
        })
    });
    group.bench_function("astar", |b| {
        let e = AStarEngine::new(&g);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            e.distance(s, t)
        })
    });
    group.bench_function("bidirectional", |b| {
        let e = BidirectionalEngine::new(&g);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            e.distance(s, t)
        })
    });
    group.bench_function("hub_labels_query", |b| {
        let hl = HubLabels::build(&g);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            hl.distance(s, t)
        })
    });
    group.finish();
}

fn bench_cached_oracle(c: &mut Criterion) {
    let g = network(30, 30);
    let n = g.node_count();
    let pairs = query_pairs(n, 32);
    let mut group = c.benchmark_group("cached_oracle");
    for (name, dist_cap) in [("cache_off", 0usize), ("cache_1m", 1_000_000)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dist_cap, |b, &cap| {
            let oracle = CachedOracle::with_options(&g, OracleBackend::Dijkstra, cap, 1_000);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                oracle.dist(s, t)
            })
        });
    }
    group.finish();
}

fn bench_hub_label_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hub_label_build");
    group.sample_size(10);
    for size in [10usize, 20, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            let g = network(s, s);
            b.iter(|| HubLabels::build(&g).total_label_entries())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_point_to_point,
    bench_cached_oracle,
    bench_hub_label_construction
}
criterion_main!(benches);

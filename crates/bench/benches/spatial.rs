//! Micro-benchmarks of the moving-object grid index: update cost (with and
//! without cell crossings) and radius-query cost at several cell sizes —
//! the ablation DESIGN.md calls out for the index the paper chose over
//! heavier moving-object structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial::{GridIndex, Position};

fn populated_index(cell: f64, objects: u32) -> GridIndex {
    let mut idx = GridIndex::new(cell);
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 50_000.0
    };
    for id in 0..objects {
        idx.insert(id, Position::new(next(), next()));
    }
    idx
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_update");
    for &cell in &[500.0, 2_000.0, 8_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cell as u64),
            &cell,
            |b, &cell| {
                let mut idx = populated_index(cell, 17_000);
                let mut step = 0u32;
                b.iter(|| {
                    let id = step % 17_000;
                    let jitter = (step % 100) as f64 * 7.0;
                    idx.update(id, Position::new(25_000.0 + jitter, 25_000.0 - jitter));
                    step += 1;
                })
            },
        );
    }
    group.finish();
}

fn bench_radius_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_radius_query");
    for &cell in &[500.0, 2_000.0, 8_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cell as u64),
            &cell,
            |b, &cell| {
                let mut idx = populated_index(cell, 17_000);
                let mut step = 0u64;
                b.iter(|| {
                    let x = (step % 50) as f64 * 1_000.0;
                    step += 1;
                    idx.query_radius(Position::new(x, 25_000.0), 8_400.0).len()
                })
            },
        );
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    c.bench_function("grid_knn_10", |b| {
        let idx = populated_index(2_000.0, 17_000);
        let mut step = 0u64;
        b.iter(|| {
            let x = (step % 50) as f64 * 1_000.0;
            step += 1;
            idx.nearest(Position::new(x, 20_000.0), 10).len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_updates, bench_radius_queries, bench_knn
}
criterion_main!(benches);

//! Fleet-dispatch worker-count sweep: ACRT of one tick of concurrent
//! requests against a 40×40-grid city, dispatched sequentially and through
//! the parallel dispatcher at 1/2/4/8 workers.
//!
//! The parallel dispatcher is bit-identical to the sequential one, so the
//! only thing this bench measures is wall-clock: how much of the
//! `candidates × ~2 µs` evaluation cost the work pool recovers. Expect the
//! speedup to track available hardware threads (a single-core container
//! shows ~1× by construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinetic_core::{Dispatcher, DispatcherConfig, ParallelDispatcher};
use rideshare_bench::dispatch_fixture::{self, DispatchFixture};
use roadnet::{CachedOracle, ShardedOracle};

const FLEET: usize = 1_000;
const REQUESTS: usize = 24;

fn fixture() -> DispatchFixture {
    dispatch_fixture::build(40, 40, FLEET, REQUESTS, 42)
}

fn bench_dispatch(c: &mut Criterion) {
    let fx = fixture();
    // The sequential arm runs over the production RefCell-cached oracle so
    // speedups are relative to the real sequential path; the parallel arms
    // need the thread-safe sharded oracle. Warm both once so every
    // measurement point sees hot caches and the sweep compares dispatch
    // cost, not cache fill.
    let seq_oracle = CachedOracle::new(&fx.network);
    let par_oracle = ShardedOracle::new(&fx.network);
    dispatch_fixture::warm(&fx, &seq_oracle, &par_oracle);

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut vehicles = fx.vehicles.clone();
            let mut index = fx.index.clone();
            let mut d = Dispatcher::new(DispatcherConfig::default());
            for r in &fx.requests {
                let _ = d.assign(r, &mut vehicles, &fx.network, &mut index, &seq_oracle);
            }
            d.stats().assigned
        })
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut vehicles = fx.vehicles.clone();
                    let mut index = fx.index.clone();
                    let mut d = ParallelDispatcher::new(DispatcherConfig::default(), workers);
                    let _ = d.assign_batch(
                        &fx.requests,
                        &mut vehicles,
                        &fx.network,
                        &mut index,
                        &par_oracle,
                    );
                    d.stats().assigned
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);

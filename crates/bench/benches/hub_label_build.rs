//! Hub-label construction benchmarks: ordering strategies and the batched
//! parallel build, reported as nodes/second via `Throughput::Elements`.
//!
//! Backs the tentpole claim of this repo's hub-label rework: the
//! contraction-hierarchy ordering keeps construction near-linear where the
//! seed's degree/betweenness orderings grew superlinearly, which is what
//! makes `Scale::Paper` label builds feasible (see `BENCH_hublabel.json`
//! from `bench_summary` for the paper-scale headline numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use roadnet::{GeneratorConfig, HubLabels, HubOrdering, NetworkKind};
use workpool::WorkPool;

fn network(side: usize) -> roadnet::RoadNetwork {
    GeneratorConfig {
        kind: NetworkKind::Grid {
            rows: side,
            cols: side,
        },
        seed: 7,
        edge_dropout: 0.05,
        arterials: true,
        ..GeneratorConfig::default()
    }
    .generate()
}

/// Ordering strategies at a fixed 30×30 size (the largest where the legacy
/// orderings are still tolerable inside a bench loop).
fn bench_orderings(c: &mut Criterion) {
    let g = network(30);
    let nodes = g.node_count() as u64;
    let mut group = c.benchmark_group("hub_label_orderings_30x30");
    group.sample_size(10);
    group.throughput(Throughput::Elements(nodes));
    for (name, ordering) in [
        ("contraction", HubOrdering::Contraction),
        ("degree", HubOrdering::Degree),
        (
            "betweenness-16",
            HubOrdering::SampledBetweenness { samples: 16 },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ordering, |b, &ord| {
            b.iter(|| HubLabels::build_with(&g, ord).total_label_entries())
        });
    }
    group.finish();
}

/// Contraction-ordered build across network sizes (nodes/sec should stay
/// roughly flat where the seed pipeline degraded superlinearly).
fn bench_contraction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hub_label_build_contraction");
    group.sample_size(10);
    for side in [20usize, 40, 60] {
        let g = network(side);
        group.throughput(Throughput::Elements(g.node_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            b.iter(|| HubLabels::build_with(&g, HubOrdering::Contraction).total_label_entries())
        });
    }
    group.finish();
}

/// Worker-count sweep of the rank-batched parallel build (bit-identical
/// output at every worker count; this measures the wall-clock effect).
fn bench_parallel_build(c: &mut Criterion) {
    let g = network(40);
    let nodes = g.node_count() as u64;
    let mut group = c.benchmark_group("hub_label_build_workers_40x40");
    group.sample_size(10);
    group.throughput(Throughput::Elements(nodes));
    for workers in [1usize, 2, 4] {
        let pool = WorkPool::new(workers);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                HubLabels::build_with_pool(&g, HubOrdering::Contraction, &pool)
                    .total_label_entries()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_orderings, bench_contraction_scaling, bench_parallel_build
}
criterion_main!(benches);

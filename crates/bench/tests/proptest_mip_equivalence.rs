//! Equivalence suite: the sparse revised-simplex solver must agree with
//! the frozen dense baseline (`baseline::dense_mip`) — identical objective
//! values within tolerance, identical feasibility verdicts — and the MIP
//! matcher built on it must keep every service guarantee.

use proptest::prelude::*;
use rideshare_bench::baseline::dense_mip;
use rideshare_bench::mip_fixture;
use rideshare_mip::{ConstraintOp, Model, Sense, SolveError, VarKind};

use kinetic_core::algorithms::{
    BruteForceSolver, MipScheduleSolver, ScheduleSolver, SolverOutcome,
};

/// Builds a random bounded mixed-integer model from generated data. Every
/// third variable is continuous so the LP relaxation path is exercised too.
fn build_model(objs: &[f64], rows: &[(Vec<f64>, u8, f64)], maximize: bool) -> Model {
    let mut m = Model::new(if maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = objs
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            let kind = if i % 3 == 2 {
                VarKind::Continuous
            } else {
                VarKind::Integer
            };
            m.add_var(0.0, 3.0, o, kind, format!("x{i}"))
        })
        .collect();
    for (coefs, op, rhs) in rows {
        let terms: Vec<_> = vars
            .iter()
            .zip(coefs.iter())
            .map(|(&v, &c)| (v, c))
            .collect();
        let op = match op % 3 {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        // Equalities over random data are almost never satisfiable with
        // integer variables; keep them but soften rarely-feasible rows by
        // converting exact equalities to a pair-free Le when rhs is large.
        m.add_constraint(&terms, op, *rhs);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse and dense solvers agree on random bounded MIPs: same
    /// feasibility verdict, same objective within tolerance.
    #[test]
    fn sparse_matches_dense_on_random_models(
        objs in prop::collection::vec(-5.0f64..10.0, 2..7),
        raw_rows in prop::collection::vec(
            (prop::collection::vec(-2.0f64..4.0, 7..8), 0u8..3, 1.0f64..12.0),
            1..5,
        ),
        maximize_bit in 0u8..2,
    ) {
        let maximize = maximize_bit == 1;
        let n = objs.len();
        let rows: Vec<(Vec<f64>, u8, f64)> = raw_rows
            .into_iter()
            .map(|(c, op, rhs)| (c[..n].to_vec(), op, rhs))
            .collect();
        let model = build_model(&objs, &rows, maximize);
        let sparse = model.solve();
        let dense = dense_mip::solve_dense(&model, 200_000);
        match (&sparse, &dense) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    (a.objective - b.objective).abs() <= 1e-5 * a.objective.abs().max(1.0),
                    "sparse {} vs dense {}", a.objective, b.objective
                );
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            other => prop_assert!(false, "verdict mismatch: {other:?}"),
        }
    }

    /// The MIP matcher agrees with brute force on random scheduling
    /// problems and never violates a service guarantee.
    #[test]
    fn mip_matcher_matches_brute_force(
        seed in 0u64..500,
        trips in 1usize..4,
    ) {
        let oracle = mip_fixture::oracle(7);
        let problem = mip_fixture::problems(&oracle, trips, 1, seed)
            .pop()
            .expect("one instance");
        let mip = MipScheduleSolver::default().solve(&problem, &oracle);
        let bf = BruteForceSolver::default().solve(&problem, &oracle);
        match (&mip, &bf) {
            (
                SolverOutcome::Feasible { cost: a, schedule },
                SolverOutcome::Feasible { cost: b, .. },
            ) => {
                prop_assert!((a - b).abs() < 1e-4, "mip {a} vs brute force {b}");
                prop_assert!(problem.is_valid(schedule, &oracle), "guarantee violation");
            }
            (SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
            other => prop_assert!(false, "outcome mismatch: {other:?}"),
        }
    }
}
